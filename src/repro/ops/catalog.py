"""The operations catalog: every subsystem entry point, registered.

Each function here is one :class:`~repro.ops.spec.Operation` handler:
it takes the canonical request dict plus the shared
:class:`~repro.ops.context.RunContext`, calls into its subsystem
façade, and returns an :class:`~repro.ops.spec.OpResponse` pairing
the structured payload with the exact text the CLI writes. Subsystem
imports live inside the handlers, so importing the kernel stays
cheap and no adapter ever needs a direct subsystem import (staticcheck
R7 enforces that for ``cli/``).

:func:`default_registry` assembles the full catalog — the
systematization operations defined here plus the runtime ones from
:mod:`~repro.ops.catalog_runtime` and the batch executor from
:mod:`~repro.ops.batch` — and memoises it process-wide.
"""

from __future__ import annotations

from ..errors import OperationError
from .context import RunContext
from .spec import Arg, Operation, OperationRegistry, OpResponse

__all__ = ["default_registry"]


def _text(lines: list[str]) -> str:
    """Join print-style lines into exact stdout bytes."""
    return "".join(line + "\n" for line in lines)


# -- systematization operations ---------------------------------------


def _run_table1(request: dict, ctx: RunContext) -> OpResponse:
    """Regenerate Table 1 in the requested format."""
    from ..tables import render_table1

    rendered = render_table1(ctx.corpus(), request["format"])
    return OpResponse(
        payload={"format": request["format"], "rendered": rendered},
        text=rendered + "\n",
    )


def _run_stats(request: dict, ctx: RunContext) -> OpResponse:
    """The §5 statistics, as both structured counts and text."""
    from ..analysis import section5_statistics

    stats = section5_statistics(ctx.corpus())
    lines = [
        f"entries: {stats.total_entries} "
        f"(papers: {stats.total_papers})",
        f"REB: {stats.reb_approved} approved, {stats.reb_exempt} "
        f"exempt, {stats.reb_not_mentioned} not mentioned, "
        f"{stats.reb_not_applicable} n/a",
        f"ethics sections: {stats.ethics_sections}/"
        f"{stats.total_papers}",
        f"safeguards: {stats.safeguard_counts}",
        f"harms: {stats.harm_counts}",
        f"benefits: {stats.benefit_counts}",
        f"justifications: {stats.justification_counts}",
    ]
    payload = {
        "entries": stats.total_entries,
        "papers": stats.total_papers,
        "reb": {
            "approved": stats.reb_approved,
            "exempt": stats.reb_exempt,
            "not_applicable": stats.reb_not_applicable,
            "not_mentioned": stats.reb_not_mentioned,
        },
        "ethics_sections": stats.ethics_sections,
        "safeguards": dict(stats.safeguard_counts),
        "harms": dict(stats.harm_counts),
        "benefits": dict(stats.benefit_counts),
        "justifications": dict(stats.justification_counts),
    }
    return OpResponse(payload=payload, text=_text(lines))


def _run_verify(request: dict, ctx: RunContext) -> OpResponse:
    """Every reproduction check plus the static policy lint gate."""
    from ..reporting import run_reproduction
    from ..staticcheck import lint_repo, summarize, unsuppressed

    outcomes = run_reproduction(ctx.corpus())
    lines: list[str] = []
    checks = []
    failed = 0
    for outcome in outcomes:
        mark = "OK " if outcome.passed else "FAIL"
        lines.append(
            f"[{mark}] {outcome.experiment_id}: "
            f"{outcome.description} — {outcome.measured}"
        )
        checks.append(
            {
                "id": outcome.experiment_id,
                "description": outcome.description,
                "measured": str(outcome.measured),
                "passed": outcome.passed,
            }
        )
        if not outcome.passed:
            failed += 1
    findings = lint_repo()
    failing = unsuppressed(findings)
    mark = "FAIL" if failing else "OK "
    lines.append(
        f"[{mark}] SC: static policy lint (R1-R10 + baseline) — "
        f"{summarize(findings)}"
    )
    for finding in failing:
        lines.append(f"       {finding.describe()}")
    if failing:
        failed += 1
    total = len(outcomes) + 1
    lines.append(f"{total - failed}/{total} checks passed")
    payload = {
        "checks": checks,
        "lint": {
            "failing": len(failing),
            "summary": summarize(findings),
        },
        "passed": total - failed,
        "total": total,
    }
    return OpResponse(
        payload=payload,
        text=_text(lines),
        exit_code=1 if failed else 0,
    )


def _run_lint(request: dict, ctx: RunContext) -> OpResponse:
    """The staticcheck policy linter over repro or an explicit tree."""
    from ..staticcheck import (
        LintEngine,
        default_registry as lint_registry,
        lint_repo,
        render_json,
        render_text,
        unsuppressed,
    )

    select = tuple(
        part.strip()
        for part in request["select"].split(",")
        if part.strip()
    )
    if request["changed"] and (
        select or request["path"] or request["no_cache"]
    ):
        raise OperationError(
            "--changed needs the incremental cache of a full-rule "
            "run over the repro package; it cannot combine with "
            "--select, --path or --no-cache"
        )
    if request["path"] is not None:
        registry = lint_registry()
        if select:
            registry = registry.select(select)
        findings = LintEngine(registry).lint_package(
            request["path"], workers=request["jobs"]
        )
    else:
        findings = lint_repo(
            select,
            incremental=not request["no_cache"],
            workers=request["jobs"],
            changed_only=request["changed"],
        )
    if request["format"] == "json":
        output = render_json(findings)
        text = output + "\n" if output else ""
    else:
        text = render_text(findings) + "\n"
    failing = unsuppressed(findings)
    payload = {
        "failing": len(failing),
        "findings": [finding.to_dict() for finding in findings],
        "format": request["format"],
    }
    return OpResponse(
        payload=payload, text=text, exit_code=1 if failing else 0
    )


def _run_report(request: dict, ctx: RunContext) -> OpResponse:
    """The full paper-vs-measured Markdown report."""
    from ..reporting import render_report

    rendered = render_report(ctx.corpus())
    return OpResponse(
        payload={"rendered": rendered}, text=rendered + "\n"
    )


def _run_report_render(request: dict, ctx: RunContext) -> OpResponse:
    """The deterministic self-contained static HTML report."""
    from ..render import build_report_model, render_html_report

    digest = ctx.corpus_digest()
    model = build_report_model(ctx.corpus(), digest=digest)
    rendered = render_html_report(model)
    return OpResponse(
        payload={
            "bytes": len(rendered.encode("utf-8")),
            "corpus_digest": digest,
            "rendered": rendered,
        },
        text=rendered,
    )


def _run_table_latex(request: dict, ctx: RunContext) -> OpResponse:
    """Appendix-ready LaTeX rendering of Table 1."""
    from ..tables import render_table1

    format = (
        "latex-booktabs"
        if request["style"] == "booktabs"
        else "latex"
    )
    rendered = render_table1(ctx.corpus(), format)
    return OpResponse(
        payload={"rendered": rendered, "style": request["style"]},
        text=rendered + "\n",
    )


def _run_codebook_merge(request: dict, ctx: RunContext) -> OpResponse:
    """Merge the corpus codebook with a second coder's variant."""
    import json

    from ..codebook import (
        codebook_from_dict,
        codebook_to_dict,
        example_coder_variant,
        merge_codebooks,
    )
    from ..errors import CodebookError

    if request["other"] is None:
        other = example_coder_variant()
    else:
        try:
            other = codebook_from_dict(json.loads(request["other"]))
        except (json.JSONDecodeError, TypeError) as exc:
            raise CodebookError(
                f"--other is not a codebook JSON spec: {exc}"
            ) from exc
    result = merge_codebooks(
        (ctx.corpus().codebook, other),
        strategy=request["strategy"],
        name=request["name"],
    )
    merged = result.codebook
    lines = [
        f"merged {' + '.join(result.sources)} "
        f"({result.strategy}) -> {merged.name}: "
        f"{len(merged)} dimensions, "
        f"{sum(len(d.members) for d in merged.open_dimensions())} "
        f"member codes",
        f"{len(result.conflicts)} conflicts:",
    ]
    for conflict in result.conflicts:
        lines.append(f"  {conflict.describe()}")
    payload = {
        "codebook": codebook_to_dict(merged),
        "conflicts": [
            {
                "dimension_id": conflict.dimension_id,
                "field": conflict.field,
                "resolution": conflict.resolution,
                "values": dict(conflict.values),
            }
            for conflict in result.conflicts
        ],
        "sources": list(result.sources),
        "strategy": result.strategy,
    }
    return OpResponse(payload=payload, text=_text(lines))


def _format_drift(label: str) -> str:
    """A second coder's label spelling: case and separator drift."""
    return label.swapcase().replace("-", "_")


def _run_agreement_fuzzy(request: dict, ctx: RunContext) -> OpResponse:
    """Exact vs fuzzy IRR between the paper and a drifted re-coding."""
    from ..coding import (
        Coder,
        annotations_from_corpus,
        canonicalize_labels,
        cohens_kappa,
        interpret_kappa,
        krippendorff_alpha,
        percent_agreement,
    )

    threshold = request["threshold"]
    annotations = annotations_from_corpus(
        ctx.corpus(), Coder("paper", name="published Table 1")
    )
    keys = sorted(annotations.keys)
    labels_a = list(annotations.labels_for(keys))
    labels_b = [_format_drift(label) for label in labels_a]

    def summary(a: list[str], b: list[str]) -> dict:
        return {
            "percent": round(percent_agreement(a, b), 4),
            "cohens_kappa": round(cohens_kappa(a, b), 4),
            "krippendorff_alpha": round(
                krippendorff_alpha(list(zip(a, b))), 4
            ),
        }

    exact = summary(labels_a, labels_b)
    mapping = canonicalize_labels(labels_a + labels_b, threshold)
    fuzzy = summary(
        [mapping[label] for label in labels_a],
        [mapping[label] for label in labels_b],
    )
    lines = [
        f"{len(keys)} (entry, dimension) items; coder B re-spells "
        "every label (case/separator drift)",
        f"exact:  percent={exact['percent']:.2f} "
        f"kappa={exact['cohens_kappa']:.2f} "
        f"({interpret_kappa(exact['cohens_kappa'])})",
        f"fuzzy:  percent={fuzzy['percent']:.2f} "
        f"kappa={fuzzy['cohens_kappa']:.2f} "
        f"({interpret_kappa(fuzzy['cohens_kappa'])}) "
        f"at threshold {threshold}",
        f"label hygiene accounts for "
        f"{fuzzy['percent'] - exact['percent']:.2f} of the "
        "disagreement",
    ]
    payload = {
        "exact": exact,
        "fuzzy": fuzzy,
        "items": len(keys),
        "threshold": threshold,
    }
    return OpResponse(payload=payload, text=_text(lines))


def _run_legend(request: dict, ctx: RunContext) -> OpResponse:
    """The codebook legend for Table 1's abbreviations."""
    from ..tables import build_table1_layout, render_legend_text

    rendered = render_legend_text(build_table1_layout(ctx.corpus()))
    return OpResponse(
        payload={"rendered": rendered}, text=rendered + "\n"
    )


def _run_evidence(request: dict, ctx: RunContext) -> OpResponse:
    """The §4 quotes grounding one Table 1 coding."""
    from ..corpus import evidence_for

    entry = ctx.corpus()[request["entry_id"]]
    evidence = evidence_for(request["entry_id"])
    lines = [
        f"{entry.source_label} [{entry.reference}] — "
        f"§{evidence.section}",
        f"summary: {entry.summary}",
        "grounding quotes:",
    ]
    for quote in evidence.quotes:
        lines.append(f'  "{quote}"')
    payload = {
        "entry_id": request["entry_id"],
        "quotes": list(evidence.quotes),
        "reference": entry.reference,
        "section": evidence.section,
        "source_label": entry.source_label,
        "summary": entry.summary,
    }
    return OpResponse(payload=payload, text=_text(lines))


def _run_intervals(request: dict, ctx: RunContext) -> OpResponse:
    """Wilson 95% intervals for the §5 proportions."""
    from ..analysis import required_sample_size, section5_intervals

    described = [
        estimate.describe()
        for estimate in section5_intervals(ctx.corpus())
    ]
    needed = required_sample_size(margin=0.05)
    lines = [
        *described,
        f"papers needed for a ±5% margin: {needed} "
        "(the 'large representative sample' of §5.5)",
    ]
    payload = {
        "estimates": described,
        "required_sample_size": needed,
    }
    return OpResponse(payload=payload, text=_text(lines))


def _run_bibliography(request: dict, ctx: RunContext) -> OpResponse:
    """List or search the paper's references."""
    from ..bibliography import paper_bibliography

    bibliography = paper_bibliography()
    references = (
        bibliography.search(request["search"])
        if request["search"]
        else tuple(bibliography)
    )
    lines = [reference.format() for reference in references]
    lines.append(f"{len(references)} references")
    payload = {
        "count": len(references),
        "references": [
            reference.format() for reference in references
        ],
        "search": request["search"],
    }
    return OpResponse(payload=payload, text=_text(lines))


def _run_similarity(request: dict, ctx: RunContext) -> OpResponse:
    """Paper-similarity clusters and category cohesion of Table 1."""
    from ..analysis import SimilarityAnalysis

    threshold = request["threshold"]
    analysis = SimilarityAnalysis(ctx.corpus())
    clusters = analysis.clusters(threshold=threshold)
    lines = [f"{len(clusters)} clusters at threshold {threshold}"]
    for index, cluster in enumerate(clusters, start=1):
        members = ", ".join(sorted(cluster))
        lines.append(f"  cluster {index} ({len(cluster)}): {members}")
    cohesion = analysis.category_cohesion()
    lines.append("category cohesion:")
    for category, value in cohesion.items():
        lines.append(f"  {category}: {value:.2f}")
    separation = analysis.separation()
    lines.append(f"category separation: {separation:.3f}")
    payload = {
        "clusters": [sorted(cluster) for cluster in clusters],
        "cohesion": {
            category: round(value, 2)
            for category, value in cohesion.items()
        },
        "separation": round(separation, 3),
        "threshold": threshold,
    }
    return OpResponse(payload=payload, text=_text(lines))


def _run_simulate(request: dict, ctx: RunContext) -> OpResponse:
    """Generate one synthetic dataset and summarise it."""
    seed = request["seed"]
    kind = request["kind"]
    if kind == "passwords":
        from ..datasets import PasswordDumpGenerator

        dump = PasswordDumpGenerator(seed).generate(users=1000)
        top = dump.frequency().most_common(5)
        summary = f"password dump: {len(dump)} accounts; top: {top}"
        detail: dict = {"accounts": len(dump)}
    elif kind == "booter":
        from ..datasets import BooterDatabaseGenerator

        db = BooterDatabaseGenerator(seed).generate()
        summary = (
            f"booter db: {len(db.users)} users, {len(db.attacks)} "
            f"attacks on {db.distinct_targets()} targets, revenue "
            f"${db.revenue():.2f}"
        )
        detail = {
            "attacks": len(db.attacks),
            "revenue": round(db.revenue(), 2),
            "targets": db.distinct_targets(),
            "users": len(db.users),
        }
    elif kind == "forum":
        from ..datasets import ForumGenerator

        forum = ForumGenerator(seed).generate()
        summary = (
            f"forum: {len(forum.members)} members, "
            f"{len(forum.posts)} posts, "
            f"{forum.illicit_share():.0%} illicit threads"
        )
        detail = {
            "members": len(forum.members),
            "posts": len(forum.posts),
        }
    elif kind == "offshore":
        from ..datasets import OffshoreLeakGenerator

        leak = OffshoreLeakGenerator(seed).generate()
        summary = (
            f"offshore leak: {len(leak.entities)} entities, "
            f"{len(leak.officers)} officers, "
            f"{len(leak.public_figures())} public figures"
        )
        detail = {
            "entities": len(leak.entities),
            "officers": len(leak.officers),
            "public_figures": len(leak.public_figures()),
        }
    elif kind == "projects":
        from ..datasets import ResearchProjectGenerator

        projects = ResearchProjectGenerator(seed).generate(100)
        harms = sum(len(p.harms) for p in projects)
        reb = sum(1 for p in projects if p.reb_approved)
        summary = (
            f"projects: {len(projects)} synthetic research "
            f"designs, {harms} harms registered, {reb} REB-approved"
        )
        detail = {
            "harms": harms,
            "projects": len(projects),
            "reb_approved": reb,
        }
    elif kind == "classified":
        from ..datasets import ClassifiedCorpusGenerator

        corpus = ClassifiedCorpusGenerator(seed).generate()
        summary = (
            f"classified corpus: {len(corpus)} cables, "
            f"{corpus.classified_fraction():.0%} classified, "
            f"mix {corpus.by_classification()}"
        )
        detail = {"cables": len(corpus)}
    else:
        from ..datasets import ScanGenerator

        scan = ScanGenerator(seed).generate()
        summary = (
            f"scan: {len(scan.records)} probes, port-80 open rate "
            f"{scan.open_rate(80):.2f} (artefacts "
            f"{scan.artefact_rate(80):.0%}), "
            f"{len(scan.botnet_sources())} bot sources visible"
        )
        detail = {"probes": len(scan.records)}
    payload = {"detail": detail, "kind": kind, "seed": seed,
               "summary": summary}
    return OpResponse(payload=payload, text=summary + "\n")


def _pack_counts(data: dict) -> dict:
    """Rule-count summary of one pack's three sections."""
    return {
        "legal_issues": len(data["legal"]["issues"]),
        "menlo_principles": len(data["menlo"]["principles"]),
        "verdict_steps": len(data["verdict"]["steps"]),
    }


def _run_policy_list(request: dict, ctx: RunContext) -> OpResponse:
    """List the bundled policy packs with their content digests."""
    from ..policy import bundled_pack_names, resolve_pack

    lines: list[str] = []
    packs = []
    for name in bundled_pack_names():
        pack = resolve_pack(name)
        counts = _pack_counts(pack.data)
        lines.append(
            f"{name}: {counts['legal_issues']} legal issues, "
            f"{counts['menlo_principles']} Menlo principles, "
            f"{counts['verdict_steps']} verdict steps "
            f"[digest {pack.digest}]"
        )
        packs.append(
            {"digest": pack.digest, "name": name, **counts}
        )
    lines.append(f"{len(packs)} bundled packs")
    return OpResponse(
        payload={"packs": packs}, text=_text(lines)
    )


def _run_policy_show(request: dict, ctx: RunContext) -> OpResponse:
    """Summarise one pack's compiled rule surface."""
    from ..policy import resolve_pack

    pack = resolve_pack(request["pack"])
    data = pack.data
    version = data.get("version", 0)
    description = data.get("description", "")
    lines = [
        f"pack {pack.name} v{version} [digest {pack.digest}]",
        f"  {description}",
        "legal issues:",
    ]
    issues = []
    for issue in data["legal"]["issues"]:
        rows = len(issue["rows"])
        lines.append(
            f"  {issue['id']}: {rows} decision rows"
        )
        issues.append({"id": issue["id"], "rows": rows})
    lines.append("menlo principles:")
    principles = []
    for principle in data["menlo"]["principles"]:
        checks = len(principle["checks"])
        lines.append(
            f"  {principle['id']}: {checks} checks"
        )
        principles.append(
            {"checks": checks, "id": principle["id"]}
        )
    steps = data["verdict"]["steps"]
    lines.append(
        f"verdict: default {data['verdict']['default']!r}, "
        f"{len(steps)} fold steps"
    )
    payload = {
        "description": description,
        "digest": pack.digest,
        "issues": issues,
        "name": pack.name,
        "principles": principles,
        "verdict_default": data["verdict"]["default"],
        "verdict_steps": len(steps),
        "version": version,
    }
    return OpResponse(payload=payload, text=_text(lines))


def _run_policy_assess(request: dict, ctx: RunContext) -> OpResponse:
    """Assess one seeded synthetic project under a policy pack."""
    from ..assessment import assess_with_policy
    from ..datasets import synthetic_project
    from ..policy import compiled_policy

    policy = compiled_policy(request["pack"])
    seed = request["seed"]
    project = synthetic_project(seed)
    assessment = assess_with_policy(project, policy)
    lines = [
        f"pack: {policy.name} [digest {policy.digest}]",
        f"seed: {seed}",
        *assessment.summary().splitlines(),
    ]
    payload = {
        "issues": list(assessment.applicable_legal_issues),
        "legal_risk": assessment.legal.overall_risk,
        "menlo": {
            finding.principle.value: finding.status
            for finding in assessment.menlo
        },
        "notes": list(assessment.notes),
        "pack": {"digest": policy.digest, "name": policy.name},
        "required_actions": list(assessment.required_actions),
        "seed": seed,
        "title": project.title,
        "verdict": assessment.verdict,
    }
    return OpResponse(payload=payload, text=_text(lines))


def _run_policy_validate(
    request: dict, ctx: RunContext
) -> OpResponse:
    """Validate policy packs; a bad pack raises PolicyError (exit 2)."""
    from ..policy import bundled_pack_names, resolve_pack

    refs = (
        [request["pack"]]
        if request["pack"] is not None
        else list(bundled_pack_names())
    )
    lines: list[str] = []
    validated = []
    for ref in refs:
        pack = resolve_pack(ref)
        counts = _pack_counts(pack.data)
        lines.append(
            f"[OK ] {ref}: pack {pack.name} "
            f"[digest {pack.digest}]"
        )
        validated.append(
            {"digest": pack.digest, "name": pack.name, "ref": ref}
        )
    lines.append(f"{len(validated)}/{len(refs)} packs valid")
    return OpResponse(
        payload={"packs": validated}, text=_text(lines)
    )


def _operations() -> tuple[Operation, ...]:
    """The systematization-side operation definitions."""
    return (
        Operation(
            name="table1",
            help="regenerate Table 1",
            handler=_run_table1,
            args=(
                Arg(
                    "--format",
                    choices=(
                        "text", "markdown", "latex", "latex-booktabs",
                        "csv", "html",
                    ),
                    default="text",
                ),
            ),
            pure=True,
        ),
        Operation(
            name="report.render",
            help=(
                "render the self-contained static HTML report "
                "(deterministic bytes; redirect stdout to a file)"
            ),
            handler=_run_report_render,
            pure=True,
        ),
        Operation(
            name="table.latex",
            help="appendix-ready LaTeX rendering of Table 1",
            handler=_run_table_latex,
            args=(
                Arg(
                    "--style",
                    choices=("booktabs", "plain"),
                    default="booktabs",
                ),
            ),
            pure=True,
        ),
        Operation(
            name="codebook.merge",
            help=(
                "merge the corpus codebook with a second coder's "
                "variant, recording every conflict"
            ),
            handler=_run_codebook_merge,
            args=(
                Arg(
                    "--strategy",
                    choices=("union", "intersection"),
                    default="union",
                ),
                Arg(
                    "--other",
                    default=None,
                    help=(
                        "the second coder's codebook as a JSON spec "
                        "(codebook_to_dict format); defaults to the "
                        "worked example variant"
                    ),
                ),
                Arg(
                    "--name",
                    default=None,
                    help="name for the merged codebook",
                ),
            ),
            pure=True,
        ),
        Operation(
            name="agreement.fuzzy",
            help=(
                "exact vs fuzzy-match inter-rater reliability for a "
                "label-drifted re-coding of Table 1"
            ),
            handler=_run_agreement_fuzzy,
            args=(
                Arg("--threshold", kind=float, default=0.85),
            ),
            pure=True,
        ),
        Operation(
            name="stats",
            help="print the §5 statistics",
            handler=_run_stats,
            pure=True,
        ),
        Operation(
            name="verify",
            help=(
                "run every reproduction check and the static policy "
                "lint"
            ),
            handler=_run_verify,
        ),
        Operation(
            name="report",
            help="paper-vs-measured Markdown report",
            handler=_run_report,
            pure=True,
        ),
        Operation(
            name="legend",
            help="print the codebook legend",
            handler=_run_legend,
            pure=True,
        ),
        Operation(
            name="lint",
            help=(
                "statically check the repro source against the "
                "paper's safeguards (R1-R10)"
            ),
            handler=_run_lint,
            args=(
                Arg("--format", choices=("text", "json"),
                    default="text"),
                Arg(
                    "--select",
                    default="",
                    help=(
                        "comma-separated rule ids to run (e.g. R1,R2)"
                    ),
                ),
                Arg(
                    "--path",
                    default=None,
                    help=(
                        "lint this directory tree instead of the "
                        "installed repro package (rule scoping "
                        "follows paths relative to it; the "
                        "suppression baseline applies only to the "
                        "package)"
                    ),
                ),
                Arg(
                    "--changed",
                    flag=True,
                    help=(
                        "report only files whose content digest "
                        "differs from the incremental lint cache "
                        "(whole-program rules rerun when any byte "
                        "of the tree moved)"
                    ),
                ),
                Arg(
                    "--jobs",
                    kind=int,
                    default=1,
                    help=(
                        "fan cold files out to this many lint "
                        "worker processes"
                    ),
                ),
                Arg(
                    "--no-cache",
                    flag=True,
                    help=(
                        "disable the content-addressed incremental "
                        "findings cache for this run"
                    ),
                ),
            ),
        ),
        Operation(
            name="simulate",
            help="generate a synthetic dataset summary",
            handler=_run_simulate,
            args=(
                Arg(
                    "kind",
                    choices=(
                        "passwords", "booter", "forum", "offshore",
                        "classified", "projects", "scan",
                    ),
                    required=True,
                ),
                Arg("--seed", kind=int, default=0),
            ),
        ),
        Operation(
            name="policy.list",
            help="list the bundled policy packs and their digests",
            handler=_run_policy_list,
            pure=True,
        ),
        Operation(
            name="policy.show",
            help="summarise one policy pack's rule surface",
            handler=_run_policy_show,
            args=(
                Arg(
                    "--pack",
                    default=None,
                    help=(
                        "bundled pack name or JSON pack path "
                        "(default: the bundled default pack)"
                    ),
                ),
            ),
            pure=True,
            pack_scoped=True,
        ),
        Operation(
            name="policy.assess",
            help=(
                "assess one seeded synthetic research project "
                "under a policy pack"
            ),
            handler=_run_policy_assess,
            args=(
                Arg(
                    "--pack",
                    default=None,
                    help=(
                        "bundled pack name or JSON pack path "
                        "(default: the bundled default pack)"
                    ),
                ),
                Arg("--seed", kind=int, default=0),
            ),
            pure=True,
            pack_scoped=True,
        ),
        Operation(
            name="policy.validate",
            help=(
                "validate policy packs (all bundled, or one "
                "--pack reference)"
            ),
            handler=_run_policy_validate,
            args=(
                Arg(
                    "--pack",
                    default=None,
                    help=(
                        "bundled pack name or JSON pack path; "
                        "omit to validate every bundled pack"
                    ),
                ),
            ),
        ),
        Operation(
            name="bibliography",
            help="list or search the references",
            handler=_run_bibliography,
            args=(Arg("--search", default=""),),
            pure=True,
        ),
        Operation(
            name="similarity",
            help="paper-similarity structure of Table 1",
            handler=_run_similarity,
            args=(Arg("--threshold", kind=float, default=0.6),),
            pure=True,
        ),
        Operation(
            name="evidence",
            help="show the §4 quotes grounding one Table 1 coding",
            handler=_run_evidence,
            args=(Arg("entry_id", required=True),),
            pure=True,
        ),
        Operation(
            name="intervals",
            # argparse %-interpolates help strings, so the literal
            # percent sign must be doubled or --help raises TypeError.
            help="Wilson 95%% intervals for the §5 proportions",
            handler=_run_intervals,
            pure=True,
        ),
    )


_REGISTRY: OperationRegistry | None = None


def default_registry() -> OperationRegistry:
    """The full operation catalog, assembled once per process.

    Systematization operations (this module) + runtime operations
    (pipeline, audit, obs, simulate-reb) + the batch executor, with
    CLI group help for the dotted-name families.
    """
    global _REGISTRY
    if _REGISTRY is None:
        from .batch import batch_operation
        from .catalog_runtime import runtime_operations

        registry = OperationRegistry(_operations())
        for operation in runtime_operations():
            registry.register(operation)
        registry.register(batch_operation())
        registry.describe_group(
            "audit",
            "inspect and verify tamper-evident audit logs",
        )
        registry.describe_group(
            "obs",
            (
                "telemetry egress: metric exporters, sampling "
                "profiler and profile views"
            ),
        )
        registry.describe_group(
            "table",
            "Table 1 renderings beyond the plain table1 formats",
        )
        registry.describe_group(
            "codebook",
            "multi-coder codebook operations",
        )
        registry.describe_group(
            "agreement",
            "inter-rater reliability beyond exact label matching",
        )
        registry.describe_group(
            "policy",
            (
                "declarative policy packs: list, inspect, "
                "validate and mass-assess"
            ),
        )
        _REGISTRY = registry
    return _REGISTRY
