"""The batch executor: a JSONL stream of requests through the kernel.

``repro-ethics batch requests.jsonl --workers 4`` reads one JSON
object per line (``{"op": "table1", "args": {"format": "csv"}}``),
fans the requests out over a process pool, and emits one compact
JSON response line per request **in input order** — byte-identical
for any worker count, by the same ordered-drain discipline the
safeguard pipeline uses. Each response line carries the operation's
structured payload plus the exact stdout the equivalent subcommand
would have produced, so a batch run is a verifiable transcript of
serial CLI invocations.

Observability mirrors the pipeline's cross-process design: when the
coordinator runs an enabled observer, each worker request executes
under a :class:`~repro.observability.worker.TelemetryShard` whose
captured events (``ops/request-started``, ``ops/request-completed``
or ``ops/request-failed``) replay into the coordinator's single-
writer chain in submission order. Worker processes keep a persistent
:class:`~repro.ops.context.RunContext` with a result cache, so
repeated pure requests in one batch are served content-addressed.
"""

from __future__ import annotations

import dataclasses
import json
from collections import deque
from collections.abc import Sequence
from pathlib import Path

from ..errors import BatchError, ReproError
from ..observability import audit_event, get_observer
from ..observability.worker import (
    TelemetryShard,
    WorkerTelemetry,
    replay_shard,
)
from .cache import ResultCache
from .context import RunContext
from .failures import describe_failure
from .kernel import execute
from .spec import Arg, Operation, OpResponse, emit_jsonl

__all__ = [
    "BatchExecutor",
    "BatchRequest",
    "BatchResult",
    "batch_operation",
    "load_requests",
]


@dataclasses.dataclass(frozen=True)
class BatchRequest:
    """One parsed line of a batch request file."""

    index: int
    op: str
    args: dict


@dataclasses.dataclass(frozen=True)
class BatchResult:
    """Everything a batch run produced: ordered lines + summary."""

    lines: tuple[dict, ...]
    summary: dict

    def text(self) -> str:
        """The JSONL transcript (one compact line per request)."""
        return "".join(
            emit_jsonl(line) + "\n" for line in self.lines
        )


def load_requests(path: str | Path) -> tuple[BatchRequest, ...]:
    """Parse a JSONL request file; blank lines are skipped.

    Every line must be a JSON object with an ``op`` string and an
    optional ``args`` object; anything else raises
    :class:`~repro.errors.BatchError` naming the offending line.
    """
    try:
        raw = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise BatchError(
            f"cannot read batch file {str(path)!r}: {exc}"
        ) from exc
    requests: list[BatchRequest] = []
    for number, line in enumerate(raw.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            body = json.loads(line)
        except json.JSONDecodeError as exc:
            raise BatchError(
                f"{path}:{number}: invalid JSON: {exc}"
            ) from exc
        if not isinstance(body, dict) or not isinstance(
            body.get("op"), str
        ):
            raise BatchError(
                f"{path}:{number}: each request needs an 'op' string"
            )
        args = body.get("args", {})
        if not isinstance(args, dict):
            raise BatchError(
                f"{path}:{number}: 'args' must be an object"
            )
        unknown = set(body) - {"op", "args"}
        if unknown:
            raise BatchError(
                f"{path}:{number}: unknown request keys "
                f"{sorted(unknown)}"
            )
        requests.append(
            BatchRequest(
                index=len(requests), op=body["op"], args=args
            )
        )
    return tuple(requests)


def _run_one(
    index: int, name: str, values: dict, ctx: RunContext
) -> dict:
    """Execute one request; domain failures become failed lines.

    Emits the per-request audit bracket around the kernel call —
    captured by the worker shard in parallel mode, chained inline in
    serial mode — and never lets a :class:`ReproError` escape: the
    failure maps through the kernel's error table into the line body,
    so one bad request cannot abort the batch.
    """
    audit_event("ops", "request-started", subject=name, index=index)
    try:
        operation_check(name)
        response = execute(name, values, context=ctx)
    except ReproError as exc:
        message, code = describe_failure(exc)
        audit_event(
            "ops",
            "request-failed",
            subject=name,
            index=index,
            error=message,
        )
        return {
            "error": message,
            "error_type": type(exc).__name__,
            "exit_code": code,
            "index": index,
            "ok": False,
            "op": name,
        }
    audit_event(
        "ops",
        "request-completed",
        subject=name,
        index=index,
        exit_code=response.exit_code,
    )
    return {
        "exit_code": response.exit_code,
        "index": index,
        "ok": response.exit_code == 0,
        "op": name,
        "output": response.text,
        "payload": dict(response.payload),
    }


def operation_check(name: str) -> None:
    """Reject operations the batch surface does not admit."""
    from .catalog import default_registry

    operation = default_registry().get(name)
    if not operation.batchable:
        raise BatchError(
            f"operation {operation.name!r} is not batchable"
        )


#: Worker-process persistent contexts, keyed by cache enablement.
_WORKER_CONTEXTS: dict[bool, RunContext] = {}


def _worker_context(use_cache: bool) -> RunContext:
    """The process-local persistent context for batch workers."""
    ctx = _WORKER_CONTEXTS.get(use_cache)
    if ctx is None:
        ctx = RunContext(
            cache=ResultCache() if use_cache else None
        )
        _WORKER_CONTEXTS[use_cache] = ctx
    return ctx


def _pool_execute(
    index: int,
    name: str,
    values: dict,
    telemetry: bool,
    use_cache: bool,
) -> tuple[dict, WorkerTelemetry | None]:
    """Worker-side entry point (top-level so it pickles).

    With *telemetry* (the coordinator observes), the request runs
    under a :class:`TelemetryShard` capture observer and ships its
    shard back for in-order replay; otherwise the worker keeps its
    disabled default observer and ships ``None``.
    """
    ctx = _worker_context(use_cache)
    if not telemetry:
        return _run_one(index, name, values, ctx), None
    with TelemetryShard() as shard:
        line = _run_one(index, name, values, ctx)
    return line, shard.telemetry()


class BatchExecutor:
    """Streams batch requests through the kernel, in input order.

    ``workers=1`` executes inline under the installed observer;
    more workers fan requests out to a process pool whose results —
    and telemetry shards — drain strictly in submission order, so
    the JSONL transcript and the audit-chain content are invariant
    under the worker count.
    """

    def __init__(
        self, *, workers: int = 1, use_cache: bool = True
    ) -> None:
        if workers < 1:
            raise BatchError("workers must be at least 1")
        self.workers = workers
        self.use_cache = use_cache

    def run(
        self, requests: Sequence[BatchRequest]
    ) -> BatchResult:
        """Execute *requests*; returns ordered lines and a summary."""
        audit_event(
            "ops",
            "batch-started",
            requests=len(requests),
            workers=self.workers,
        )
        if self.workers == 1:
            ctx = RunContext(
                cache=ResultCache() if self.use_cache else None
            )
            lines = tuple(
                _run_one(request.index, request.op, request.args, ctx)
                for request in requests
            )
            cache_stats = (
                ctx.cache.stats() if ctx.cache is not None else None
            )
        else:
            lines = self._run_parallel(requests)
            cache_stats = None
        ok = sum(1 for line in lines if line["ok"])
        audit_event(
            "ops",
            "batch-finished",
            requests=len(requests),
            ok=ok,
            failed=len(lines) - ok,
        )
        summary = {
            "cache": {
                "enabled": self.use_cache,
                "scope": (
                    "run" if self.workers == 1 else "per-worker"
                ),
            },
            "failed": len(lines) - ok,
            "ok": ok,
            "requests": len(requests),
            "workers": self.workers,
        }
        if cache_stats is not None:
            summary["cache"].update(cache_stats)
        return BatchResult(lines=lines, summary=summary)

    def _run_parallel(
        self, requests: Sequence[BatchRequest]
    ) -> tuple[dict, ...]:
        """Process-pool fan-out with strict submission-order drain."""
        from concurrent.futures import ProcessPoolExecutor

        telemetry = get_observer().enabled
        window = self.workers * 4
        lines: list[dict] = []
        with ProcessPoolExecutor(
            max_workers=self.workers
        ) as pool:
            pending: deque = deque()

            def drain_one() -> None:
                line, shard = pending.popleft().result()
                if shard is not None:
                    replay_shard(shard)
                lines.append(line)

            for request in requests:
                pending.append(
                    pool.submit(
                        _pool_execute,
                        request.index,
                        request.op,
                        request.args,
                        telemetry,
                        self.use_cache,
                    )
                )
                if len(pending) >= window:
                    drain_one()
            while pending:
                drain_one()
        return tuple(lines)


def _run_batch(request: dict, ctx: RunContext) -> OpResponse:
    """The ``batch`` operation handler."""
    from ..observability import observed

    requests = load_requests(request["requests"])
    executor = BatchExecutor(
        workers=request["workers"],
        use_cache=not request["no_cache"],
    )
    observability = None
    if request["audit_log"] is not None:
        observer = ctx.make_observer(request["audit_log"])
        with observed(observer):
            result = executor.run(requests)
        observer.trail.close()
        verification = observer.trail.verify()
        observability = {
            "audit_events": len(observer.trail),
            "audit_log": str(observer.trail.path),
            "chain_intact": verification.ok,
            "tail_digest": observer.trail.tail_digest,
        }
    else:
        result = executor.run(requests)
    payload = dict(result.summary)
    if observability is not None:
        payload["observability"] = observability
    return OpResponse(
        payload=payload,
        text=result.text(),
        exit_code=0 if payload["failed"] == 0 else 1,
    )


def batch_operation() -> Operation:
    """The registered ``batch`` operation definition."""
    return Operation(
        name="batch",
        help=(
            "stream a JSONL file of operation requests through the "
            "service kernel and print one response line per request"
        ),
        handler=_run_batch,
        args=(
            Arg(
                "requests",
                required=True,
                help=(
                    "path to a JSONL file; each line is "
                    '{"op": NAME, "args": {...}}'
                ),
            ),
            Arg(
                "--workers",
                kind=int,
                default=1,
                help=(
                    "process-pool size; responses are byte-identical "
                    "for any value"
                ),
            ),
            Arg(
                "--audit-log",
                default=None,
                metavar="PATH",
                help=(
                    "record per-request audit events as a tamper-"
                    "evident JSONL trail (merged in input order from "
                    "worker telemetry shards)"
                ),
            ),
            Arg(
                "--no-cache",
                flag=True,
                help=(
                    "disable the content-addressed result cache for "
                    "pure operations"
                ),
            ),
        ),
        batchable=False,
    )
