"""The batch executor: a JSONL stream of requests through the kernel.

``repro-ethics batch requests.jsonl --workers 4`` reads one JSON
object per line (``{"op": "table1", "args": {"format": "csv"}}``),
fans the requests out over a pool of pre-warmed worker processes,
and emits one compact JSON response line per request **in input
order** — byte-identical for any worker count, by the same
ordered-drain discipline the safeguard pipeline uses. Each response
line carries the operation's structured payload plus the exact
stdout the equivalent subcommand would have produced, so a batch run
is a verifiable transcript of serial CLI invocations.

The parallel path is **cache-aware** and **chunked** (see
:mod:`repro.ops.pool`): the coordinator validates every distinct
operation once up front (an unknown op never spins up a worker),
serves pure requests whose content address is already in its shared
:class:`~repro.ops.cache.ResultCache` without touching the pool,
groups the rest into contiguous per-worker chunks, and folds the
``(key, response)`` pairs each chunk computed back into the shared
cache — so a pure result computed by worker A is a coordinator hit
for worker B's identical request. With ``warm=True`` the pool, the
coordinator context and the shared cache all persist across batch
runs, which is what turns the old cold-start inversion (402 req/s at
4 workers vs 2802 serial) into a strict win.

Observability mirrors the pipeline's cross-process design: when the
coordinator runs an enabled observer, each worker request executes
under a :class:`~repro.observability.worker.TelemetryShard` whose
captured events (``ops/request-started``, ``ops/request-completed``
or ``ops/request-failed``) replay into the coordinator's single-
writer chain in input order — coordinator-served cache hits emit the
same bracket inline, so the chain content stays invariant under both
the worker count and the dispatch plan.
"""

from __future__ import annotations

import dataclasses
import json
import time
from collections import deque
from collections.abc import Sequence
from pathlib import Path

from ..errors import BatchError, ReproError
from ..observability import (
    RequestSample,
    audit_event,
    flight_recorder,
    get_observer,
    window_series,
)
from ..observability.worker import replay_shard
from .cache import ResultCache, cache_key
from .context import RunContext
from .failures import describe_failure
from .kernel import execute
from .pool import (
    ChunkResult,
    WarmPool,
    auto_chunk_size,
    warm_pool,
)
from .spec import (
    Arg,
    Operation,
    OpResponse,
    build_request,
    emit_jsonl,
)

__all__ = [
    "BatchExecutor",
    "BatchRequest",
    "BatchResult",
    "batch_operation",
    "load_requests",
]


@dataclasses.dataclass(frozen=True)
class BatchRequest:
    """One parsed line of a batch request file."""

    index: int
    op: str
    args: dict


@dataclasses.dataclass(frozen=True)
class BatchResult:
    """Everything a batch run produced: ordered lines + summary."""

    lines: tuple[dict, ...]
    summary: dict

    def text(self) -> str:
        """The JSONL transcript (one compact line per request)."""
        return "".join(
            emit_jsonl(line) + "\n" for line in self.lines
        )


def _parse_request(
    path: str | Path, number: int, line: str, index: int
) -> BatchRequest | None:
    """Parse one raw line; ``None`` for blanks, BatchError otherwise."""
    if not line.strip():
        return None
    try:
        body = json.loads(line)
    except json.JSONDecodeError as exc:
        raise BatchError(
            f"{path}:{number}: invalid JSON: {exc}"
        ) from exc
    if not isinstance(body, dict) or not isinstance(
        body.get("op"), str
    ):
        raise BatchError(
            f"{path}:{number}: each request needs an 'op' string"
        )
    args = body.get("args", {})
    if not isinstance(args, dict):
        raise BatchError(
            f"{path}:{number}: 'args' must be an object"
        )
    unknown = set(body) - {"op", "args"}
    if unknown:
        raise BatchError(
            f"{path}:{number}: unknown request keys "
            f"{sorted(unknown)}"
        )
    return BatchRequest(index=index, op=body["op"], args=args)


def load_requests(path: str | Path) -> tuple[BatchRequest, ...]:
    """Parse a JSONL request file; blank lines are skipped.

    Every line must be a JSON object with an ``op`` string and an
    optional ``args`` object; anything else raises
    :class:`~repro.errors.BatchError` naming the offending line.
    The file is streamed line by line, so a 100k-request file is
    never held in memory twice (once raw, once parsed).
    """
    requests: list[BatchRequest] = []
    try:
        with Path(path).open(encoding="utf-8") as stream:
            for number, line in enumerate(stream, start=1):
                request = _parse_request(
                    path, number, line, len(requests)
                )
                if request is not None:
                    requests.append(request)
    except OSError as exc:
        raise BatchError(
            f"cannot read batch file {str(path)!r}: {exc}"
        ) from exc
    return tuple(requests)


#: Per-process memo of batch-admitted operations, resolved once per
#: distinct name (coordinator *and* worker) instead of per request.
_BATCHABLE_OPS: dict[str, Operation] = {}


def _batchable_operation(name: str) -> Operation:
    """Resolve *name* to a batch-admitted operation, memoised.

    The registry lookup and the batchable check run once per
    distinct operation name per process — the old per-request
    ``default_registry()`` round trip is gone from the hot path.
    """
    operation = _BATCHABLE_OPS.get(name)
    if operation is None:
        from .catalog import default_registry

        operation = default_registry().get(name)
        if not operation.batchable:
            raise BatchError(
                f"operation {operation.name!r} is not batchable"
            )
        _BATCHABLE_OPS[name] = operation
    return operation


def operation_check(name: str) -> None:
    """Reject operations the batch surface does not admit."""
    _batchable_operation(name)


def _resolve_operations(
    requests: Sequence[BatchRequest],
) -> dict[str, Operation]:
    """Validate every distinct op up front, before any pool work.

    Returns the admitted operations by name; a name that is unknown
    or not batchable is simply absent — its requests fail fast as
    local error lines without a single worker being spawned.
    """
    operations: dict[str, Operation] = {}
    for name in {request.op for request in requests}:
        try:
            operations[name] = _batchable_operation(name)
        except ReproError:
            continue
    return operations


def _run_one(
    index: int, name: str, values: dict, ctx: RunContext
) -> dict:
    """Execute one request; domain failures become failed lines.

    Emits the per-request audit bracket around the kernel call —
    captured by the worker shard in parallel mode, chained inline in
    serial mode — and never lets a :class:`ReproError` escape: the
    failure maps through the kernel's error table into the line body,
    so one bad request cannot abort the batch.
    """
    audit_event("ops", "request-started", subject=name, index=index)
    try:
        operation = _batchable_operation(name)
        response = execute(operation, values, context=ctx)
    except ReproError as exc:
        message, code = describe_failure(exc)
        audit_event(
            "ops",
            "request-failed",
            subject=name,
            index=index,
            error=message,
        )
        return {
            "error": message,
            "error_type": type(exc).__name__,
            "exit_code": code,
            "index": index,
            "ok": False,
            "op": name,
        }
    audit_event(
        "ops",
        "request-completed",
        subject=name,
        index=index,
        exit_code=response.exit_code,
    )
    return {
        "exit_code": response.exit_code,
        "index": index,
        "ok": response.exit_code == 0,
        "op": name,
        "output": response.text,
        "payload": dict(response.payload),
    }


#: Worker-process persistent contexts, keyed by cache enablement.
_WORKER_CONTEXTS: dict[bool, RunContext] = {}


def _worker_context(use_cache: bool) -> RunContext:
    """The process-local persistent context for batch workers."""
    ctx = _WORKER_CONTEXTS.get(use_cache)
    if ctx is None:
        ctx = RunContext(
            cache=ResultCache() if use_cache else None
        )
        _WORKER_CONTEXTS[use_cache] = ctx
    return ctx


def _stats_delta(
    cache: ResultCache, hits_before: int, misses_before: int
) -> dict:
    """This run's slice of a possibly long-lived cache's counters."""
    return {
        "entries": len(cache),
        "hits": cache.hits - hits_before,
        "maxsize": cache.maxsize,
        "misses": cache.misses - misses_before,
    }


#: Dispatch-plan entry kinds: serve locally vs drain from a chunk.
_LOCAL = "local"
_POOL = "pool"

#: Requests listed verbatim in a flight-recorded logical plan before
#: the remainder is summarised as an ``omitted`` count (no silent
#: truncation — the header says exactly what fell off).
_PLAN_ORDER_LIMIT = 64


def _logical_plan(requests: Sequence[BatchRequest]) -> dict:
    """The *logical* dispatch plan the flight recorder rings.

    Input-order request descriptors and per-op totals — a pure
    function of the request file, so incident-bundle bodies stay
    byte-identical across worker counts. The physical configuration
    (worker count, chunking) is deliberately absent: it lives in the
    bundle envelope and in the audit chain's honest ``workers``
    fields.
    """
    ops: dict[str, int] = {}
    for request in requests:
        ops[request.op] = ops.get(request.op, 0) + 1
    order = [
        [request.index, request.op]
        for request in requests[:_PLAN_ORDER_LIMIT]
    ]
    plan = {
        "ops": dict(sorted(ops.items())),
        "order": order,
        "requests": len(requests),
    }
    if len(requests) > len(order):
        plan["omitted"] = len(requests) - len(order)
    return plan


def _cache_outcome(
    cache: ResultCache | None, hits_before: int, misses_before: int
) -> str | None:
    """Classify one request's cache interaction from counter deltas."""
    if cache is None:
        return None
    if cache.hits > hits_before:
        return "hit"
    if cache.misses > misses_before:
        return "miss"
    return None


class BatchExecutor:
    """Streams batch requests through the kernel, in input order.

    ``workers=1`` executes inline under the installed observer;
    more workers fan requests out over a pool of pre-warmed worker
    processes (:class:`~repro.ops.pool.WarmPool`) in contiguous
    chunks, with cache-aware dispatch: pure requests whose content
    address is already in the coordinator's shared cache never reach
    the pool, and every chunk ships the pure results it computed
    back for the coordinator to learn from. Results — and telemetry
    shards — drain strictly in input order, so the JSONL transcript
    and the audit-chain content are invariant under the worker
    count, the chunk size and the dispatch plan.

    ``warm=True`` reuses the process-lifetime pool (and its shared
    cache) registered for this configuration instead of building and
    tearing down a pool per run — the service mode. With
    ``warm=False`` (the default) the pool and cache live for one
    :meth:`run` call, matching the one-shot CLI invocation.
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        use_cache: bool = True,
        warm: bool = False,
        chunk_size: int | None = None,
    ) -> None:
        if workers < 1:
            raise BatchError("workers must be at least 1")
        if chunk_size is not None and chunk_size < 1:
            raise BatchError("chunk size must be at least 1")
        self.workers = workers
        self.use_cache = use_cache
        self.warm = warm
        self.chunk_size = chunk_size

    def run(
        self, requests: Sequence[BatchRequest]
    ) -> BatchResult:
        """Execute *requests*; returns ordered lines and a summary."""
        recorder = flight_recorder()
        incidents_before = (
            len(recorder.incidents) if recorder is not None else 0
        )
        if recorder is not None:
            recorder.note_plan(_logical_plan(requests))
        audit_event(
            "ops",
            "batch-started",
            requests=len(requests),
            workers=self.workers,
        )
        operations = _resolve_operations(requests)
        try:
            if self.workers == 1:
                lines, cache_stats = self._run_serial(requests)
            else:
                lines, cache_stats = self._run_parallel(
                    requests, operations
                )
        except ReproError as exc:
            # Dump the ring unless a deeper layer (the warm pool's
            # worker-lost path) already captured this failure — one
            # incident per fault, not one per stack frame.
            if (
                recorder is not None
                and len(recorder.incidents) == incidents_before
            ):
                recorder.incident(
                    "batch-error",
                    reason=f"{type(exc).__name__}: {exc}",
                    workers=self.workers,
                )
            raise
        ok = sum(1 for line in lines if line["ok"])
        failed = len(lines) - ok
        if recorder is not None:
            recorder.record_metric("ops.batch.requests", len(lines))
            recorder.record_metric("ops.batch.ok", ok)
            recorder.record_metric("ops.batch.failed", failed)
        audit_event(
            "ops",
            "batch-finished",
            requests=len(requests),
            ok=ok,
            failed=failed,
        )
        if recorder is not None and failed:
            # Degraded-but-completed runs dump too: failed lines are
            # input-order facts, so this bundle's body is the
            # byte-identical artifact the acceptance gate compares
            # across worker counts.
            recorder.incident(
                "batch-degraded",
                reason=(
                    f"{failed} of {len(lines)} requests failed"
                ),
                workers=self.workers,
            )
        summary = {
            "cache": {
                "enabled": self.use_cache,
                "scope": self._cache_scope(),
            },
            "failed": len(lines) - ok,
            "ok": ok,
            "requests": len(requests),
            "workers": self.workers,
        }
        if cache_stats is not None:
            summary["cache"].update(cache_stats)
        return BatchResult(lines=lines, summary=summary)

    def _cache_scope(self) -> str:
        """The summary label for where cached results live."""
        if self.workers == 1:
            return "warm" if self.warm else "run"
        return "shared-warm" if self.warm else "shared-run"

    def _run_serial(
        self, requests: Sequence[BatchRequest]
    ) -> tuple[tuple[dict, ...], dict | None]:
        """Inline execution under the installed observer."""
        if self.warm:
            # The workers=1 warm pool never spawns a process; it is
            # purely the persistent coordinator context + cache.
            ctx = warm_pool(1, self.use_cache).context
        else:
            ctx = RunContext(
                cache=ResultCache() if self.use_cache else None
            )
        cache = ctx.cache
        hits_before = cache.hits if cache is not None else 0
        misses_before = cache.misses if cache is not None else 0
        series = window_series()
        if series is None:
            lines = tuple(
                _run_one(
                    request.index, request.op, request.args, ctx
                )
                for request in requests
            )
        else:
            collected: list[dict] = []
            for request in requests:
                run_hits = cache.hits if cache is not None else 0
                run_misses = (
                    cache.misses if cache is not None else 0
                )
                started = time.perf_counter()
                line = _run_one(
                    request.index, request.op, request.args, ctx
                )
                elapsed = time.perf_counter() - started
                collected.append(line)
                series.observe(
                    RequestSample(
                        ok=line["ok"],
                        latency=elapsed,
                        queue_depth=0,
                        busy_workers=1,
                        workers=1,
                        cache=_cache_outcome(
                            cache, run_hits, run_misses
                        ),
                    )
                )
            lines = tuple(collected)
        stats = None
        if cache is not None:
            stats = _stats_delta(cache, hits_before, misses_before)
        return lines, stats

    def _run_parallel(
        self,
        requests: Sequence[BatchRequest],
        operations: dict[str, Operation],
    ) -> tuple[tuple[dict, ...], dict | None]:
        """Cache-aware, chunked fan-out with strict in-order drain."""
        pool = (
            warm_pool(self.workers, self.use_cache)
            if self.warm
            else WarmPool(self.workers, use_cache=self.use_cache)
        )
        try:
            return self._dispatch(pool, requests, operations)
        finally:
            if not self.warm:
                pool.shutdown()

    def _plan(
        self,
        requests: Sequence[BatchRequest],
        operations: dict[str, Operation],
        ctx: RunContext,
    ) -> tuple[list[tuple], list[tuple]]:
        """Split requests into local serves and contiguous chunks.

        A request stays **local** (served by the coordinator at its
        drain position, without touching the pool) when it cannot be
        dispatched at all — unknown or non-batchable op, malformed
        pure-op arguments — or when it is a pure request whose
        content address is already in the shared cache *or* already
        scheduled on an earlier chunk of this run: the ordered drain
        guarantees the earlier chunk's results merge in before the
        duplicate is served. Everything else lands in chunk order on
        the pool.
        """
        cache = ctx.cache
        entries: list[tuple] = []
        pending: list[int] = []
        scheduled: set[str] = set()
        for request in requests:
            operation = operations.get(request.op)
            if operation is None:
                entries.append((_LOCAL, request, 0, 0))
                continue
            if cache is not None and operation.pure:
                try:
                    built = build_request(operation, request.args)
                    digest = ctx.cache_digest(operation, built)
                except ReproError:
                    # Doomed request: fails identically inline.
                    entries.append((_LOCAL, request, 0, 0))
                    continue
                key = cache_key(operation.name, built, digest)
                if key in cache or key in scheduled:
                    entries.append((_LOCAL, request, 0, 0))
                    continue
                scheduled.add(key)
            entries.append((_POOL, request, 0, 0))
            pending.append(len(entries) - 1)
        size = self.chunk_size or auto_chunk_size(
            len(pending), self.workers
        )
        chunks: list[tuple] = []
        for offset in range(0, len(pending), size):
            block = pending[offset : offset + size]
            chunk_id = len(chunks)
            chunk = []
            for position, entry_index in enumerate(block):
                _, request, _, _ = entries[entry_index]
                entries[entry_index] = (
                    _POOL,
                    request,
                    chunk_id,
                    position,
                )
                chunk.append(
                    (request.index, request.op, request.args)
                )
            chunks.append(tuple(chunk))
        return entries, chunks

    def _dispatch(
        self,
        pool: WarmPool,
        requests: Sequence[BatchRequest],
        operations: dict[str, Operation],
    ) -> tuple[tuple[dict, ...], dict | None]:
        """Run the dispatch plan; drain strictly in input order."""
        telemetry = get_observer().enabled
        ctx = pool.context
        cache = pool.cache
        hits_before = cache.hits if cache is not None else 0
        misses_before = cache.misses if cache is not None else 0
        plan, chunks = self._plan(requests, operations, ctx)
        window = self.workers * 2
        futures: deque = deque()
        results: dict[int, ChunkResult] = {}
        submitted = 0
        worker_hits = 0
        worker_misses = 0
        lines: list[dict] = []

        def fill_window() -> None:
            nonlocal submitted
            while submitted < len(chunks) and len(futures) < window:
                futures.append(
                    (
                        submitted,
                        pool.submit_chunk(
                            chunks[submitted], telemetry
                        ),
                    )
                )
                submitted += 1

        def drain_next_chunk() -> None:
            nonlocal worker_hits, worker_misses
            chunk_id, future = futures.popleft()
            result = pool.outcome(future, chunks[chunk_id])
            if cache is not None:
                cache.merge(result.pairs)
            worker_hits += result.hits
            worker_misses += result.misses
            results[chunk_id] = result
            fill_window()

        series = window_series()

        def observe_line(
            line: dict, latency: float | None, outcome: str | None
        ) -> None:
            if series is None:
                return
            series.observe(
                RequestSample(
                    ok=line["ok"],
                    latency=latency,
                    queue_depth=len(futures),
                    busy_workers=min(len(futures), self.workers),
                    workers=self.workers,
                    cache=outcome,
                )
            )

        fill_window()
        for kind, request, chunk_id, position in plan:
            if kind == _LOCAL:
                local_hits = (
                    cache.hits if cache is not None else 0
                )
                local_misses = (
                    cache.misses if cache is not None else 0
                )
                started = time.perf_counter()
                line = _run_one(
                    request.index,
                    request.op,
                    request.args,
                    ctx,
                )
                lines.append(line)
                observe_line(
                    line,
                    time.perf_counter() - started,
                    _cache_outcome(cache, local_hits, local_misses),
                )
                continue
            while chunk_id not in results:
                drain_next_chunk()
            result = results[chunk_id]
            shard = result.shards[position]
            if shard is not None:
                replay_shard(shard)
            line = result.lines[position]
            lines.append(line)
            # Pool-served latencies live in the worker span records,
            # not here: a drain-time measurement would charge queue
            # wait to the request. Cache outcome likewise stays with
            # the worker's own counters.
            observe_line(line, None, None)
            if position + 1 == len(result.lines):
                del results[chunk_id]
        stats = None
        if cache is not None:
            coordinator = _stats_delta(
                cache, hits_before, misses_before
            )
            stats = {
                "coordinator": coordinator,
                "entries": coordinator["entries"],
                "hits": coordinator["hits"] + worker_hits,
                "misses": coordinator["misses"] + worker_misses,
                "workers": {
                    "hits": worker_hits,
                    "misses": worker_misses,
                },
            }
        return tuple(lines), stats


def _run_batch(request: dict, ctx: RunContext) -> OpResponse:
    """The ``batch`` operation handler."""
    from ..observability import FlightRecorder, Observer, observed

    requests = load_requests(request["requests"])
    executor = BatchExecutor(
        workers=request["workers"],
        use_cache=not request["no_cache"],
        warm=request["warm"],
        chunk_size=request["chunk_size"],
    )
    recorder = None
    if request["flight_dir"] is not None:
        recorder = FlightRecorder(
            capacity=request["flight_capacity"],
            dump_dir=request["flight_dir"],
        )
    observability = None
    if request["audit_log"] is not None:
        observer = ctx.make_observer(request["audit_log"]).attach(
            flight=recorder
        )
        with observed(observer):
            try:
                result = executor.run(requests)
            finally:
                observer.trail.close()
        verification = observer.trail.verify()
        observability = {
            "audit_events": len(observer.trail),
            "audit_log": str(observer.trail.path),
            "chain_intact": verification.ok,
            "tail_digest": observer.trail.tail_digest,
        }
    elif recorder is not None:
        with observed(Observer(flight=recorder)):
            result = executor.run(requests)
    else:
        result = executor.run(requests)
    payload = dict(result.summary)
    if observability is not None:
        payload["observability"] = observability
    if recorder is not None:
        payload["flight"] = {
            "capacity": recorder.capacity,
            "dir": str(recorder.dump_dir),
            "incidents": [
                {
                    "digest": bundle.digest(),
                    "frames": len(bundle.records),
                    "kind": bundle.kind,
                }
                for bundle in recorder.incidents
            ],
        }
    return OpResponse(
        payload=payload,
        text=result.text(),
        exit_code=0 if payload["failed"] == 0 else 1,
    )


def batch_operation() -> Operation:
    """The registered ``batch`` operation definition."""
    return Operation(
        name="batch",
        help=(
            "stream a JSONL file of operation requests through the "
            "service kernel and print one response line per request"
        ),
        handler=_run_batch,
        args=(
            Arg(
                "requests",
                required=True,
                help=(
                    "path to a JSONL file; each line is "
                    '{"op": NAME, "args": {...}}'
                ),
            ),
            Arg(
                "--workers",
                kind=int,
                default=1,
                help=(
                    "process-pool size; responses are byte-identical "
                    "for any value"
                ),
            ),
            Arg(
                "--warm",
                flag=True,
                help=(
                    "reuse the process-lifetime warm worker pool and "
                    "shared result cache across batch runs (service "
                    "mode) instead of building a pool per run"
                ),
            ),
            Arg(
                "--chunk-size",
                kind=int,
                default=None,
                metavar="N",
                help=(
                    "requests per worker chunk (default: sized from "
                    "the request count and worker count); the "
                    "transcript is byte-identical for any value"
                ),
            ),
            Arg(
                "--audit-log",
                default=None,
                metavar="PATH",
                help=(
                    "record per-request audit events as a tamper-"
                    "evident JSONL trail (merged in input order from "
                    "worker telemetry shards)"
                ),
            ),
            Arg(
                "--no-cache",
                flag=True,
                help=(
                    "disable the content-addressed result cache for "
                    "pure operations"
                ),
            ),
            Arg(
                "--flight-dir",
                default=None,
                metavar="PATH",
                help=(
                    "enable the flight recorder and dump hash-"
                    "chained incident bundles (worker loss, batch "
                    "errors, failed requests) into this directory"
                ),
            ),
            Arg(
                "--flight-capacity",
                kind=int,
                default=256,
                metavar="N",
                help=(
                    "flight-recorder ring size: how many recent "
                    "events/spans/metric deltas an incident bundle "
                    "carries (default: 256)"
                ),
            ),
        ),
        batchable=False,
    )
