"""Renderers serialising a :class:`~repro.tables.layout.TableLayout`.

Formats: Unicode text (for terminals), GitHub Markdown, LaTeX
(both a booktabs-free ``tabular`` that compiles with no extra
packages and an appendix-ready ``booktabs`` variant), CSV and
minimal HTML. Every renderer consumes the same layout object, so
formats cannot drift apart.
"""

from __future__ import annotations

import csv
import html
import io

from .._util import wrap_text
from ..errors import RenderError
from .layout import TableLayout

__all__ = [
    "render_text",
    "render_markdown",
    "render_latex",
    "render_latex_booktabs",
    "render_csv",
    "render_html",
    "render_legend_text",
]

_GROUP_TITLES = {
    "id": "",
    "legal": "Legal issues",
    "ethical": "Ethical issues",
    "justification": "Justifications",
    "meta": "",
    "codes": "",
}

#: Short column glyph headers used in compact text output: we index the
#: closed-dimension columns C1..Cn and explain them in the legend, which
#: keeps the 23-column table within terminal width.
def _column_tags(layout: TableLayout) -> dict[str, str]:
    tags: dict[str, str] = {}
    counters: dict[str, int] = {}
    prefixes = {
        "legal": "L",
        "ethical": "E",
        "justification": "J",
        "meta": "M",
    }
    for column in layout.columns:
        prefix = prefixes.get(column.group)
        if prefix is None:
            tags[column.key] = column.heading
        else:
            counters[prefix] = counters.get(prefix, 0) + 1
            tags[column.key] = f"{prefix}{counters[prefix]}"
    return tags


def render_legend_text(layout: TableLayout) -> str:
    """The footer legend: column tags, code abbreviations, footnotes."""
    tags = _column_tags(layout)
    lines: list[str] = ["Legend:"]
    for group, title in _GROUP_TITLES.items():
        members = [
            c for c in layout.columns if c.group == group and title
        ]
        if not members:
            continue
        parts = ", ".join(
            f"{tags[c.key]}={c.heading}" for c in members
        )
        lines.extend(wrap_text(f"{title}: {parts}", width=78, indent="  "))
    meta = [c for c in layout.columns if c.group == "meta"]
    if meta:
        parts = ", ".join(f"{tags[c.key]}={c.heading}" for c in meta)
        lines.extend(wrap_text(parts, width=78, indent="  "))
    for dim_id, codes in layout.legend.items():
        parts = ", ".join(
            f"{abbrev}={name}" for abbrev, name in codes.items()
        )
        lines.extend(
            wrap_text(f"{dim_id.capitalize()}: {parts}", width=78,
                      indent="  ")
        )
    lines.append(
        "  • legal issue applicable; ✓ discussed/used; ✗ not; "
        "l declined; E exempt; ∅ not applicable"
    )
    for marker, note in layout.footnotes.items():
        lines.extend(wrap_text(f"{marker}: {note}", width=78, indent="  "))
    return "\n".join(lines)


def render_text(layout: TableLayout, *, legend: bool = True) -> str:
    """Unicode box table suitable for terminals (compact headers)."""
    tags = _column_tags(layout)
    keys = layout.column_keys()
    headers = [tags[key] for key in keys]
    # Column widths from headers and cells.
    widths = {key: len(header) for key, header in zip(keys, headers)}
    for row in layout.rows:
        for key in keys:
            widths[key] = max(widths[key], len(row.cells[key]))

    def fmt_cell(key: str, text: str, align: str) -> str:
        width = widths[key]
        if align == "left":
            return text.ljust(width)
        if align == "right":
            return text.rjust(width)
        return text.center(width)

    aligns = {c.key: c.align for c in layout.columns}
    sep = " | "
    header_line = sep.join(
        fmt_cell(key, header, "center")
        for key, header in zip(keys, headers)
    )
    rule = "-+-".join("-" * widths[key] for key in keys)
    lines = [layout.title, "", header_line, rule]
    current_category: str | None = None
    for row in layout.rows:
        if row.category != current_category:
            current_category = row.category
            lines.append(f"-- {current_category} --")
        lines.append(
            sep.join(
                fmt_cell(key, row.cells[key], aligns[key]) for key in keys
            )
        )
    if legend:
        lines.append("")
        lines.append(render_legend_text(layout))
    return "\n".join(lines)


def render_markdown(layout: TableLayout, *, legend: bool = True) -> str:
    """GitHub-flavoured Markdown table."""
    tags = _column_tags(layout)
    keys = layout.column_keys()
    lines = [f"**{layout.title}**", ""]
    lines.append(
        "| Category | " + " | ".join(tags[key] for key in keys) + " |"
    )
    lines.append("|" + "---|" * (len(keys) + 1))
    current_category: str | None = None
    for row in layout.rows:
        category = (
            row.category if row.category != current_category else ""
        )
        current_category = row.category
        cells = " | ".join(
            row.cells[key].replace("|", "\\|") for key in keys
        )
        lines.append(f"| {category} | {cells} |")
    if legend:
        lines.append("")
        for line in render_legend_text(layout).splitlines():
            lines.append(f"> {line}")
    return "\n".join(lines)


_LATEX_ESCAPES = {
    "&": r"\&",
    "%": r"\%",
    "$": r"\$",
    "#": r"\#",
    "_": r"\_",
    "{": r"\{",
    "}": r"\}",
    "~": r"\textasciitilde{}",
    "^": r"\textasciicircum{}",
    "\\": r"\textbackslash{}",
    "•": r"$\bullet$",
    "✓": r"\checkmark",
    "✗": r"$\times$",
    "∅": r"$\emptyset$",
}


def _latex_escape(text: str) -> str:
    return "".join(_LATEX_ESCAPES.get(ch, ch) for ch in text)


def render_latex(layout: TableLayout) -> str:
    """A LaTeX ``table*`` environment mirroring the paper's layout."""
    keys = layout.column_keys()
    colspec = "ll" + "c" * (len(keys) - 1)
    lines = [
        r"\begin{table*}",
        r"  \centering",
        rf"  \caption{{{_latex_escape(layout.title)}}}",
        rf"  \begin{{tabular}}{{{colspec}}}",
        r"    \hline",
    ]
    tags = _column_tags(layout)
    header = " & ".join(
        [r"Category"] + [_latex_escape(tags[key]) for key in keys]
    )
    lines.append(f"    {header} \\\\")
    lines.append(r"    \hline")
    for category, span in layout.category_spans():
        first = True
        for row in layout.rows:
            if row.category != category:
                continue
            cat_cell = (
                rf"\multirow{{{span}}}{{*}}{{{_latex_escape(category)}}}"
                if first
                else ""
            )
            first = False
            cells = " & ".join(
                _latex_escape(row.cells[key]) for key in keys
            )
            lines.append(f"    {cat_cell} & {cells} \\\\")
        lines.append(r"    \hline")
    lines.extend(
        [
            r"  \end{tabular}",
            r"\end{table*}",
        ]
    )
    return "\n".join(lines)


def render_latex_booktabs(layout: TableLayout) -> str:
    """An appendix-ready ``booktabs`` LaTeX ``table*`` environment.

    The publication-quality sibling of :func:`render_latex`: rules
    come from the ``booktabs`` package (``\\toprule``/``\\midrule``/
    ``\\bottomrule``, with ``\\cmidrule`` group spanners and
    ``\\addlinespace`` between category blocks) instead of
    ``\\hline``, and the legend is emitted as a ``tablenotes``-style
    comment block so the fragment can be ``\\input`` into a paper
    appendix unchanged. Requires ``booktabs`` and ``multirow``.
    """
    keys = layout.column_keys()
    tags = _column_tags(layout)
    colspec = "@{}ll" + "c" * (len(keys) - 1) + "@{}"
    lines = [
        r"% requires \usepackage{booktabs} and \usepackage{multirow}",
        r"\begin{table*}",
        r"  \centering",
        rf"  \caption{{{_latex_escape(layout.title)}}}",
        r"  \label{tab:illicit-origin-coding}",
        rf"  \begin{{tabular}}{{{colspec}}}",
        r"    \toprule",
    ]
    # Group spanner row: one \multicolumn per non-empty column group,
    # with \cmidrule separators under the spanned columns. Column 1
    # is the category column the body adds in front of the layout.
    spanners: list[str] = [""]
    cmidrules: list[str] = []
    position = 2  # the first layout column, after the category column
    for group, span in layout.group_spans():
        title = _GROUP_TITLES.get(group, "")
        if title:
            spanners.append(
                rf"\multicolumn{{{span}}}{{c}}{{{_latex_escape(title)}}}"
            )
            cmidrules.append(
                rf"\cmidrule(lr){{{position}-{position + span - 1}}}"
            )
        else:
            spanners.extend([""] * span)
        position += span
    lines.append("    " + " & ".join(spanners) + r" \\")
    if cmidrules:
        lines.append("    " + " ".join(cmidrules))
    header = " & ".join(
        [r"Category"] + [_latex_escape(tags[key]) for key in keys]
    )
    lines.append(f"    {header} \\\\")
    lines.append(r"    \midrule")
    first_category = True
    for category, span in layout.category_spans():
        if not first_category:
            lines.append(r"    \addlinespace")
        first_category = False
        first_row = True
        for row in layout.rows:
            if row.category != category:
                continue
            cat_cell = (
                rf"\multirow{{{span}}}{{*}}{{{_latex_escape(category)}}}"
                if first_row
                else ""
            )
            first_row = False
            cells = " & ".join(
                _latex_escape(row.cells[key]) for key in keys
            )
            lines.append(f"    {cat_cell} & {cells} \\\\")
    lines.append(r"    \bottomrule")
    lines.append(r"  \end{tabular}")
    for legend_line in render_legend_text(layout).splitlines():
        lines.append(f"  % {_latex_escape(legend_line)}")
    lines.append(r"\end{table*}")
    return "\n".join(lines)


def render_csv(layout: TableLayout) -> str:
    """CSV with full (untagged) column headings; no legend."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(
        ["category", "entry_id"]
        + [column.heading for column in layout.columns]
    )
    for row in layout.rows:
        writer.writerow(
            [row.category, row.entry_id]
            + [row.cells[key] for key in layout.column_keys()]
        )
    return buffer.getvalue()


def render_html(layout: TableLayout, *, legend: bool = True) -> str:
    """Minimal standalone HTML table."""
    tags = _column_tags(layout)
    keys = layout.column_keys()
    parts = [
        "<table>",
        f"  <caption>{html.escape(layout.title)}</caption>",
        "  <thead><tr>",
        "    <th>Category</th>",
    ]
    for key in keys:
        parts.append(f"    <th>{html.escape(tags[key])}</th>")
    parts.append("  </tr></thead>")
    parts.append("  <tbody>")
    current_category: str | None = None
    for row in layout.rows:
        parts.append("  <tr>")
        category = (
            row.category if row.category != current_category else ""
        )
        current_category = row.category
        parts.append(f"    <td>{html.escape(category)}</td>")
        for key in keys:
            parts.append(f"    <td>{html.escape(row.cells[key])}</td>")
        parts.append("  </tr>")
    parts.append("  </tbody>")
    parts.append("</table>")
    if legend:
        legend_text = html.escape(render_legend_text(layout))
        parts.append(f"<pre>{legend_text}</pre>")
    return "\n".join(parts)


_RENDERERS = {
    "text": render_text,
    "markdown": render_markdown,
    "latex": render_latex,
    "latex-booktabs": render_latex_booktabs,
    "csv": render_csv,
    "html": render_html,
}


def render(layout: TableLayout, format: str = "text") -> str:
    """Dispatch to the renderer for *format*."""
    try:
        renderer = _RENDERERS[format]
    except KeyError:
        raise RenderError(
            f"unknown format {format!r}; choose from {sorted(_RENDERERS)}"
        ) from None
    return renderer(layout)
