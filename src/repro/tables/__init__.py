"""Table rendering: regenerate Table 1 in several formats."""

from __future__ import annotations

from ..corpus import Corpus
from .charts import bar_chart, series_table, sparkline
from .layout import TableColumn, TableLayout, TableRow, build_table1_layout
from .renderers import (
    render,
    render_csv,
    render_html,
    render_latex,
    render_latex_booktabs,
    render_legend_text,
    render_markdown,
    render_text,
)

__all__ = [
    "TableColumn",
    "TableLayout",
    "TableRow",
    "bar_chart",
    "build_table1_layout",
    "render",
    "render_csv",
    "render_html",
    "render_latex",
    "render_latex_booktabs",
    "render_legend_text",
    "render_markdown",
    "render_table1",
    "render_text",
    "series_table",
    "sparkline",
]


def render_table1(corpus: Corpus, format: str = "text") -> str:
    """Regenerate Table 1 of the paper from the coded corpus.

    *format* is one of ``text``, ``markdown``, ``latex``,
    ``latex-booktabs``, ``csv`` or ``html``.
    """
    return render(build_table1_layout(corpus), format)
