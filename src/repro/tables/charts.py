"""Plain-text charts for terminal reports.

The paper has no figures, but several reproduced analyses are
series-shaped (cracking curves, year trends, incorporation series).
These helpers render them as deterministic ASCII bar charts and
sparklines so examples, the CLI and EXPERIMENTS output can show shape
without any plotting dependency.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from ..errors import RenderError

__all__ = ["bar_chart", "sparkline", "series_table"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def bar_chart(
    values: Mapping[str, float],
    *,
    width: int = 40,
    fill: str = "█",
) -> str:
    """Horizontal bar chart of label → value.

    Bars scale to the maximum value; zero-max charts render empty
    bars rather than dividing by zero.
    """
    if not values:
        raise RenderError("no values to chart")
    if width < 1:
        raise RenderError("width must be positive")
    if any(v < 0 for v in values.values()):
        raise RenderError("bar_chart takes non-negative values")
    label_width = max(len(str(label)) for label in values)
    maximum = max(values.values())
    lines = []
    for label, value in values.items():
        length = (
            round(width * value / maximum) if maximum > 0 else 0
        )
        bar = fill * length
        lines.append(
            f"{str(label):>{label_width}} | {bar} {value:g}"
        )
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line sparkline of a numeric series."""
    if not values:
        raise RenderError("no values to chart")
    low = min(values)
    high = max(values)
    if high == low:
        return _SPARK_LEVELS[0] * len(values)
    scale = len(_SPARK_LEVELS) - 1
    return "".join(
        _SPARK_LEVELS[round((v - low) / (high - low) * scale)]
        for v in values
    )


def series_table(
    series: Mapping[str, Sequence[float]],
    *,
    precision: int = 3,
) -> str:
    """Aligned table of named numeric series (equal lengths).

    Useful for printing cracking curves side by side.
    """
    if not series:
        raise RenderError("no series to render")
    lengths = {len(values) for values in series.values()}
    if len(lengths) != 1:
        raise RenderError("all series must have equal length")
    (length,) = lengths
    if length == 0:
        raise RenderError("series must be non-empty")
    name_width = max(len(name) for name in series)
    cell_width = precision + 4
    lines = []
    for name, values in series.items():
        cells = " ".join(
            f"{value:{cell_width}.{precision}f}" for value in values
        )
        lines.append(
            f"{name:>{name_width}} {cells}  {sparkline(values)}"
        )
    return "\n".join(lines)
