"""Format-agnostic layout model for coding-matrix tables.

:func:`build_table1_layout` converts a corpus into a :class:`TableLayout`
— an ordered grid of already-stringified cells plus header groups,
category spans and the footnote legend — which each renderer
(text/markdown/latex/csv/html) then serialises without re-deriving any
semantics.
"""

from __future__ import annotations

import dataclasses

from ..codebook import CellValue, DimensionKind
from ..corpus import Corpus, TABLE1_FOOTNOTES
from ..errors import RenderError

__all__ = ["TableColumn", "TableRow", "TableLayout", "build_table1_layout"]


@dataclasses.dataclass(frozen=True)
class TableColumn:
    """One column of the layout."""

    key: str
    heading: str
    group: str  # "id", "legal", "ethical", "justification", "meta", "codes"
    align: str = "center"  # "left" | "center" | "right"


@dataclasses.dataclass(frozen=True)
class TableRow:
    """One body row: category (for grouping), cells keyed by column."""

    entry_id: str
    category: str
    cells: dict[str, str]
    footnotes: tuple[str, ...]


@dataclasses.dataclass(frozen=True)
class TableLayout:
    """The complete, renderer-ready table."""

    title: str
    columns: tuple[TableColumn, ...]
    rows: tuple[TableRow, ...]
    footnotes: dict[str, str]
    legend: dict[str, dict[str, str]]

    def column_keys(self) -> tuple[str, ...]:
        return tuple(c.key for c in self.columns)

    def group_spans(self) -> list[tuple[str, int]]:
        """(group, column count) runs in column order."""
        spans: list[tuple[str, int]] = []
        for column in self.columns:
            if spans and spans[-1][0] == column.group:
                spans[-1] = (column.group, spans[-1][1] + 1)
            else:
                spans.append((column.group, 1))
        return spans

    def category_spans(self) -> list[tuple[str, int]]:
        """(category, row count) runs in row order."""
        spans: list[tuple[str, int]] = []
        for row in self.rows:
            if spans and spans[-1][0] == row.category:
                spans[-1] = (row.category, spans[-1][1] + 1)
            else:
                spans.append((row.category, 1))
        return spans


_GROUP_HEADINGS = {
    "legal": "Legal issues",
    "ethical": "Ethical issues",
    "justification": "Justifications",
}

#: Compact column headings for the closed dimensions, matching the
#: rotated headers of the paper's Table 1.
_SHORT_HEADINGS = {
    "computer-misuse": "Computer misuse",
    "copyright": "Copyright",
    "data-privacy": "Data privacy",
    "terrorism": "Terrorism",
    "indecent-images": "Indecent images",
    "national-security": "National security",
    "identification-of-stakeholders": "Identification of stakeholders",
    "identify-harms": "Identify harms",
    "safeguards-discussed": "Safeguards",
    "justice": "Justice",
    "public-interest": "Public interest",
    "not-the-first": "Not the first",
    "public-data": "Public data",
    "no-additional-harm": "No additional harm",
    "fight-malicious-use": "Fight malicious use",
    "necessary-data": "Necessary data",
    "ethics-section": "Ethics section",
    "reb-approval": "REB approval",
}


def build_table1_layout(corpus: Corpus, title: str | None = None) -> TableLayout:
    """Build the renderer-ready layout of Table 1 from a corpus."""
    codebook = corpus.codebook
    columns: list[TableColumn] = [
        TableColumn(key="sources", heading="Sources", group="id",
                    align="left"),
        TableColumn(key="reference", heading="Ref", group="id",
                    align="right"),
        TableColumn(key="year", heading="Year", group="id", align="right"),
    ]
    for dim in codebook:
        if dim.kind != DimensionKind.CLOSED:
            continue
        columns.append(
            TableColumn(
                key=dim.id,
                heading=_SHORT_HEADINGS.get(dim.id, dim.name),
                group=dim.group,
            )
        )
    for dim in codebook.open_dimensions():
        columns.append(
            TableColumn(
                key=dim.id, heading=dim.name, group="codes", align="left"
            )
        )

    rows: list[TableRow] = []
    previous_label: str | None = None
    for entry in corpus:
        marks = "".join(entry.footnotes)
        label = entry.source_label
        display_label = "" if label == previous_label else label
        previous_label = label
        cells: dict[str, str] = {
            "sources": display_label,
            "reference": f"[{entry.reference}]{marks}",
            "year": str(entry.year % 100).zfill(2),
        }
        for dim in codebook.closed_dimensions():
            value = entry.values.get(dim.id)
            if value is None:
                raise RenderError(
                    f"entry {entry.id!r} missing value for {dim.id!r}"
                )
            glyph = value.glyph
            if value is CellValue.NOT_APPLICABLE:
                glyph = ""
            cells[dim.id] = glyph
        for dim in codebook.open_dimensions():
            cells[dim.id] = ",".join(entry.codes(dim.id))
        rows.append(
            TableRow(
                entry_id=entry.id,
                category=entry.category,
                cells=cells,
                footnotes=entry.footnotes,
            )
        )

    return TableLayout(
        title=title
        or (
            "Table 1: Summary of the legal/ethical issues and the "
            "justifications made by the authors for each paper."
        ),
        columns=tuple(columns),
        rows=tuple(rows),
        footnotes=dict(TABLE1_FOOTNOTES),
        legend=codebook.legend(),
    )
