"""Lightweight runtime metrics: counters, gauges and histograms.

A :class:`MetricsRegistry` hands out named instruments memoised by
name — :class:`Counter` (monotonic sums), :class:`Gauge`
(point-in-time values merged by maximum, matching how the pipeline
treats cache occupancy) and :class:`Histogram` (count/total/min/max
summaries, enough to report throughput without storing samples).
``snapshot()`` renders everything as one sorted, JSON-safe dict.

The **no-op mode** is the load-bearing design point: the module
singleton :data:`NULL_METRICS` implements the same interface with
three shared do-nothing instruments, so instrumented code always
writes ``metrics.counter("x").inc()`` unconditionally and the
disabled path costs two attribute lookups and an empty method call —
no branches at call sites, no allocation, no measurable overhead on
the pipeline hot path (see ``docs/observability.md`` for numbers).
"""

from __future__ import annotations

from bisect import bisect_left
from math import ceil

from ..errors import SafeguardError

__all__ = [
    "BUCKET_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetrics",
]

#: Fixed histogram bucket upper bounds (seconds *and* sizes share one
#: log scale). The bounds are a module constant rather than per
#: histogram so that bucket counts merge deterministically: the same
#: observations fall into the same buckets no matter how many worker
#: registries they were recorded in before merging, which is what
#: lets the Prometheus/OTLP exporters render identical output for
#: ``workers=1`` and ``workers=N`` runs of the same seeded workload.
BUCKET_BOUNDS: tuple[float, ...] = tuple(
    10.0 ** exponent for exponent in range(-6, 10)
)


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add *amount* (must be non-negative) to the counter."""
        if amount < 0:
            raise SafeguardError("counters only increase")
        self.value += amount


class Gauge:
    """A point-in-time value; merges take the maximum observed."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value: int | float) -> None:
        """Record the current value."""
        self.value = value

    def set_max(self, value: int | float) -> None:
        """Record *value* only if it exceeds the current one."""
        if value > self.value:
            self.value = value


class Histogram:
    """A count/total/min/max summary plus fixed bucket counts.

    Buckets use the module-wide :data:`BUCKET_BOUNDS` — bucket ``i``
    counts observations ``value <= BUCKET_BOUNDS[i]`` that exceeded
    the previous bound, and one overflow slot counts everything
    beyond the last bound. Fixed bounds keep bucket counts exactly
    mergeable across worker registries.
    """

    __slots__ = ("count", "total", "minimum", "maximum", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self.buckets = [0] * (len(BUCKET_BOUNDS) + 1)

    def observe(self, value: int | float) -> None:
        """Fold one observation into the summary."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self.buckets[bisect_left(BUCKET_BOUNDS, value)] += 1

    @property
    def mean(self) -> float:
        """The arithmetic mean of observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """Bucket-estimated *q*-quantile (``None`` when empty).

        Returns the **upper bound** of the bucket holding the exact
        rank-``ceil(q * count)`` observation — by construction never
        below the exact quantile and never more than one bucket bound
        above it (the accuracy contract the windowed-percentile tests
        assert). Observations beyond the last bound report the exact
        maximum, the only honest upper bound the overflow slot has.
        """
        if not self.count:
            return None
        if not 0.0 < q <= 1.0:
            raise SafeguardError(
                "quantile must be in (0, 1], got "
                f"{q!r}"
            )
        # Nearest-rank definition: rank = ceil(q * n). The epsilon
        # absorbs binary-float drift (0.7 * 10 == 7.000000000000001)
        # so an exactly-integral mathematical rank never rounds up.
        rank = max(1, ceil(q * self.count - 1e-9))
        cumulative = 0
        for position, bucket in enumerate(self.buckets):
            cumulative += bucket
            if cumulative >= rank:
                if position < len(BUCKET_BOUNDS):
                    return BUCKET_BOUNDS[position]
                return self.maximum
        return self.maximum  # pragma: no cover - counts always sum

    def summary(self) -> dict:
        """JSON-safe summary dict for snapshots."""
        if not self.count:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "total": round(self.total, 6),
            "min": round(self.minimum, 6),
            "max": round(self.maximum, 6),
            "buckets": list(self.buckets),
        }


class MetricsRegistry:
    """Named instruments, memoised by name, snapshotable as JSON."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    @property
    def enabled(self) -> bool:
        """Whether this registry records anything (no-op → False)."""
        return True

    def counter(self, name: str) -> Counter:
        """The counter registered under *name* (created on demand)."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under *name* (created on demand)."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram under *name* (created on demand)."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram()
        return instrument

    def snapshot(self) -> dict:
        """Everything recorded, as a sorted JSON-safe dict."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].summary()
                for name in sorted(self._histograms)
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters add, gauges keep the maximum, histogram summaries
        combine count/total/min/max — the same semantics the
        pipeline uses to aggregate per-chunk stats, so a per-run
        registry can be folded into a process-wide one losslessly.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set_max(value)
        for name, summary in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name)
            count = summary.get("count", 0)
            if not count:
                continue
            histogram.count += count
            histogram.total += summary.get("total", 0.0)
            # A summary with count > 0 may still omit min/max (a
            # hand-built or partial snapshot); folding a default 0.0
            # into the running extremes would corrupt them, so absent
            # keys are skipped rather than defaulted.
            if "min" in summary:
                histogram.minimum = min(
                    histogram.minimum, summary["min"]
                )
            if "max" in summary:
                histogram.maximum = max(
                    histogram.maximum, summary["max"]
                )
            incoming = summary.get("buckets")
            if incoming and len(incoming) == len(histogram.buckets):
                for index, bucket_count in enumerate(incoming):
                    histogram.buckets[index] += bucket_count


class _NullCounter(Counter):
    """Shared do-nothing counter."""

    __slots__ = ()

    def inc(self, amount: int | float = 1) -> None:
        """Discard the increment."""


class _NullGauge(Gauge):
    """Shared do-nothing gauge."""

    __slots__ = ()

    def set(self, value: int | float) -> None:
        """Discard the value."""

    def set_max(self, value: int | float) -> None:
        """Discard the value."""


class _NullHistogram(Histogram):
    """Shared do-nothing histogram."""

    __slots__ = ()

    def observe(self, value: int | float) -> None:
        """Discard the observation."""


class NullMetrics(MetricsRegistry):
    """The no-op registry: same interface, zero recording.

    Every ``counter()``/``gauge()``/``histogram()`` call returns the
    same shared null instrument regardless of name, so instrumented
    code pays no allocation and no branching when metrics are off.
    """

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter()
        self._null_gauge = _NullGauge()
        self._null_histogram = _NullHistogram()

    @property
    def enabled(self) -> bool:
        """Always False: nothing is ever recorded."""
        return False

    def counter(self, name: str) -> Counter:
        """The shared null counter (name is ignored)."""
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        """The shared null gauge (name is ignored)."""
        return self._null_gauge

    def histogram(self, name: str) -> Histogram:
        """The shared null histogram (name is ignored)."""
        return self._null_histogram


#: The process-wide no-op registry instrumented code defaults to.
NULL_METRICS = NullMetrics()
