"""Context-manager tracing spans for the safeguard machinery.

A :class:`Tracer` hands out ``with tracer.span("pipeline.seal"):``
context managers. Each finished span records its wall-clock duration
(``time.perf_counter`` — the one clock the determinism rules allow,
because timings live strictly outside the data path) both in the
tracer's finished-span list and, when the tracer was built over a
:class:`~repro.observability.metrics.MetricsRegistry`, as a
``span.<name>.seconds`` histogram observation.

The :data:`NULL_TRACER` singleton is the no-op twin: ``span()``
returns one shared, reusable context manager whose enter/exit do
nothing, so instrumented code never branches on whether tracing is
enabled. Spans nest (the tracer tracks depth) and are process-local;
pipeline worker processes record spans into chunk-local tracers
whose finished records ship back for :meth:`Tracer.absorb` in the
coordinator (see :mod:`repro.observability.worker`). The tracer also
exposes :attr:`Tracer.active_span` — the innermost open span's name
— which the sampling profiler reads from its sampler thread to
attribute stack samples.
"""

from __future__ import annotations

import dataclasses
import time
from collections.abc import Iterable

from .metrics import NULL_METRICS, MetricsRegistry

__all__ = ["NULL_TRACER", "NullTracer", "Span", "SpanRecord", "Tracer"]


@dataclasses.dataclass(frozen=True)
class SpanRecord:
    """One finished span: name, nesting depth and duration."""

    name: str
    depth: int
    seconds: float


class Span:
    """A live timing span; use via ``with tracer.span(name):``."""

    __slots__ = ("name", "_tracer", "_started")

    def __init__(self, name: str, tracer: "Tracer") -> None:
        self.name = name
        self._tracer = tracer
        self._started = 0.0

    def __enter__(self) -> "Span":
        tracer = self._tracer
        tracer._depth += 1
        tracer._active.append(self.name)
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed = time.perf_counter() - self._started
        tracer = self._tracer
        tracer._depth -= 1
        tracer._active.pop()
        tracer._record(self.name, tracer._depth, elapsed)


class Tracer:
    """Produces spans and keeps the finished-span record."""

    def __init__(
        self, metrics: MetricsRegistry | None = None
    ) -> None:
        self._metrics = metrics or NULL_METRICS
        self._finished: list[SpanRecord] = []
        self._depth = 0
        self._active: list[str] = []

    @property
    def enabled(self) -> bool:
        """Whether spans record anything (the null tracer → False)."""
        return True

    @property
    def active_span(self) -> str:
        """The innermost open span's name ("" when none is open).

        The sampling profiler reads this from its sampler thread to
        attribute stack samples to the span the instrumented thread
        is inside; a one-element read of the stack is safe under the
        GIL without locking.
        """
        active = self._active
        return active[-1] if active else ""

    def span(self, name: str) -> Span:
        """A context manager timing the enclosed block as *name*."""
        return Span(name, self)

    def _record(
        self, name: str, depth: int, seconds: float
    ) -> None:
        self._finished.append(SpanRecord(name, depth, seconds))
        self._metrics.histogram(f"span.{name}.seconds").observe(
            seconds
        )

    def absorb(self, records: "Iterable[SpanRecord]") -> None:
        """Append already-finished spans from another tracer.

        Used by the pipeline's worker-telemetry merge: span records
        shipped back from worker processes are appended in chunk
        order. Metrics are *not* re-fed — the worker's own
        ``span.<name>.seconds`` histogram observations arrive via its
        registry snapshot, so re-observing here would double-count.
        """
        self._finished.extend(records)

    @property
    def finished(self) -> tuple[SpanRecord, ...]:
        """Every finished span, in completion order."""
        return tuple(self._finished)

    def summary(self) -> dict:
        """Per-name {count, seconds} totals, sorted by name."""
        totals: dict[str, dict] = {}
        for record in self._finished:
            entry = totals.setdefault(
                record.name, {"count": 0, "seconds": 0.0}
            )
            entry["count"] += 1
            entry["seconds"] += record.seconds
        return {
            name: {
                "count": entry["count"],
                "seconds": round(entry["seconds"], 6),
            }
            for name, entry in sorted(totals.items())
        }


class _NullSpan:
    """The shared no-op span."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """No-op tracer: ``span()`` returns one shared inert manager."""

    def __init__(self) -> None:
        super().__init__()

    @property
    def enabled(self) -> bool:
        """Always False: spans never record."""
        return False

    def span(self, name: str) -> Span:
        """The shared no-op span (name is ignored)."""
        return _NULL_SPAN  # type: ignore[return-value]


#: The process-wide no-op tracer instrumented code defaults to.
NULL_TRACER = NullTracer()
