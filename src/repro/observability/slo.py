"""Declarative SLOs: operational policy as data, evaluated over windows.

The paper argues safeguards must be *demonstrable*; PAPERS.md's
Ramirez et al. adds that evaluation policy should live in a
knowledge base — **data, not code**. This module applies that to the
operational layer: a service-level objective is a plain JSON
document, and changing the policy (tighter latency bound, smaller
error budget) is a data drop that flips ``repro-ethics obs slo``
from exit 0 to exit 1 without touching a line of code.

A spec looks like::

    {
      "name": "batch-availability",
      "window": 50,
      "objectives": [
        {"id": "availability", "metric": "error_rate",
         "threshold": 0.01, "comparison": "<="},
        {"id": "p99", "metric": "latency_p99_seconds",
         "threshold": 0.5, "comparison": "<="},
        {"id": "burn", "metric": "error_budget_burn",
         "threshold": 2.0, "comparison": "<=",
         "budget": 0.01, "windows": 3}
      ]
    }

``metric`` names one of the per-window measurements a
:class:`~repro.observability.windows.Window` reports, or the derived
``error_budget_burn`` (per-window ``error_rate / budget``, averaged
over a rolling run of ``windows`` consecutive windows — the burn-rate
alerting shape). Objectives are judged **per window**: a single bad
window breaches, because logical windows are the unit of degradation
the flight recorder and the audit chain can localize.

Windows that never saw a series (an audit-chain-fed run has no
latencies) make the objective ``no-data`` rather than pass or fail —
an absent measurement is evidence of nothing. Evaluation is a pure
function of (spec, series): evaluating the windowed view of the same
audit chain always yields the same report bytes, which is what makes
SLO verdicts reproducible across batch worker counts.
"""

from __future__ import annotations

import dataclasses

from ..errors import OperationError
from .windows import WindowSeries

__all__ = [
    "SloObjective",
    "SloReport",
    "SloSpec",
    "evaluate_slo",
]

#: Window measurements an objective may target, plus the derived
#: burn-rate metric. Sorted; surfaced in validation errors.
SUPPORTED_METRICS: tuple[str, ...] = (
    "cache_hit_rate",
    "error_budget_burn",
    "error_rate",
    "latency_mean_seconds",
    "latency_p50_seconds",
    "latency_p99_seconds",
    "queue_depth_max",
    "queue_depth_mean",
    "worker_utilization",
)

_COMPARISONS = ("<=", ">=")


def _spec_error(message: str) -> OperationError:
    return OperationError(f"invalid SLO spec: {message}")


@dataclasses.dataclass(frozen=True)
class SloObjective:
    """One declarative objective: a metric, a bound, a direction.

    ``comparison`` is the direction a *healthy* window satisfies:
    ``"<="`` for ceilings (error rate, latency), ``">="`` for floors
    (cache hit rate, utilization). ``windows`` > 1 averages the
    metric over that many consecutive windows before comparing —
    with ``metric="error_budget_burn"`` and a ``budget`` that is
    exactly the classic multi-window burn-rate alert.
    """

    id: str
    metric: str
    threshold: float
    comparison: str = "<="
    windows: int = 1
    budget: float | None = None

    @classmethod
    def from_dict(cls, body: dict, position: int) -> "SloObjective":
        """Validate one objective object from a spec document."""
        if not isinstance(body, dict):
            raise _spec_error(
                f"objective #{position} must be an object"
            )
        unknown = set(body) - {
            "id",
            "metric",
            "threshold",
            "comparison",
            "windows",
            "budget",
        }
        if unknown:
            raise _spec_error(
                f"objective #{position} has unknown keys "
                f"{sorted(unknown)}"
            )
        identifier = body.get("id", f"objective-{position}")
        metric = body.get("metric")
        if metric not in SUPPORTED_METRICS:
            raise _spec_error(
                f"objective {identifier!r} metric must be one of "
                f"{list(SUPPORTED_METRICS)}, got {metric!r}"
            )
        threshold = body.get("threshold")
        if not isinstance(threshold, (int, float)) or isinstance(
            threshold, bool
        ):
            raise _spec_error(
                f"objective {identifier!r} needs a numeric threshold"
            )
        comparison = body.get("comparison", "<=")
        if comparison not in _COMPARISONS:
            raise _spec_error(
                f"objective {identifier!r} comparison must be one "
                f"of {list(_COMPARISONS)}"
            )
        windows = body.get("windows", 1)
        if not isinstance(windows, int) or windows < 1:
            raise _spec_error(
                f"objective {identifier!r} windows must be a "
                "positive integer"
            )
        budget = body.get("budget")
        if metric == "error_budget_burn":
            if (
                not isinstance(budget, (int, float))
                or isinstance(budget, bool)
                or budget <= 0
            ):
                raise _spec_error(
                    f"objective {identifier!r} needs a positive "
                    "numeric budget for error_budget_burn"
                )
        elif budget is not None:
            raise _spec_error(
                f"objective {identifier!r} only takes a budget "
                "with metric error_budget_burn"
            )
        return cls(
            id=str(identifier),
            metric=metric,
            threshold=float(threshold),
            comparison=comparison,
            windows=windows,
            budget=float(budget) if budget is not None else None,
        )


@dataclasses.dataclass(frozen=True)
class SloSpec:
    """A validated SLO document: a name, a window size, objectives."""

    name: str
    window_size: int
    objectives: tuple[SloObjective, ...]

    @classmethod
    def from_dict(cls, body: dict) -> "SloSpec":
        """Validate a parsed spec document (the data-drop boundary)."""
        if not isinstance(body, dict):
            raise _spec_error("the document must be a JSON object")
        unknown = set(body) - {"name", "window", "objectives"}
        if unknown:
            raise _spec_error(f"unknown keys {sorted(unknown)}")
        name = body.get("name", "slo")
        if not isinstance(name, str) or not name:
            raise _spec_error("name must be a non-empty string")
        window_size = body.get("window", 50)
        if not isinstance(window_size, int) or window_size < 1:
            raise _spec_error(
                "window must be a positive integer request count"
            )
        raw = body.get("objectives")
        if not isinstance(raw, list) or not raw:
            raise _spec_error(
                "objectives must be a non-empty array"
            )
        objectives = tuple(
            SloObjective.from_dict(entry, position)
            for position, entry in enumerate(raw)
        )
        seen: set[str] = set()
        for objective in objectives:
            if objective.id in seen:
                raise _spec_error(
                    f"duplicate objective id {objective.id!r}"
                )
            seen.add(objective.id)
        return cls(
            name=name,
            window_size=window_size,
            objectives=objectives,
        )


@dataclasses.dataclass(frozen=True)
class SloReport:
    """The evaluation verdict: per-objective results plus gating."""

    name: str
    window_size: int
    windows: int
    requests: int
    results: tuple[dict, ...]

    @property
    def ok(self) -> bool:
        """True when no objective breached (``no-data`` passes)."""
        return all(
            result["status"] != "breached"
            for result in self.results
        )

    @property
    def exit_code(self) -> int:
        """The gateable exit status: 0 compliant, 1 breached."""
        return 0 if self.ok else 1

    def to_dict(self) -> dict:
        """JSON-safe report, keys sorted for byte-stable emission."""
        return {
            "name": self.name,
            "ok": self.ok,
            "requests": self.requests,
            "results": [dict(result) for result in self.results],
            "window_size": self.window_size,
            "windows": self.windows,
        }

    def describe(self) -> str:
        """Human-readable verdict lines, one per objective."""
        lines = [
            f"slo: {self.name} over {self.windows} window(s) of "
            f"{self.window_size} request(s) ({self.requests} total)"
        ]
        for result in self.results:
            status = result["status"]
            measured = result["measured"]
            shown = "n/a" if measured is None else measured
            lines.append(
                f"  [{status}] {result['id']}: "
                f"{result['metric']} {shown} "
                f"{result['comparison']} {result['threshold']}"
                + (
                    f" (worst window {result['window']})"
                    if result["window"] is not None
                    else ""
                )
            )
        lines.append("verdict: " + ("pass" if self.ok else "fail"))
        return "\n".join(lines)


def _series_values(
    objective: SloObjective, windows: tuple
) -> list[float | None]:
    """The per-window metric values this objective compares."""
    if objective.metric == "error_budget_burn":
        return [
            (
                None
                if window.measurements()["error_rate"] is None
                else round(
                    window.measurements()["error_rate"]
                    / objective.budget,
                    6,
                )
            )
            for window in windows
        ]
    return [
        window.measurements()[objective.metric]
        for window in windows
    ]


def _rolling(values: list, width: int) -> list[float | None]:
    """Means over every run of *width* consecutive known values."""
    if width <= 1:
        return values
    rolled: list[float | None] = []
    for end in range(width, len(values) + 1):
        run = values[end - width : end]
        if any(value is None for value in run):
            rolled.append(None)
        else:
            rolled.append(round(sum(run) / width, 6))
    return rolled


def evaluate_slo(spec: SloSpec, series: WindowSeries) -> SloReport:
    """Judge every objective of *spec* against *series*.

    For each objective: take the metric's per-window values, roll
    them over ``objective.windows`` consecutive windows when asked,
    and breach on the **worst** value that violates the comparison.
    Objectives whose series carries no data anywhere report
    ``no-data`` and do not gate. Pure function of its inputs — the
    same chain-derived series always yields the same report.
    """
    windows = series.windows()
    results: list[dict] = []
    for objective in spec.objectives:
        values = _rolling(
            _series_values(objective, windows), objective.windows
        )
        known = [
            (value, position)
            for position, value in enumerate(values)
            if value is not None
        ]
        entry = {
            "comparison": objective.comparison,
            "id": objective.id,
            "metric": objective.metric,
            "threshold": objective.threshold,
        }
        if objective.budget is not None:
            entry["budget"] = objective.budget
        if objective.windows > 1:
            entry["rolling_windows"] = objective.windows
        if not known:
            entry.update(
                measured=None, status="no-data", window=None
            )
            results.append(entry)
            continue
        if objective.comparison == "<=":
            worst, window = max(known)
            breached = worst > objective.threshold
        else:
            worst, window = min(known)
            breached = worst < objective.threshold
        entry.update(
            measured=worst,
            status="breached" if breached else "ok",
            window=window,
        )
        results.append(entry)
    return SloReport(
        name=spec.name,
        window_size=series.window_size,
        windows=len(windows),
        requests=series.total,
        results=tuple(results),
    )
