"""Logical-clock telemetry windows: per-N-requests, no wall time.

Production SLO tooling slices telemetry into *time* windows; this
repository's telemetry is deliberately clock-free, so the health
surface slices by **logical clock** instead — every window covers a
fixed number of requests, whatever wall time they took. The result
is reproducible by construction: the windowed view of an audit chain
is a pure function of the chain, so ``workers=1`` and ``workers=N``
batch runs of the same request file window identically.

* :class:`RequestSample` — one request's contribution: outcome,
  optional latency (seconds), queue depth at drain time, worker
  busyness, cache hit/miss. Every field except ``ok`` is optional
  because the two feeders differ: a live batch executor knows
  latencies and queue depths, an audit chain knows only outcomes.
* :class:`Window` — the per-window aggregate: ok/failed counts, a
  latency :class:`~repro.observability.metrics.Histogram` over the
  shared :data:`~repro.observability.metrics.BUCKET_BOUNDS` (which
  keeps bucket-estimated percentiles mergeable across sources),
  queue-depth max/mean, worker utilization and cache hit rate.
  :meth:`Window.merge` is commutative — counts add, buckets add,
  extremes take min/max — so merging per-window aggregates from two
  sources is **order-stable**: ``merge(a, b)`` and ``merge(b, a)``
  produce identical measurements.
* :class:`WindowSeries` — the rolling collection: ``observe()``
  folds samples into the open window and closes it every
  ``window_size`` requests; the final partial window is evaluated
  too (a short run still gets an SLO verdict).
* :func:`windows_from_events` — the audit-chain feeder: folds the
  ``ops/request-completed`` / ``ops/request-failed`` brackets of a
  verified chain into a series. Chains carry no timings, so the
  latency histogram stays empty and latency objectives report
  ``no-data`` — the honest reading of a clock-free record.

The SLO engine (:mod:`repro.observability.slo`) evaluates declarative
objectives over these windows.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Sequence

from ..errors import SafeguardError
from .events import AuditEvent
from .metrics import Histogram

__all__ = [
    "RequestSample",
    "Window",
    "WindowSeries",
    "windows_from_events",
]


@dataclasses.dataclass(frozen=True)
class RequestSample:
    """One request's telemetry contribution to the current window.

    ``latency`` is in seconds; ``cache`` is ``"hit"``, ``"miss"`` or
    ``None`` (unknown); ``queue_depth`` counts work in flight behind
    this request at drain time; ``busy_workers``/``workers`` feed the
    utilization series. Unknown fields stay ``None`` and simply do
    not contribute — a window only reports series it actually saw.
    """

    ok: bool = True
    latency: float | None = None
    queue_depth: int | None = None
    busy_workers: int | None = None
    workers: int | None = None
    cache: str | None = None


class Window:
    """The aggregate of one logical window of requests."""

    __slots__ = (
        "index",
        "start",
        "count",
        "ok",
        "failed",
        "latency",
        "queue_depth_max",
        "queue_depth_total",
        "queue_samples",
        "busy_total",
        "worker_total",
        "hits",
        "misses",
    )

    def __init__(self, index: int, start: int) -> None:
        self.index = index
        self.start = start
        self.count = 0
        self.ok = 0
        self.failed = 0
        self.latency = Histogram()
        self.queue_depth_max = 0
        self.queue_depth_total = 0
        self.queue_samples = 0
        self.busy_total = 0
        self.worker_total = 0
        self.hits = 0
        self.misses = 0

    def observe(self, sample: RequestSample) -> None:
        """Fold one sample into this window's aggregates."""
        self.count += 1
        if sample.ok:
            self.ok += 1
        else:
            self.failed += 1
        if sample.latency is not None:
            self.latency.observe(sample.latency)
        if sample.queue_depth is not None:
            self.queue_samples += 1
            self.queue_depth_total += sample.queue_depth
            if sample.queue_depth > self.queue_depth_max:
                self.queue_depth_max = sample.queue_depth
        if sample.busy_workers is not None and sample.workers:
            self.busy_total += sample.busy_workers
            self.worker_total += sample.workers
        if sample.cache == "hit":
            self.hits += 1
        elif sample.cache == "miss":
            self.misses += 1

    def merge(self, other: "Window") -> None:
        """Fold *other*'s aggregates into this window.

        Every operation is commutative (sums, bucket sums, maxima),
        so merging a set of per-window aggregates produces identical
        measurements in any merge order — the property the
        order-stability tests pin down.
        """
        self.count += other.count
        self.ok += other.ok
        self.failed += other.failed
        self.latency.count += other.latency.count
        self.latency.total += other.latency.total
        if other.latency.count:
            self.latency.minimum = min(
                self.latency.minimum, other.latency.minimum
            )
            self.latency.maximum = max(
                self.latency.maximum, other.latency.maximum
            )
        for position, bucket in enumerate(other.latency.buckets):
            self.latency.buckets[position] += bucket
        if other.queue_depth_max > self.queue_depth_max:
            self.queue_depth_max = other.queue_depth_max
        self.queue_depth_total += other.queue_depth_total
        self.queue_samples += other.queue_samples
        self.busy_total += other.busy_total
        self.worker_total += other.worker_total
        self.hits += other.hits
        self.misses += other.misses

    def measurements(self) -> dict:
        """Every derived series this window can report, sorted.

        Series the window never saw (no latency samples, no cache
        outcomes, no queue readings) are ``None`` — the SLO engine
        treats those objectives as ``no-data`` rather than inventing
        a zero.
        """
        latency = self.latency
        cache_total = self.hits + self.misses
        return {
            "cache_hit_rate": (
                round(self.hits / cache_total, 6)
                if cache_total
                else None
            ),
            "error_rate": (
                round(self.failed / self.count, 6)
                if self.count
                else None
            ),
            "latency_mean_seconds": (
                round(latency.mean, 6) if latency.count else None
            ),
            "latency_p50_seconds": latency.quantile(0.5),
            "latency_p99_seconds": latency.quantile(0.99),
            "queue_depth_max": (
                self.queue_depth_max if self.queue_samples else None
            ),
            "queue_depth_mean": (
                round(
                    self.queue_depth_total / self.queue_samples, 6
                )
                if self.queue_samples
                else None
            ),
            "worker_utilization": (
                round(self.busy_total / self.worker_total, 6)
                if self.worker_total
                else None
            ),
        }

    def to_dict(self) -> dict:
        """JSON-safe summary: bounds, raw counts and measurements."""
        return {
            "count": self.count,
            "failed": self.failed,
            "index": self.index,
            "measurements": self.measurements(),
            "ok": self.ok,
            "start": self.start,
        }


class WindowSeries:
    """A rolling sequence of fixed-size logical windows."""

    __slots__ = ("window_size", "total", "_closed", "_open")

    def __init__(self, window_size: int = 50) -> None:
        if window_size < 1:
            raise SafeguardError(
                "window size must be at least 1 request"
            )
        self.window_size = window_size
        self.total = 0
        self._closed: list[Window] = []
        self._open: Window | None = None

    def observe(self, sample: RequestSample) -> None:
        """Fold one sample; close the window at ``window_size``."""
        window = self._open
        if window is None:
            window = self._open = Window(
                index=len(self._closed), start=self.total
            )
        window.observe(sample)
        self.total += 1
        if window.count >= self.window_size:
            self._closed.append(window)
            self._open = None

    def observe_many(
        self, samples: Iterable[RequestSample]
    ) -> None:
        """Fold an iterable of samples in order."""
        for sample in samples:
            self.observe(sample)

    def windows(self, *, partial: bool = True) -> tuple[Window, ...]:
        """Closed windows, plus the open partial one when *partial*."""
        if partial and self._open is not None:
            return (*self._closed, self._open)
        return tuple(self._closed)

    def merge(self, other: "WindowSeries") -> None:
        """Fold *other*'s windows into this series, index by index.

        Both series must share a window size; windows beyond this
        series' current length are adopted as copies. Because
        :meth:`Window.merge` is commutative, a set of series merges
        to the same measurements in any order.
        """
        if other.window_size != self.window_size:
            raise SafeguardError(
                "cannot merge series with different window sizes "
                f"({self.window_size} vs {other.window_size})"
            )
        ours = list(self.windows())
        theirs = other.windows()
        for position, window in enumerate(theirs):
            if position < len(ours):
                ours[position].merge(window)
            else:
                adopted = Window(
                    index=position, start=window.start
                )
                adopted.merge(window)
                ours.append(adopted)
        self.total += other.total
        # Re-partition: every full window is closed, a trailing
        # partial stays open.
        self._closed = [
            window
            for window in ours
            if window.count >= self.window_size
        ]
        leftovers = [
            window
            for window in ours
            if window.count < self.window_size
        ]
        self._open = leftovers[-1] if leftovers else None

    def to_dict(self) -> dict:
        """JSON-safe view of the whole series, windows in order."""
        return {
            "requests": self.total,
            "window_size": self.window_size,
            "windows": [
                window.to_dict() for window in self.windows()
            ],
        }


def windows_from_events(
    events: Sequence[AuditEvent], window_size: int = 50
) -> WindowSeries:
    """Window the per-request brackets of an audit chain.

    Folds ``ops/request-completed`` (ok iff ``exit_code`` is 0) and
    ``ops/request-failed`` events, in chain order, into a
    :class:`WindowSeries`. The chain is clock-free, so the series
    carries outcome data only — latency, queue and cache objectives
    evaluate as ``no-data``. Because the batch executor replays
    worker shards in input order, the same request file produces the
    same series at any worker count; that is what makes
    ``repro-ethics obs slo`` byte-identical across ``--workers``.
    """
    series = WindowSeries(window_size)
    for event in events:
        if event.category != "ops":
            continue
        if event.action == "request-completed":
            series.observe(
                RequestSample(
                    ok=event.detail.get("exit_code", 0) == 0
                )
            )
        elif event.action == "request-failed":
            series.observe(RequestSample(ok=False))
    return series
