"""The append-only audit trail and its chain verifier.

:class:`AuditTrail` accumulates hash-chained
:class:`~repro.observability.events.AuditEvent` records in memory
and, when given a path, mirrors each one as a JSONL line the moment
it is appended — the on-disk log is therefore always a prefix of the
in-memory chain and can be inspected (or verified) while the process
is still running.

Verification (:func:`verify_events` / :func:`verify_jsonl`) walks the
chain once and reports a :class:`ChainVerification` that **localizes
the first corrupted record**:

* a record whose stored digest does not match its recomputed digest
  has been *altered in place* (a bit flip anywhere in the line);
* a record whose ``previous_digest`` does not match its
  predecessor's digest marks a *splice* — records were removed,
  inserted or reordered at exactly that point;
* a record whose sequence number breaks the 0,1,2,… run is
  *misplaced* (caught even when digests were recomputed to match);
* a chain shorter than the expected length (or with a different tail
  digest) has been *truncated* — pure tail truncation leaves a valid
  prefix, so detecting it needs the expected length or tail digest
  the holder records out of band (``repro-ethics audit report``
  prints both for exactly this purpose).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Iterator
from pathlib import Path

from ..errors import SafeguardError
from .events import GENESIS_DIGEST, AuditEvent

__all__ = [
    "AuditTrail",
    "ChainVerification",
    "load_events",
    "verify_events",
    "verify_jsonl",
]


@dataclasses.dataclass(frozen=True)
class ChainVerification:
    """Outcome of a chain walk, localizing the first corruption.

    ``ok`` is True for an intact chain. Otherwise ``error_index`` is
    the 0-based position of the first bad record (equal to ``length``
    for truncation detected against an expected length) and
    ``reason`` says what is wrong with it. ``length`` and
    ``tail_digest`` describe the verified chain and are what a
    holder records out of band to make tail truncation detectable.
    """

    ok: bool
    length: int
    tail_digest: str
    error_index: int | None = None
    reason: str = ""

    def describe(self) -> str:
        """One human-readable status line."""
        if self.ok:
            return (
                f"chain intact: {self.length} events, tail digest "
                f"{self.tail_digest[:16]}…"
            )
        return (
            f"chain CORRUPT at record {self.error_index}: {self.reason}"
        )


def verify_events(
    events: Iterable[AuditEvent],
    *,
    expected_length: int | None = None,
    expected_tail_digest: str | None = None,
) -> ChainVerification:
    """Walk *events* and localize the first corrupted record.

    ``expected_length``/``expected_tail_digest`` are the out-of-band
    anchors that make tail truncation detectable; without them a
    valid prefix of a longer chain verifies clean (and is reported as
    such).
    """
    previous = GENESIS_DIGEST
    count = 0
    for index, event in enumerate(events):
        if event.sequence != index:
            return ChainVerification(
                ok=False,
                length=index,
                tail_digest=previous,
                error_index=index,
                reason=(
                    f"sequence {event.sequence} where {index} was "
                    "expected — record removed, inserted or reordered"
                ),
            )
        if event.previous_digest != previous:
            return ChainVerification(
                ok=False,
                length=index,
                tail_digest=previous,
                error_index=index,
                reason=(
                    "previous-digest mismatch — the chain was "
                    "spliced (records removed, inserted or "
                    "reordered) at this point"
                ),
            )
        if event.compute_digest() != event.digest:
            return ChainVerification(
                ok=False,
                length=index,
                tail_digest=previous,
                error_index=index,
                reason=(
                    "stored digest does not match the record "
                    "content — the record was altered in place"
                ),
            )
        previous = event.digest
        count = index + 1
    if expected_length is not None and count != expected_length:
        return ChainVerification(
            ok=False,
            length=count,
            tail_digest=previous,
            error_index=count,
            reason=(
                f"chain has {count} events where {expected_length} "
                "were recorded — the log was truncated"
            ),
        )
    if (
        expected_tail_digest is not None
        and previous != expected_tail_digest
    ):
        return ChainVerification(
            ok=False,
            length=count,
            tail_digest=previous,
            error_index=count,
            reason=(
                "tail digest does not match the recorded anchor — "
                "the log was truncated or rewritten"
            ),
        )
    return ChainVerification(
        ok=True, length=count, tail_digest=previous
    )


def load_events(path: str | Path) -> list[AuditEvent]:
    """Read every event from a JSONL audit log.

    Raises :class:`~repro.errors.SafeguardError` on an unreadable
    file or an unparseable line (the error message carries the line
    number, so even a bit flip that destroys the JSON itself is
    localized).
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise SafeguardError(
            f"cannot read audit log {path}: {exc}"
        ) from exc
    events: list[AuditEvent] = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            events.append(AuditEvent.from_json(line))
        except SafeguardError as exc:
            raise SafeguardError(
                f"{path} line {number}: {exc}"
            ) from exc
    return events


def verify_jsonl(
    path: str | Path,
    *,
    expected_length: int | None = None,
    expected_tail_digest: str | None = None,
) -> ChainVerification:
    """Verify an on-disk JSONL audit log, localizing corruption.

    A line that no longer parses (a bit flip can break the JSON
    itself) is reported as the corrupt record at its 0-based index
    rather than raising.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as exc:
        raise SafeguardError(
            f"cannot read audit log {path}: {exc}"
        ) from exc
    events: list[AuditEvent] = []
    lines = [line for line in text.splitlines() if line.strip()]
    for index, line in enumerate(lines):
        try:
            events.append(AuditEvent.from_json(line))
        except SafeguardError:
            partial = verify_events(events)
            if not partial.ok:  # an earlier record is the first error
                return partial
            return ChainVerification(
                ok=False,
                length=index,
                tail_digest=partial.tail_digest,
                error_index=index,
                reason=(
                    "record is no longer valid JSON — altered in "
                    "place"
                ),
            )
    return verify_events(
        events,
        expected_length=expected_length,
        expected_tail_digest=expected_tail_digest,
    )


class AuditTrail:
    """Append-only, hash-chained audit trail with optional JSONL sink.

    With a ``path`` every appended event is immediately written and
    flushed as one JSONL line, so the on-disk log is always a prefix
    of the in-memory chain. The trail never stores wall time — see
    :mod:`repro.observability.events` for why.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self._events: list[AuditEvent] = []
        self._path = Path(path) if path is not None else None
        self._sink = None
        if self._path is not None:
            try:
                self._sink = self._path.open(
                    "a", encoding="utf-8"
                )
            except OSError as exc:
                raise SafeguardError(
                    f"cannot open audit log {self._path}: {exc}"
                ) from exc

    @property
    def path(self) -> Path | None:
        """The JSONL sink path, if the trail persists to disk."""
        return self._path

    def event(
        self,
        category: str,
        action: str,
        subject: str = "",
        **detail: object,
    ) -> AuditEvent:
        """Append one chained event; returns the sealed record."""
        previous = (
            self._events[-1].digest
            if self._events
            else GENESIS_DIGEST
        )
        event = AuditEvent(
            sequence=len(self._events),
            category=category,
            action=action,
            subject=subject,
            detail=dict(detail),
            previous_digest=previous,
        ).sealed()
        self._events.append(event)
        if self._sink is not None:
            self._sink.write(event.to_json() + "\n")
            self._sink.flush()
        return event

    def __iter__(self) -> Iterator[AuditEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    @property
    def tail_digest(self) -> str:
        """The digest anchoring the chain's current end."""
        return (
            self._events[-1].digest
            if self._events
            else GENESIS_DIGEST
        )

    def tail(self, count: int = 10) -> tuple[AuditEvent, ...]:
        """The last *count* events, oldest first."""
        if count < 1:
            raise SafeguardError("tail count must be positive")
        return tuple(self._events[-count:])

    def verify(self) -> ChainVerification:
        """Verify the in-memory chain (see :func:`verify_events`)."""
        return verify_events(self._events)

    def close(self) -> None:
        """Close the JSONL sink, if any; the trail stays readable."""
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    def __enter__(self) -> "AuditTrail":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
