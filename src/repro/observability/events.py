"""Audit events: the hash-chained records of the tamper-evident trail.

An :class:`AuditEvent` is one immutable record of something the
safeguard machinery did — a container sealed, an access granted or
denied, a sharing agreement signed, a pipeline run finished, an REB
decision taken. Events are **hash-chained**: each event's digest is a
keyless BLAKE2b-256 over the canonical JSON of its payload, and that
payload includes the digest of the predecessor event. Altering,
removing or reordering any record therefore breaks every digest from
that point on, which is what lets
:func:`~repro.observability.log.verify_events` localize the *first*
corrupted record instead of merely reporting "something changed".

Events are deliberately **clock-free**: they carry a sequence number
and caller-supplied detail, never wall time, so the same run produces
the same chain byte for byte — the audit trail inherits the
repository's reproducible-by-seed contract (timings live in the
metrics/tracing side channel instead, which is not chained).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

from ..errors import SafeguardError

__all__ = ["AuditEvent", "GENESIS_DIGEST", "event_digest"]

#: The ``previous_digest`` of the first event in a chain.
GENESIS_DIGEST = "0" * 64

_DIGEST_SIZE = 32  # BLAKE2b-256 → 64 hex characters


def _canonical(payload: dict) -> bytes:
    """Canonical JSON bytes: sorted keys, no whitespace, UTF-8."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def event_digest(payload: dict) -> str:
    """BLAKE2b-256 hex digest of an event payload dict.

    The payload must already contain ``previous_digest``; the chain
    property comes from hashing it together with the event content.
    """
    return hashlib.blake2b(
        _canonical(payload), digest_size=_DIGEST_SIZE
    ).hexdigest()


@dataclasses.dataclass(frozen=True)
class AuditEvent:
    """One hash-chained audit record.

    ``category`` names the subsystem (``storage``, ``access``,
    ``sharing``, ``retention``, ``escrow``, ``pipeline``, ``reb``,
    ``assessment``, …), ``action`` the operation, ``subject`` the
    thing acted on, and ``detail`` carries JSON-safe context (counts
    and flags — never secrets, plaintext identifiers or key
    material).
    """

    sequence: int
    category: str
    action: str
    subject: str = ""
    detail: dict = dataclasses.field(default_factory=dict)
    previous_digest: str = GENESIS_DIGEST
    digest: str = ""

    def payload(self) -> dict:
        """The digest pre-image: every field except ``digest``."""
        return {
            "sequence": self.sequence,
            "category": self.category,
            "action": self.action,
            "subject": self.subject,
            "detail": self.detail,
            "previous_digest": self.previous_digest,
        }

    def compute_digest(self) -> str:
        """Recompute this event's digest from its payload."""
        return event_digest(self.payload())

    def sealed(self) -> "AuditEvent":
        """A copy with ``digest`` filled in from the payload."""
        return dataclasses.replace(self, digest=self.compute_digest())

    def to_json(self) -> str:
        """One canonical JSONL line (payload plus digest)."""
        record = self.payload()
        record["digest"] = self.digest
        return _canonical(record).decode("utf-8")

    @classmethod
    def from_json(cls, line: str) -> "AuditEvent":
        """Parse one JSONL line back into an event.

        Raises :class:`~repro.errors.SafeguardError` when the line is
        not valid JSON or misses required fields — callers verifying
        a file turn that into a localized corruption report.
        """
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise SafeguardError(
                f"unparseable audit record: {exc}"
            ) from exc
        if not isinstance(record, dict):
            raise SafeguardError("audit record is not an object")
        try:
            return cls(
                sequence=record["sequence"],
                category=record["category"],
                action=record["action"],
                subject=record.get("subject", ""),
                detail=record.get("detail", {}),
                previous_digest=record["previous_digest"],
                digest=record["digest"],
            )
        except KeyError as exc:
            raise SafeguardError(
                f"audit record missing field {exc.args[0]!r}"
            ) from exc
