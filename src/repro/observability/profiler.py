"""Sampling profiler attributing stack samples to active spans.

Where the tracer answers "how long did this span take", the profiler
answers "what was the code *doing* while it was inside it". It is a
hybrid of two classic techniques:

* an **interval sampler** — a daemon thread wakes every
  ``interval`` seconds, reads the target thread's frame stack via
  ``sys._current_frames()`` and records the collapsed stack tagged
  with the span the tracer reports as active
  (:attr:`~repro.observability.tracing.Tracer.active_span`, a
  GIL-safe one-element read). Sampling cost is paid by the sampler
  thread, so the instrumented code runs at full speed;
* an optional **call-count hook** — ``sys.setprofile`` installed on
  the target thread counts function entries per code object. Counts
  are exact where samples are statistical, at the usual
  tracing-hook overhead; it is off by default and exists for the
  rare "why is this called a million times" investigation.

Samples come out in the **collapsed-stack** format flamegraph
tooling consumes (``span;outer;inner count`` per line, sorted), via
:meth:`SamplingProfiler.collapsed`; :meth:`SamplingProfiler.summary`
aggregates per-span and per-function sample totals for the CLI's
``obs top`` view. Wall-clock sampling is inherently non-
deterministic, so the profiler lives strictly outside the data path
and its output is never chained into the audit trail — the
determinism rules (staticcheck R2) do not apply to this module.

When the process-wide observer is disabled,
:meth:`SamplingProfiler.start` refuses to spin up the sampler thread
and the whole object stays inert, keeping the disabled-path cost at
"one attribute check".
"""

from __future__ import annotations

import sys
import threading
from collections import Counter as _TallyCounter

from .runtime import get_observer

__all__ = ["SamplingProfiler", "top_collapsed"]

#: Frames from these modules are machinery, not workload; they are
#: trimmed from the top of collapsed stacks to keep output readable.
_SKIP_MODULES = ("threading",)


class SamplingProfiler:
    """Interval stack sampler with span attribution.

    Use as a context manager around the code under study::

        with SamplingProfiler(interval=0.005) as profiler:
            pipeline.run(records)
        print(profiler.collapsed())

    ``interval`` is the target seconds between samples;
    ``max_depth`` bounds how many frames of each stack are kept;
    ``call_counts=True`` additionally installs a ``sys.setprofile``
    hook on the *current* thread to count function entries exactly.
    """

    def __init__(
        self,
        interval: float = 0.005,
        *,
        max_depth: int = 24,
        call_counts: bool = False,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.max_depth = max_depth
        self._want_call_counts = call_counts
        self._samples: _TallyCounter[tuple[str, ...]] = _TallyCounter()
        self._calls: _TallyCounter[str] = _TallyCounter()
        self._target_thread_id: int | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._running = False

    # -- lifecycle ----------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether the sampler thread is live."""
        return self._running

    def start(self) -> "SamplingProfiler":
        """Begin sampling the calling thread.

        A no-op (returning self, still inert) when the process-wide
        observer is disabled — profiling is an observability feature
        and obeys the same master switch as events, spans and
        metrics.
        """
        if self._running:
            return self
        if not get_observer().enabled:
            return self
        self._target_thread_id = threading.get_ident()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._sample_loop,
            name="repro-profiler",
            daemon=True,
        )
        self._running = True
        self._thread.start()
        if self._want_call_counts:
            sys.setprofile(self._profile_hook)
        return self

    def stop(self) -> None:
        """Stop sampling and join the sampler thread."""
        if not self._running:
            return
        if self._want_call_counts:
            sys.setprofile(None)
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
        self._thread = None
        self._running = False

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- capture ------------------------------------------------------

    def _profile_hook(self, frame, event, arg) -> None:
        if event == "call":
            code = frame.f_code
            self._calls[f"{code.co_name} ({code.co_filename.rsplit('/', 1)[-1]})"] += 1

    def _sample_loop(self) -> None:
        stop = self._stop
        target = self._target_thread_id
        while not stop.wait(self.interval):
            frames = sys._current_frames()
            frame = frames.get(target)
            if frame is None:
                continue
            self._record_sample(frame)

    def _record_sample(self, frame) -> None:
        stack: list[str] = []
        depth = 0
        while frame is not None and depth < self.max_depth:
            code = frame.f_code
            module = code.co_filename.rsplit("/", 1)[-1]
            if module.removesuffix(".py") not in _SKIP_MODULES:
                stack.append(f"{code.co_name} ({module})")
            frame = frame.f_back
            depth += 1
        stack.reverse()
        span = get_observer().tracer.active_span or "(no span)"
        self._samples[(span, *stack)] += 1

    # -- output -------------------------------------------------------

    @property
    def sample_count(self) -> int:
        """Total stack samples captured so far."""
        return sum(self._samples.values())

    def collapsed(self) -> str:
        """Samples in collapsed-stack (flamegraph) format.

        One ``span;frame;frame count`` line per distinct stack,
        sorted lexicographically for stable output. Empty string
        when nothing was sampled.
        """
        lines = [
            f"{';'.join(stack)} {count}"
            for stack, count in sorted(self._samples.items())
        ]
        return "\n".join(lines) + "\n" if lines else ""

    def summary(self) -> dict:
        """Aggregated view: totals per span and per leaf function.

        Returns ``{"samples", "spans", "functions", "calls"}`` where
        ``spans`` and ``functions`` map name → sample count (sorted,
        descending) and ``calls`` carries the exact call counts when
        the hybrid ``sys.setprofile`` hook was enabled (else empty).
        """
        spans: _TallyCounter[str] = _TallyCounter()
        functions: _TallyCounter[str] = _TallyCounter()
        for stack, count in self._samples.items():
            spans[stack[0]] += count
            if len(stack) > 1:
                functions[stack[-1]] += count
        return {
            "samples": self.sample_count,
            "spans": dict(spans.most_common()),
            "functions": dict(functions.most_common()),
            "calls": dict(self._calls.most_common()),
        }


def top_collapsed(text: str, limit: int = 15) -> list[tuple[str, int]]:
    """The hottest leaf frames of a collapsed-stack document.

    Parses ``collapsed()`` output (or a file of it) and returns up to
    *limit* ``(frame, samples)`` pairs, hottest first. Tolerates
    blank lines; returns an empty list for empty input — the CLI's
    ``obs top`` prints "no samples" rather than failing on a short
    profile run that caught nothing.
    """
    tallies: _TallyCounter[str] = _TallyCounter()
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack, _, count = line.rpartition(" ")
        if not stack or not count.isdigit():
            continue
        leaf = stack.rsplit(";", 1)[-1]
        tallies[leaf] += int(count)
    return tallies.most_common(limit)
