"""Tamper-evident audit and runtime observability (§4/§6 made inspectable).

The paper's safeguards only count when they leave *records a REB can
inspect*: who accessed what, what was sealed, what was shared, what
was destroyed, what the pipeline actually did. This package is that
record-keeping layer, sitting below ``safeguards`` in the
architecture so every subsystem can emit into it:

* :mod:`~repro.observability.events` /
  :mod:`~repro.observability.log` — a hash-chained, append-only
  audit trail (BLAKE2b-256 over canonical JSON, each event binding
  its predecessor's digest) whose verifier **localizes the first
  corrupted record**: bit flips, splices/reorderings and truncations
  each produce a distinct, positioned diagnosis;
* :mod:`~repro.observability.metrics` — counters, gauges and
  histograms with a shared no-op mode so disabled instrumentation
  costs nothing on the pipeline hot path;
* :mod:`~repro.observability.tracing` — context-manager timing spans
  feeding the metrics registry;
* :mod:`~repro.observability.runtime` — the process-wide
  :class:`Observer` switch and the :func:`audit_event` helper every
  safeguard-boundary mutation calls (enforced by staticcheck R5);
* :mod:`~repro.observability.worker` — cross-process telemetry:
  per-chunk :class:`TelemetryShard` capture in pipeline workers,
  deterministic :func:`replay_shard` merge in the coordinator, so
  ``workers=N`` produces the same audit-chain content as serial;
* :mod:`~repro.observability.export` — telemetry egress: Prometheus
  text exposition and OTLP-style JSON over registry snapshots and
  span trees, plus the audit-derived registry behind the
  deterministic ``repro-ethics obs export``;
* :mod:`~repro.observability.profiler` — a sampling profiler
  (interval stack sampler + optional ``sys.setprofile`` call-count
  hybrid) attributing samples to the active span and emitting
  collapsed-stack output for flamegraph tooling;
* :mod:`~repro.observability.flight` — the flight recorder: a
  bounded ring of recent events/spans/metric deltas, dumped on
  failure as a hash-chained, configuration-invariant incident
  bundle;
* :mod:`~repro.observability.windows` /
  :mod:`~repro.observability.slo` — logical-clock telemetry windows
  (per-N-requests, no wall time) and the declarative SLO engine
  that judges JSON objective specs over them, exit-code gateable
  via ``repro-ethics obs slo``.

The trail is clock-free and therefore as reproducible as the rest of
the repository; timings live only in metrics/tracing/profiles, which
are not chained. ``repro-ethics audit verify|tail|report`` inspects
persisted logs and ``repro-ethics obs export|profile|top`` handles
egress; see ``docs/observability.md`` for the event schema, the
chain-verification semantics and the export formats.
"""

from .events import GENESIS_DIGEST, AuditEvent, event_digest
from .flight import (
    FlightRecorder,
    IncidentBundle,
    load_bundle_text,
    verify_bundle_text,
)
from .export import (
    registry_from_events,
    render_otlp,
    render_prometheus,
    span_forest,
)
from .log import (
    AuditTrail,
    ChainVerification,
    load_events,
    verify_events,
    verify_jsonl,
)
from .metrics import (
    BUCKET_BOUNDS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
)
from .profiler import SamplingProfiler, top_collapsed
from .runtime import (
    Observer,
    audit_event,
    flight_recorder,
    get_observer,
    metrics,
    observed,
    set_observer,
    tracer,
    window_series,
)
from .slo import SloObjective, SloReport, SloSpec, evaluate_slo
from .tracing import NULL_TRACER, NullTracer, Span, SpanRecord, Tracer
from .windows import (
    RequestSample,
    Window,
    WindowSeries,
    windows_from_events,
)
from .worker import TelemetryShard, WorkerTelemetry, replay_shard

__all__ = [
    "AuditEvent",
    "AuditTrail",
    "BUCKET_BOUNDS",
    "ChainVerification",
    "Counter",
    "FlightRecorder",
    "GENESIS_DIGEST",
    "Gauge",
    "Histogram",
    "IncidentBundle",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "Observer",
    "RequestSample",
    "SamplingProfiler",
    "SloObjective",
    "SloReport",
    "SloSpec",
    "Span",
    "SpanRecord",
    "TelemetryShard",
    "Tracer",
    "Window",
    "WindowSeries",
    "WorkerTelemetry",
    "audit_event",
    "evaluate_slo",
    "event_digest",
    "flight_recorder",
    "get_observer",
    "load_bundle_text",
    "load_events",
    "metrics",
    "observed",
    "registry_from_events",
    "render_otlp",
    "render_prometheus",
    "replay_shard",
    "set_observer",
    "span_forest",
    "top_collapsed",
    "tracer",
    "verify_bundle_text",
    "verify_events",
    "verify_jsonl",
    "window_series",
    "windows_from_events",
]
