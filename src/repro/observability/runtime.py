"""The process-wide observer: one switch for audit, metrics, tracing.

Safeguard code does not thread an observer through every call
signature — that would contaminate the picklable stage specs and the
frozen dataclasses. Instead there is one process-local
:class:`Observer` (trail + metrics + tracer), installed with
:func:`set_observer` or the :func:`observed` context manager, and
module-level helpers (:func:`audit_event`, :func:`metrics`,
:func:`tracer`) that instrumented code calls unconditionally.

The default observer is **disabled**: no trail, the shared
:data:`~repro.observability.metrics.NULL_METRICS` registry and the
shared :data:`~repro.observability.tracing.NULL_TRACER`. The
disabled :func:`audit_event` path is one global load, one attribute
test and a return — the E12 benchmark budget ("auditing off means no
measurable slowdown") is met by construction, not by sprinkling
``if audit_enabled:`` at call sites.

Worker processes spawned by the pipeline inherit this module fresh
and therefore start disabled; when the coordinator observes, each
chunk runs under a per-chunk capture observer
(:class:`~repro.observability.worker.TelemetryShard`) whose shard
ships back with the chunk result for in-order replay. The
coordinator's trail stays the chain's single writer, and the chain
stays ordered.
"""

from __future__ import annotations

import contextlib
from collections.abc import Iterator
from pathlib import Path

from .events import AuditEvent
from .log import AuditTrail
from .metrics import NULL_METRICS, MetricsRegistry
from .tracing import NULL_TRACER, Tracer

__all__ = [
    "Observer",
    "audit_event",
    "flight_recorder",
    "get_observer",
    "metrics",
    "observed",
    "set_observer",
    "tracer",
    "window_series",
]


class Observer:
    """A bundle of audit trail, metrics registry, tracer — and the
    operational health surface: an optional flight recorder and an
    optional logical-window series.

    Components left as ``None`` fall back to the shared no-op
    singletons (the health components stay ``None`` — they have no
    null twin because their helpers return ``None`` when absent);
    ``enabled`` is True when any real component is present. Build one
    per run (or per process) and install it with
    :func:`set_observer` / :func:`observed`.
    """

    __slots__ = (
        "trail",
        "metrics",
        "tracer",
        "flight",
        "windows",
        "enabled",
    )

    def __init__(
        self,
        trail: AuditTrail | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        flight=None,
        windows=None,
    ) -> None:
        self.trail = trail
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.flight = flight
        self.windows = windows
        self.enabled = (
            trail is not None
            or self.metrics.enabled
            or self.tracer.enabled
            or flight is not None
            or windows is not None
        )

    @classmethod
    def recording(
        cls, path: str | Path | None = None
    ) -> "Observer":
        """A fully enabled observer (trail, metrics and tracing).

        *path* persists the audit trail as JSONL; omit it for an
        in-memory trail.
        """
        registry = MetricsRegistry()
        return cls(
            trail=AuditTrail(path),
            metrics=registry,
            tracer=Tracer(registry),
        )

    def attach(self, *, flight=None, windows=None) -> "Observer":
        """Attach health components to a built observer; returns it.

        The factory paths (:meth:`recording`, the RunContext
        helpers) stay flight-agnostic; callers that also want a
        recorder or a window series bolt them on here. Attaching a
        real component flips ``enabled`` — a flight-only observer
        still turns on worker telemetry shards, which is what routes
        worker events back into the coordinator's ring.
        """
        if flight is not None:
            self.flight = flight
        if windows is not None:
            self.windows = windows
        self.enabled = (
            self.enabled
            or self.flight is not None
            or self.windows is not None
        )
        return self


#: The permanently disabled observer every process starts with.
_DISABLED = Observer()
_current: Observer = _DISABLED


def get_observer() -> Observer:
    """The currently installed observer (disabled by default)."""
    return _current


def set_observer(observer: Observer | None) -> Observer:
    """Install *observer* process-wide; returns the previous one.

    Passing ``None`` restores the disabled default.
    """
    global _current
    previous = _current
    _current = observer if observer is not None else _DISABLED
    return previous


@contextlib.contextmanager
def observed(observer: Observer) -> Iterator[Observer]:
    """Install *observer* for the duration of the ``with`` block."""
    previous = set_observer(observer)
    try:
        yield observer
    finally:
        set_observer(previous)


def audit_event(
    category: str,
    action: str,
    subject: str = "",
    **detail: object,
) -> AuditEvent | None:
    """Append one event to the installed trail (no-op when disabled).

    This is the single emission point the safeguard boundary calls —
    and the one the staticcheck R5 rule looks for in mutating
    safeguard methods. Returns the sealed event, or ``None`` when no
    trail is installed. An installed flight recorder taps every
    emission here (including worker-shard replays, which arrive in
    input order), so the ring needs no call-site changes; the
    disabled path stays two attribute loads, two ``None`` tests and
    a return.
    """
    observer = _current
    recorder = observer.flight
    if recorder is not None:
        recorder.record_event(category, action, subject, detail)
    trail = observer.trail
    if trail is None:
        return None
    return trail.event(category, action, subject, **detail)


def metrics() -> MetricsRegistry:
    """The installed metrics registry (the null registry when off)."""
    return _current.metrics


def flight_recorder():
    """The installed flight recorder, or ``None`` when absent.

    Returns ``None`` rather than a null object: the call sites
    (batch executor, warm pool, pipeline coordinator) guard with one
    ``is not None`` test because recording work — normalizing
    details, ringing frames — is not free the way a null method call
    is.
    """
    return _current.flight


def window_series():
    """The installed logical-window series, or ``None`` when absent."""
    return _current.windows


def tracer() -> Tracer:
    """The installed tracer (the null tracer when off)."""
    return _current.tracer
