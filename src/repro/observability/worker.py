"""Cross-process telemetry: worker-side capture, parent-side replay.

Pipeline worker processes inherit the disabled default observer, so
before this module existed their audit events, spans and metrics
simply vanished — a ``workers=4`` run produced an audit trail with
none of the per-stage events a ``workers=1`` run records. This
module closes that gap without giving up the single-writer,
deterministic chain:

* **Worker side** — :class:`TelemetryShard` is a per-chunk observer
  bootstrap. Installed around one chunk's stage applications, it
  captures audit events as *raw, unsealed* ``(category, action,
  subject, detail)`` tuples (a per-worker audit shard — sequence
  numbers and chain digests are deliberately not assigned in the
  worker), records spans into a chunk-local tracer, and snapshots a
  chunk-local metrics registry. :meth:`TelemetryShard.telemetry`
  packs all three into a picklable :class:`WorkerTelemetry` that
  ships back with the chunk result.
* **Parent side** — :func:`replay_shard` folds one shard into the
  observer installed in the coordinator: captured events are
  re-emitted through :func:`~repro.observability.runtime.audit_event`
  (the parent trail assigns sequence numbers and digests, staying the
  chain's single writer), span records are absorbed into the parent
  tracer, and the metric snapshot merges into the parent registry.

Because the pipeline merges chunk results **in chunk order** and
events inside a shard keep their emission order, replaying shards
yields exactly the event stream a serial run emits inline: the audit
chain *content* is identical for ``workers=1`` and ``workers=N``
(byte-identical but for the honest ``workers`` field of the
run-started event). Shards are clock-free — timings live only in the
span records and metric snapshots, which are not chained.

The ops warm pool (:mod:`repro.ops.pool`) shards at a finer grain:
a worker chunk carries **one shard per request**, shipped alongside
the chunk result, so the batch coordinator can interleave replays
with the audit brackets it emits inline for coordinator-served
cache hits — the chain content stays invariant not just under the
worker count but under the cache-aware dispatch plan itself.
"""

from __future__ import annotations

import dataclasses

from .metrics import MetricsRegistry
from .runtime import Observer, audit_event, get_observer, set_observer
from .tracing import SpanRecord, Tracer

__all__ = ["TelemetryShard", "WorkerTelemetry", "replay_shard"]


@dataclasses.dataclass(frozen=True)
class WorkerTelemetry:
    """One chunk's telemetry, packed for the pickling boundary.

    ``events`` are raw audit tuples in emission order; ``spans`` are
    ``(name, depth, seconds)`` triples in completion order;
    ``metrics`` is a registry snapshot. All three are plain
    tuples/dicts so the object crosses the process pool unchanged.
    """

    events: tuple[tuple[str, str, str, dict], ...] = ()
    spans: tuple[tuple[str, int, float], ...] = ()
    metrics: dict = dataclasses.field(default_factory=dict)


class _ShardTrail:
    """Trail-shaped recorder: captures raw events, never chains them.

    Duck-types the one method :func:`audit_event` calls. Sequence
    numbers and digests belong to the parent trail — assigning them
    here would bake the worker's local view into the shard and break
    the deterministic merge.
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[tuple[str, str, str, dict]] = []

    def event(
        self,
        category: str,
        action: str,
        subject: str = "",
        **detail: object,
    ) -> None:
        """Capture one raw event tuple (returns None: not sealed)."""
        self.events.append((category, action, subject, dict(detail)))
        return None


class TelemetryShard:
    """Worker-side observer bootstrap for one chunk.

    Use as a context manager around the chunk's stage applications:
    entering installs a capture observer (shard trail + chunk-local
    registry + tracer), exiting restores whatever was installed
    before. :meth:`telemetry` packs the capture for shipment.
    """

    def __init__(self) -> None:
        self._trail = _ShardTrail()
        self._registry = MetricsRegistry()
        self._tracer = Tracer(self._registry)
        self._observer = Observer(
            trail=self._trail,  # type: ignore[arg-type]
            metrics=self._registry,
            tracer=self._tracer,
        )
        self._previous: Observer | None = None

    def __enter__(self) -> "TelemetryShard":
        self._previous = set_observer(self._observer)
        return self

    def __exit__(self, *exc_info: object) -> None:
        set_observer(self._previous)
        self._previous = None

    def telemetry(self) -> WorkerTelemetry:
        """The captured shard, packed as a picklable value object."""
        return WorkerTelemetry(
            events=tuple(self._trail.events),
            spans=tuple(
                (record.name, record.depth, record.seconds)
                for record in self._tracer.finished
            ),
            metrics=self._registry.snapshot(),
        )


def replay_shard(shard: WorkerTelemetry) -> None:
    """Fold one worker shard into the observer installed here.

    Called by the pipeline coordinator while draining chunk results
    **in chunk order**: events re-emit through the parent trail
    (which assigns sequence numbers and digests, keeping the chain
    single-writer), spans are absorbed into the parent tracer, and
    the metric snapshot merges into the parent registry. A disabled
    observer makes this a no-op, mirroring the disabled
    :func:`~repro.observability.runtime.audit_event` path.
    """
    observer = get_observer()
    if not observer.enabled:
        return
    for category, action, subject, detail in shard.events:
        audit_event(category, action, subject, **detail)
    recorder = observer.flight
    if recorder is not None:
        # The ring keeps span frames clock-free: name and depth in
        # replay (= input) order, never the seconds — those stay in
        # the tracer/registry, which bundles carry in the envelope.
        for name, depth, _seconds in shard.spans:
            recorder.record_span(name, depth)
    if observer.tracer.enabled:
        observer.tracer.absorb(
            SpanRecord(name, depth, seconds)
            for name, depth, seconds in shard.spans
        )
    if observer.metrics.enabled:
        observer.metrics.merge(shard.metrics)
