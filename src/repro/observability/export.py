"""Telemetry egress: Prometheus text and OTLP-style JSON renderers.

PR 3 made the safeguards *record* — this module makes the records
*consumable* by the monitoring stacks a production deployment would
actually run. Two wire formats, both pure functions of their inputs:

* :func:`render_prometheus` — the Prometheus text exposition format
  over a :meth:`~repro.observability.metrics.MetricsRegistry.snapshot`
  dict: counters as ``_total`` series, gauges verbatim, histograms
  as cumulative ``_bucket{le="…"}`` series over the fixed
  :data:`~repro.observability.metrics.BUCKET_BOUNDS` plus ``_sum`` /
  ``_count``. Output is sorted and float-formatted via ``repr``, so
  rendering the same snapshot twice is byte-identical — and
  rendering the deterministic audit-derived snapshot of two
  same-seed runs is byte-identical too.
* :func:`render_otlp` — an OTLP-style JSON document
  (``resourceMetrics`` with sum/gauge/histogram data points and,
  when span records are supplied, ``resourceSpans`` whose span and
  trace ids are *derived deterministically* from span position and
  name, never drawn from an RNG). It is OTLP-shaped for easy
  ingestion, not a certified protobuf mapping — timestamps are span
  durations from zero, because the repository's telemetry is
  deliberately clock-free.

:func:`registry_from_events` bridges the audit side: it folds a
verified event chain into counters/gauges (``audit.events.<category>.
<action>`` counts plus chain anchors), which is what makes
``repro-ethics obs export`` deterministic for seeded runs.
:func:`span_forest` rebuilds the nesting tree from flat
depth-annotated span records for the OTLP renderer and the CLI.
"""

from __future__ import annotations

import hashlib
import json
import re
from collections.abc import Iterable, Sequence

from .events import AuditEvent
from .log import verify_events
from .metrics import BUCKET_BOUNDS, MetricsRegistry
from .tracing import SpanRecord

__all__ = [
    "INSTRUMENT_HELP",
    "describe_instrument",
    "registry_from_events",
    "render_otlp",
    "render_prometheus",
    "span_forest",
]

#: Characters Prometheus forbids in metric names, replaced by ``_``.
_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str, prefix: str) -> str:
    """A dotted registry name as a Prometheus metric name."""
    flat = _PROM_INVALID.sub("_", name.replace(".", "_"))
    return f"{prefix}_{flat}" if prefix else flat


def _prom_value(value: int | float) -> str:
    """Deterministic numeric formatting (repr round-trips floats)."""
    if isinstance(value, bool):  # bools are ints; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


#: Instrument descriptions by exact dotted registry name, rendered
#: as ``# HELP`` lines. Keys sorted alphabetically — and because
#: :func:`render_prometheus` walks each metric family in sorted name
#: order, the HELP lines come out alphabetical within each kind.
INSTRUMENT_HELP: dict[str, str] = {
    "audit.chain.intact": (
        "Whether a full chain-verification walk of the audit log "
        "succeeded (1) or localized corruption (0)."
    ),
    "audit.chain.length": (
        "Number of events in the verified audit chain."
    ),
    "audit.events": (
        "Total audit events folded from the verified chain."
    ),
    "ops.batch.failed": (
        "Batch requests that completed with a failure line."
    ),
    "ops.batch.ok": (
        "Batch requests that completed successfully."
    ),
    "ops.batch.requests": (
        "Batch requests executed, in input order."
    ),
    "ops.cache.hits": (
        "Content-addressed result-cache hits for pure operations."
    ),
    "ops.cache.misses": (
        "Content-addressed result-cache misses for pure operations."
    ),
    "pipeline.chunks": (
        "Record chunks processed by the safeguard pipeline."
    ),
    "pipeline.records": (
        "Records processed by the safeguard pipeline."
    ),
    "pipeline.run.seconds": (
        "Wall-clock duration distribution of safeguard pipeline "
        "runs."
    ),
}

#: Longest-prefix fallbacks for the instrument families whose names
#: embed a variable segment (span/stage/audit-action names).
_INSTRUMENT_HELP_PREFIXES: tuple[tuple[str, str], ...] = (
    (
        "audit.events.",
        "Audit events observed for one category/action pair.",
    ),
    (
        "span.",
        "Duration distribution in seconds of one tracing span.",
    ),
    (
        "stage.",
        "Per-stage safeguard pipeline instrument (position- and "
        "name-keyed).",
    ),
)


def describe_instrument(name: str) -> str | None:
    """The human description for a dotted instrument name, if any.

    Exact catalog entries win; otherwise the longest matching prefix
    family answers. Unknown instruments return ``None`` and render
    without a ``# HELP`` line rather than with a made-up one.
    """
    exact = INSTRUMENT_HELP.get(name)
    if exact is not None:
        return exact
    best: str | None = None
    best_length = -1
    for prefix, description in _INSTRUMENT_HELP_PREFIXES:
        if name.startswith(prefix) and len(prefix) > best_length:
            best = description
            best_length = len(prefix)
    return best


def _prom_help(metric: str, description: str) -> str:
    """One escaped ``# HELP`` exposition line."""
    escaped = description.replace("\\", "\\\\").replace("\n", "\\n")
    return f"# HELP {metric} {escaped}"


def render_prometheus(snapshot: dict, *, prefix: str = "repro") -> str:
    """Render a registry snapshot in Prometheus text exposition.

    Counters gain the conventional ``_total`` suffix; histogram
    bucket series are cumulative over the fixed
    :data:`~repro.observability.metrics.BUCKET_BOUNDS` with the
    ``+Inf`` bucket equal to ``_count``. The output ends with a
    newline (as the exposition format requires) unless the snapshot
    is empty, in which case it is the empty string.
    """
    lines: list[str] = []
    for name in sorted(snapshot.get("counters", {})):
        metric = _prom_name(name, prefix) + "_total"
        description = describe_instrument(name)
        if description is not None:
            lines.append(_prom_help(metric, description))
        lines.append(f"# TYPE {metric} counter")
        value = snapshot["counters"][name]
        lines.append(f"{metric} {_prom_value(value)}")
    for name in sorted(snapshot.get("gauges", {})):
        metric = _prom_name(name, prefix)
        description = describe_instrument(name)
        if description is not None:
            lines.append(_prom_help(metric, description))
        lines.append(f"# TYPE {metric} gauge")
        value = snapshot["gauges"][name]
        lines.append(f"{metric} {_prom_value(value)}")
    for name in sorted(snapshot.get("histograms", {})):
        summary = snapshot["histograms"][name]
        metric = _prom_name(name, prefix)
        description = describe_instrument(name)
        if description is not None:
            lines.append(_prom_help(metric, description))
        lines.append(f"# TYPE {metric} histogram")
        count = summary.get("count", 0)
        buckets = summary.get("buckets")
        if buckets:
            cumulative = 0
            for bound, bucket_count in zip(BUCKET_BOUNDS, buckets):
                cumulative += bucket_count
                lines.append(
                    f'{metric}_bucket{{le="{_prom_value(bound)}"}} '
                    f"{cumulative}"
                )
        lines.append(f'{metric}_bucket{{le="+Inf"}} {count}')
        total = summary.get("total", 0.0)
        lines.append(f"{metric}_sum {_prom_value(total)}")
        lines.append(f"{metric}_count {count}")
    return "\n".join(lines) + "\n" if lines else ""


def _span_id(index: int, name: str) -> str:
    """A deterministic 8-byte span id from position and name."""
    return hashlib.blake2b(
        f"{index}:{name}".encode("utf-8"), digest_size=8
    ).hexdigest()


def _trace_id(records: Sequence[SpanRecord]) -> str:
    """A deterministic 16-byte trace id from the span name sequence."""
    material = "\x00".join(record.name for record in records)
    return hashlib.blake2b(
        material.encode("utf-8"), digest_size=16
    ).hexdigest()


def span_forest(records: Iterable[SpanRecord]) -> list[dict]:
    """Rebuild the nesting tree from flat finished-span records.

    Spans finish in post-order (children before parents), so a
    record at depth ``d`` adopts every pending record at depth
    ``d + 1``. Spans left unclosed (no parent finished) surface as
    roots in completion order. Each node is
    ``{"name", "seconds", "children"}``.
    """
    pending: dict[int, list[dict]] = {}
    roots: list[dict] = []
    for record in records:
        node = {
            "name": record.name,
            "seconds": round(record.seconds, 6),
            "children": pending.pop(record.depth + 1, []),
        }
        if record.depth == 0:
            roots.append(node)
        else:
            pending.setdefault(record.depth, []).append(node)
    for orphans in pending.values():
        roots.extend(orphans)
    return roots


def _otlp_number(value: int | float) -> dict:
    """One OTLP NumberDataPoint value field."""
    if isinstance(value, int) and not isinstance(value, bool):
        return {"asInt": str(value)}
    return {"asDouble": float(value)}


def render_otlp(
    snapshot: dict,
    spans: Iterable[SpanRecord] = (),
    *,
    service: str = "repro-ethics",
    indent: int | None = 2,
) -> str:
    """Render a snapshot (and optionally spans) as OTLP-style JSON.

    Counters become monotonic cumulative sums, gauges gauges, and
    histograms histogram data points carrying the fixed
    ``explicitBounds``. Span records, when given, are emitted as one
    ``resourceSpans`` block whose parent/child links come from
    :func:`span_forest` and whose ids are deterministic functions of
    span order and name (clock-free, reproducible).
    """
    metrics: list[dict] = []
    for name in sorted(snapshot.get("counters", {})):
        metrics.append(
            {
                "name": name,
                "sum": {
                    "aggregationTemporality": (
                        "AGGREGATION_TEMPORALITY_CUMULATIVE"
                    ),
                    "isMonotonic": True,
                    "dataPoints": [
                        _otlp_number(snapshot["counters"][name])
                    ],
                },
            }
        )
    for name in sorted(snapshot.get("gauges", {})):
        metrics.append(
            {
                "name": name,
                "gauge": {
                    "dataPoints": [
                        _otlp_number(snapshot["gauges"][name])
                    ]
                },
            }
        )
    for name in sorted(snapshot.get("histograms", {})):
        summary = snapshot["histograms"][name]
        count = summary.get("count", 0)
        buckets = list(summary.get("buckets", ()))
        point: dict = {
            "count": str(count),
            "sum": summary.get("total", 0.0),
        }
        if count:
            point["min"] = summary.get("min", 0.0)
            point["max"] = summary.get("max", 0.0)
        if buckets:
            point["explicitBounds"] = list(BUCKET_BOUNDS)
            point["bucketCounts"] = [str(c) for c in buckets]
        metrics.append(
            {
                "name": name,
                "histogram": {
                    "aggregationTemporality": (
                        "AGGREGATION_TEMPORALITY_CUMULATIVE"
                    ),
                    "dataPoints": [point],
                },
            }
        )
    resource = {
        "attributes": [
            {
                "key": "service.name",
                "value": {"stringValue": service},
            }
        ]
    }
    document: dict = {
        "resourceMetrics": [
            {
                "resource": resource,
                "scopeMetrics": [
                    {
                        "scope": {"name": "repro.observability"},
                        "metrics": metrics,
                    }
                ],
            }
        ]
    }
    span_records = list(spans)
    if span_records:
        trace_id = _trace_id(span_records)
        otlp_spans: list[dict] = []

        def emit(node: dict, parent_id: str) -> None:
            span_id = _span_id(len(otlp_spans), node["name"])
            duration_ns = int(node["seconds"] * 1_000_000_000)
            record: dict = {
                "traceId": trace_id,
                "spanId": span_id,
                "name": node["name"],
                "startTimeUnixNano": "0",
                "endTimeUnixNano": str(duration_ns),
            }
            if parent_id:
                record["parentSpanId"] = parent_id
            otlp_spans.append(record)
            for child in node["children"]:
                emit(child, span_id)

        for root in span_forest(span_records):
            emit(root, "")
        document["resourceSpans"] = [
            {
                "resource": resource,
                "scopeSpans": [
                    {
                        "scope": {"name": "repro.observability"},
                        "spans": otlp_spans,
                    }
                ],
            }
        ]
    return json.dumps(document, indent=indent, sort_keys=True)


def registry_from_events(
    events: Sequence[AuditEvent],
) -> MetricsRegistry:
    """Fold an audit chain into an exportable metrics registry.

    Produces one ``audit.events.<category>.<action>`` counter per
    distinct event kind (action hyphens become underscores so names
    stay dotted snake_case), an ``audit.events`` grand total, and the
    chain anchors as gauges: ``audit.chain.length`` and
    ``audit.chain.intact`` (1 or 0 from a full verification walk).
    Because the chain is clock-free, two same-seed runs export the
    same bytes — the property ``repro-ethics obs export`` relies on.
    """
    registry = MetricsRegistry()
    total = registry.counter("audit.events")
    for event in events:
        total.inc()
        action = event.action.replace("-", "_").replace(".", "_")
        category = event.category.replace("-", "_")
        registry.counter(
            f"audit.events.{category}.{action}"
        ).inc()
    verification = verify_events(events)
    registry.gauge("audit.chain.length").set(verification.length)
    registry.gauge("audit.chain.intact").set(
        1 if verification.ok else 0
    )
    return registry
