"""The flight recorder: a bounded ring of recent telemetry frames.

When a batch run degrades or a worker process dies, the operator's
first question is *what was happening just before* — and the answer
must be as tamper-evident and reproducible as the audit chain
itself, because incident evidence about illicit-origin data handling
is exactly the kind of record a REB inspects. The
:class:`FlightRecorder` is the clock-free answer:

* **A bounded ring.** ``record_event`` / ``record_span`` /
  ``record_metric`` append small frames to a ``deque(maxlen=N)``;
  old frames fall off the front (the ``dropped`` counter stays
  honest about it). The recorder taps
  :func:`~repro.observability.runtime.audit_event` through the
  installed :class:`~repro.observability.runtime.Observer`, so every
  audit bracket the batch executor and ``WarmPool`` emit — including
  worker-shard events replayed in input order — lands in the ring
  without any call-site changes.
* **Configuration-invariant frames.** Frame details are normalized
  by projecting out :data:`RUN_SCOPE_DETAIL_KEYS` (today just
  ``workers``) — the keys that honestly describe the *execution
  configuration* rather than the *work*. The full-fidelity values
  stay in the audit chain; the ring keeps only what must be
  byte-identical across worker counts. Span frames carry name and
  depth, never seconds; timings are envelope material.
* **Self-contained incident bundles.** :meth:`incident` snapshots
  the ring into an :class:`IncidentBundle`: a JSONL **body** (one
  header line, then one hash-chained line per frame — BLAKE2b-256
  over canonical JSON, each frame binding its predecessor's digest,
  like the audit chain) carrying the normalized frames, the folded
  metric deltas and the logical dispatch plan, plus one **envelope**
  line for everything configuration- or wall-clock-flavoured: the
  free-text reason, the live registry snapshot, the caller's
  context. The body bytes of a deterministic failure are identical
  across batch worker counts 1/2/4 — the acceptance property
  ``tests/test_health_surface.py`` pins down — and
  :func:`verify_bundle_text` re-walks the chain, reusing the audit
  verifier's :class:`~repro.observability.log.ChainVerification`
  diagnosis vocabulary.

Bundles dump to ``dump_dir/incident-<seq>-<kind>.jsonl`` (sequence-
numbered, clock-free names) and each dump emits an ``obs/incident``
audit event so the chain records that evidence was produced.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from collections import deque
from pathlib import Path

from ..errors import SafeguardError
from .events import GENESIS_DIGEST
from .log import ChainVerification

__all__ = [
    "FlightRecorder",
    "IncidentBundle",
    "RUN_SCOPE_DETAIL_KEYS",
    "load_bundle_text",
    "verify_bundle_text",
]

#: Audit-detail keys describing the execution configuration rather
#: than the work itself; projected out of ring frames so incident
#: bundles stay byte-identical across worker counts. The audit chain
#: keeps the full-fidelity values.
RUN_SCOPE_DETAIL_KEYS: frozenset[str] = frozenset({"workers"})

#: Ring entries kept when nothing else is configured.
DEFAULT_CAPACITY = 256

_BUNDLE_MARKER = "repro-incident"
_BUNDLE_VERSION = 1


def _canonical(record: dict) -> str:
    """Canonical compact JSON (sorted keys), one line."""
    return json.dumps(
        record, sort_keys=True, separators=(",", ":")
    )


def _frame_digest(
    index: int, frame: dict, previous_digest: str
) -> str:
    """BLAKE2b-256 over the canonical chained-frame payload."""
    material = _canonical(
        {
            "frame": frame,
            "index": index,
            "previous_digest": previous_digest,
        }
    )
    return hashlib.blake2b(
        material.encode("utf-8"), digest_size=32
    ).hexdigest()


def _normalized(frame: dict) -> dict:
    """One ring frame in its canonical, configuration-free form.

    Event frames are stored raw on the hot path; this projects out
    the :data:`RUN_SCOPE_DETAIL_KEYS`, sorts the detail keys and
    coerces values to JSON-safe forms. Span and metric frames are
    already canonical and pass through unchanged.
    """
    if frame["kind"] != "event":
        return frame
    return {
        "kind": "event",
        "category": frame["category"],
        "action": frame["action"],
        "subject": frame["subject"],
        "detail": {
            key: _json_safe(value)
            for key, value in sorted(frame["detail"].items())
            if key not in RUN_SCOPE_DETAIL_KEYS
        },
    }


def _json_safe(value: object) -> object:
    """Coerce a frame detail value to a canonical JSON-safe form."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {
            str(key): _json_safe(entry)
            for key, entry in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [_json_safe(entry) for entry in value]
    return repr(value)


@dataclasses.dataclass(frozen=True)
class IncidentBundle:
    """One dumped incident: chained frames, plan, deltas, envelope.

    ``records`` are the chained frame lines (each
    ``{"digest", "frame", "index", "previous_digest"}``);
    ``tail_digest`` anchors the chain; ``plan`` is the logical
    dispatch plan (worker-count invariant); ``deltas`` are the folded
    ``metric`` frames; ``envelope`` holds everything excluded from
    the byte-stable body.
    """

    kind: str
    sequence: int
    records: tuple[dict, ...]
    dropped: int
    tail_digest: str
    plan: dict | None = None
    deltas: dict = dataclasses.field(default_factory=dict)
    envelope: dict = dataclasses.field(default_factory=dict)

    def header(self) -> dict:
        """The first body line: bundle identity and chain anchors."""
        return {
            "bundle": _BUNDLE_MARKER,
            "deltas": dict(self.deltas),
            "dropped": self.dropped,
            "frames": len(self.records),
            "kind": self.kind,
            "plan": self.plan,
            "sequence": self.sequence,
            "tail_digest": self.tail_digest,
            "version": _BUNDLE_VERSION,
        }

    def body_jsonl(self) -> str:
        """The byte-stable body: header line + chained frame lines.

        This is the artifact asserted byte-identical across batch
        worker counts; everything configuration-dependent lives in
        the envelope instead.
        """
        lines = [_canonical(self.header())]
        lines.extend(
            _canonical(record) for record in self.records
        )
        return "\n".join(lines) + "\n"

    def digest(self) -> str:
        """BLAKE2b-256 over the body bytes (the out-of-band anchor)."""
        return hashlib.blake2b(
            self.body_jsonl().encode("utf-8"), digest_size=32
        ).hexdigest()

    def to_jsonl(self) -> str:
        """The full dump: body plus one trailing envelope line."""
        return self.body_jsonl() + _canonical(
            {"envelope": self.envelope}
        ) + "\n"


class FlightRecorder:
    """Bounded telemetry ring with incident-bundle dumps."""

    __slots__ = (
        "capacity",
        "dump_dir",
        "dropped",
        "incidents",
        "_frames",
        "_plan",
    )

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        dump_dir: str | Path | None = None,
    ) -> None:
        if capacity < 1:
            raise SafeguardError(
                "flight-recorder capacity must be at least 1"
            )
        self.capacity = capacity
        self.dump_dir = (
            Path(dump_dir) if dump_dir is not None else None
        )
        self.dropped = 0
        self.incidents: list[IncidentBundle] = []
        self._frames: deque[dict] = deque(maxlen=capacity)
        self._plan: dict | None = None

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def frames(self) -> tuple[dict, ...]:
        """A snapshot of the ring, normalized, oldest frame first."""
        return tuple(
            _normalized(frame) for frame in self._frames
        )

    def _append(self, frame: dict) -> None:
        if len(self._frames) == self.capacity:
            self.dropped += 1
        self._frames.append(frame)

    def record_event(
        self,
        category: str,
        action: str,
        subject: str,
        detail: dict,
    ) -> None:
        """Ring one audit event, raw.

        Called by :func:`~repro.observability.runtime.audit_event`
        for every emission — including worker-shard replays, which
        arrive in input order, so the ring content is invariant
        under the worker count. This is the instrumented hot path:
        one bounded-deque append of the raw tuple (the kwargs dict
        is freshly built per :func:`audit_event` call, so holding
        the reference is safe). Normalization — run-scope key
        projection, key sorting, JSON coercion — happens once per
        *snapshot* in :func:`_normalized`, not once per event,
        which is what keeps the flight tap within the 5% overhead
        budget of E16.
        """
        self._append(
            {
                "kind": "event",
                "category": category,
                "action": action,
                "subject": subject,
                "detail": detail,
            }
        )

    def record_span(self, name: str, depth: int) -> None:
        """Ring one finished span — name and depth, never seconds."""
        self._append(
            {"kind": "span", "name": name, "depth": depth}
        )

    def record_metric(
        self, name: str, value: int | float
    ) -> None:
        """Ring one deterministic metric delta.

        Only coordinator-side, worker-count-invariant deltas belong
        here (batch ok/failed counts, planned request totals) —
        timing metrics live in the registry, which each bundle
        carries in its envelope instead.
        """
        self._append(
            {"kind": "metric", "name": name, "value": value}
        )

    def note_plan(self, plan: dict) -> None:
        """Remember the current run's logical dispatch plan."""
        self._plan = plan

    def _chained(self) -> tuple[tuple[dict, ...], str]:
        """The ring as hash-chained records plus the tail digest."""
        records: list[dict] = []
        previous = GENESIS_DIGEST
        for index, raw in enumerate(self._frames):
            frame = _normalized(raw)
            digest = _frame_digest(index, frame, previous)
            records.append(
                {
                    "digest": digest,
                    "frame": frame,
                    "index": index,
                    "previous_digest": previous,
                }
            )
            previous = digest
        return tuple(records), previous

    def _deltas(self) -> dict:
        """Metric frames currently ringed, folded to sorted sums."""
        totals: dict[str, int | float] = {}
        for frame in self._frames:
            if frame["kind"] != "metric":
                continue
            name = frame["name"]
            totals[name] = totals.get(name, 0) + frame["value"]
        return dict(sorted(totals.items()))

    def incident(
        self, kind: str, reason: str = "", **context: object
    ) -> IncidentBundle:
        """Snapshot the ring into a bundle; dump and chain-log it.

        *kind* is the short machine category (``worker-lost``,
        ``batch-error``, ``batch-degraded``, ``stage-failure``,
        ``manual``); *reason* and **context** are envelope material —
        free text and configuration may vary across worker counts,
        the body may not. The registry snapshot of the installed
        observer rides in the envelope too. Emits one
        ``obs/incident`` audit event *after* snapshotting, so the
        evidence trail records the dump without the dump recording
        itself.
        """
        from .runtime import audit_event, metrics

        records, tail_digest = self._chained()
        envelope: dict = {
            "context": {
                key: _json_safe(value)
                for key, value in sorted(context.items())
            },
            "reason": reason,
            "registry": metrics().snapshot(),
        }
        bundle = IncidentBundle(
            kind=kind,
            sequence=len(self.incidents),
            records=records,
            dropped=self.dropped,
            tail_digest=tail_digest,
            plan=self._plan,
            deltas=self._deltas(),
            envelope=envelope,
        )
        self.incidents.append(bundle)
        path: Path | None = None
        if self.dump_dir is not None:
            self.dump_dir.mkdir(parents=True, exist_ok=True)
            path = self.dump_dir / (
                f"incident-{bundle.sequence:03d}-{kind}.jsonl"
            )
            path.write_text(bundle.to_jsonl(), encoding="utf-8")
        audit_event(
            "obs",
            "incident",
            subject=kind,
            frames=len(records),
            sequence=bundle.sequence,
            digest=bundle.digest(),
        )
        return bundle


def load_bundle_text(text: str) -> tuple[dict, list[dict], dict]:
    """Parse a dumped bundle: (header, frame records, envelope).

    Raises :class:`~repro.errors.SafeguardError` on structural
    damage (bad JSON, missing marker); chain damage is the verifier's
    department.
    """
    header: dict | None = None
    records: list[dict] = []
    envelope: dict = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            body = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SafeguardError(
                f"incident bundle line {number} is not JSON: {exc}"
            ) from exc
        if not isinstance(body, dict):
            raise SafeguardError(
                f"incident bundle line {number} must be an object"
            )
        if header is None:
            if body.get("bundle") != _BUNDLE_MARKER:
                raise SafeguardError(
                    "not an incident bundle: first line lacks the "
                    f"{_BUNDLE_MARKER!r} marker"
                )
            header = body
        elif "envelope" in body:
            envelope = body["envelope"]
        else:
            records.append(body)
    if header is None:
        raise SafeguardError("incident bundle is empty")
    return header, records, envelope


def verify_bundle_text(text: str) -> ChainVerification:
    """Re-walk a dumped bundle's frame chain, localizing damage.

    The same diagnosis vocabulary as the audit verifier: an intact
    bundle reports its length and tail digest; an altered, spliced or
    truncated one names the first bad record. The header's ``frames``
    count and ``tail_digest`` act as the built-in out-of-band
    anchors, so dropping trailing frame lines is detected.
    """
    header, records, _ = load_bundle_text(text)
    previous = GENESIS_DIGEST
    for position, record in enumerate(records):
        frame = record.get("frame")
        if not isinstance(frame, dict):
            return ChainVerification(
                ok=False,
                length=position,
                tail_digest=previous,
                error_index=position,
                reason="record has no frame object",
            )
        if record.get("index") != position:
            return ChainVerification(
                ok=False,
                length=position,
                tail_digest=previous,
                error_index=position,
                reason=(
                    f"index {record.get('index')} breaks the "
                    f"sequence (expected {position})"
                ),
            )
        if record.get("previous_digest") != previous:
            return ChainVerification(
                ok=False,
                length=position,
                tail_digest=previous,
                error_index=position,
                reason="previous-digest link broken",
            )
        expected = _frame_digest(position, frame, previous)
        if record.get("digest") != expected:
            return ChainVerification(
                ok=False,
                length=position,
                tail_digest=previous,
                error_index=position,
                reason="frame content does not match its digest",
            )
        previous = expected
    if header.get("frames") != len(records):
        return ChainVerification(
            ok=False,
            length=len(records),
            tail_digest=previous,
            error_index=len(records),
            reason=(
                f"header promises {header.get('frames')} frames, "
                f"found {len(records)}"
            ),
        )
    if header.get("tail_digest") != previous:
        return ChainVerification(
            ok=False,
            length=len(records),
            tail_digest=previous,
            error_index=len(records),
            reason="header tail digest does not match the chain",
        )
    return ChainVerification(
        ok=True, length=len(records), tail_digest=previous
    )
