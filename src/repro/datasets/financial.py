"""Synthetic offshore-leak corpus (Panama-papers substitute, §4.4).

Generates an entity graph in the shape the ICIJ data model uses:
offshore entities, officers (people/companies connected to them),
intermediaries (law firms/banks that set them up), with incorporation
and (possible) inactivation dates, plus a set of listed firms so the
O'Donovan-style event study (E12 family) has something to run on.
"""

from __future__ import annotations

import dataclasses

from ..errors import DatasetError
from .common import SeededGenerator

__all__ = [
    "OffshoreEntity",
    "Officer",
    "Intermediary",
    "ListedFirm",
    "OffshoreLeak",
    "OffshoreLeakGenerator",
]

HAVENS = (
    "Panama",
    "British Virgin Islands",
    "Bahamas",
    "Seychelles",
    "Samoa",
    "Niue",
)

#: Years in which information-exchange legislation took effect — used
#: as natural experiments (EUSD 2005, TIEA wave 2009, FATCA 2010,
#: CRS 2014), per Omartian's design.
LEGISLATION_YEARS = (2005, 2009, 2010, 2014)


@dataclasses.dataclass(frozen=True)
class OffshoreEntity:
    entity_id: int
    name: str
    jurisdiction: str
    incorporation_year: int
    inactivation_year: int | None
    intermediary_id: int

    def active_in(self, year: int) -> bool:
        """Whether the entity existed (uninactivated) in *year*."""
        if year < self.incorporation_year:
            return False
        return (
            self.inactivation_year is None
            or year < self.inactivation_year
        )


@dataclasses.dataclass(frozen=True)
class Officer:
    officer_id: int
    name: str
    country: str
    entity_ids: tuple[int, ...]
    is_public_figure: bool


@dataclasses.dataclass(frozen=True)
class Intermediary:
    intermediary_id: int
    name: str
    country: str


@dataclasses.dataclass(frozen=True)
class ListedFirm:
    firm_id: int
    name: str
    market_cap_musd: float
    implicated: bool


@dataclasses.dataclass(frozen=True)
class OffshoreLeak:
    """The full synthetic leak."""

    entities: tuple[OffshoreEntity, ...]
    officers: tuple[Officer, ...]
    intermediaries: tuple[Intermediary, ...]
    firms: tuple[ListedFirm, ...]

    def incorporations_by_year(self) -> dict[int, int]:
        """Annual incorporation counts, sorted by year."""
        counts: dict[int, int] = {}
        for entity in self.entities:
            counts[entity.incorporation_year] = (
                counts.get(entity.incorporation_year, 0) + 1
            )
        return dict(sorted(counts.items()))

    def active_entities(self, year: int) -> int:
        return sum(1 for e in self.entities if e.active_in(year))

    def public_figures(self) -> tuple[Officer, ...]:
        return tuple(o for o in self.officers if o.is_public_figure)

    def implicated_market_cap(self) -> float:
        return sum(
            f.market_cap_musd for f in self.firms if f.implicated
        )


class OffshoreLeakGenerator(SeededGenerator):
    """Generate a leak whose incorporation series *responds to*
    information-exchange legislation: after each legislation year the
    baseline incorporation rate drops, so the Omartian-style analysis
    finds the significant effect he reports."""

    def generate(
        self,
        entities: int = 2000,
        officers: int = 1200,
        intermediaries: int = 40,
        firms: int = 500,
        start_year: int = 1995,
        end_year: int = 2015,
        legislation_effect: float = 0.25,
    ) -> OffshoreLeak:
        """Generate the synthetic offshore-entity leak."""
        if end_year <= start_year:
            raise DatasetError("end_year must exceed start_year")
        if not 0.0 <= legislation_effect < 1.0:
            raise DatasetError(
                "legislation_effect must be in [0, 1)"
            )
        years = list(range(start_year, end_year + 1))
        # Base weight per year, cut after each legislation event.
        weights = []
        for year in years:
            weight = 1.0
            for event in LEGISLATION_YEARS:
                if year >= event:
                    weight *= 1.0 - legislation_effect
            weights.append(weight)
        intermediary_rows = tuple(
            Intermediary(
                intermediary_id=i,
                name=f"{self.full_name()} & Partners",
                country=self.rng.choice(HAVENS),
            )
            for i in range(intermediaries)
        )
        entity_rows = []
        for entity_id in range(entities):
            year = self.rng.choices(years, weights=weights, k=1)[0]
            lifetime = self.rng.randrange(1, 15)
            inactivation = (
                year + lifetime
                if year + lifetime <= end_year
                and self.rng.random() < 0.6
                else None
            )
            entity_rows.append(
                OffshoreEntity(
                    entity_id=entity_id,
                    name=f"Entity {entity_id:05d} Ltd",
                    jurisdiction=self.rng.choice(HAVENS),
                    incorporation_year=year,
                    inactivation_year=inactivation,
                    intermediary_id=self.rng.randrange(
                        intermediaries
                    ),
                )
            )
        officer_rows = []
        for officer_id in range(officers):
            count = self.rng.randrange(1, 5)
            linked = tuple(
                self.rng.randrange(entities) for _ in range(count)
            )
            officer_rows.append(
                Officer(
                    officer_id=officer_id,
                    name=self.full_name(),
                    country=self.rng.choice(
                        ("US", "UK", "DE", "FR", "CN", "RU", "BR")
                    ),
                    entity_ids=linked,
                    is_public_figure=self.rng.random() < 0.02,
                )
            )
        firm_rows = tuple(
            ListedFirm(
                firm_id=i,
                name=f"Firm {i:04d} plc",
                market_cap_musd=round(
                    self.rng.lognormvariate(6.0, 1.0), 1
                ),
                implicated=self.rng.random() < 0.1,
            )
            for i in range(firms)
        )
        return OffshoreLeak(
            entities=tuple(entity_rows),
            officers=tuple(officer_rows),
            intermediaries=intermediary_rows,
            firms=firm_rows,
        )
