"""Synthetic classified-document corpus (Manning/Snowden substitute).

Generates diplomatic-cable-style documents with classification
markings, originating posts, topics and subject references, so the
legal gating around national-security material (spillage handling,
classification persistence after public release) and the redaction
pipeline can be exercised without any real classified content.
"""

from __future__ import annotations

import dataclasses

from ..errors import DatasetError
from .common import SeededGenerator

__all__ = ["Cable", "ClassifiedCorpus", "ClassifiedCorpusGenerator"]

CLASSIFICATIONS = (
    "UNCLASSIFIED",
    "CONFIDENTIAL",
    "SECRET",
    "TOP SECRET",
)

POSTS = (
    "Embassy Alpha",
    "Embassy Beta",
    "Consulate Gamma",
    "Mission Delta",
    "Embassy Epsilon",
)

TOPICS = (
    "trade-negotiations",
    "arms-control",
    "counter-narcotics",
    "regional-security",
    "energy-policy",
    "diplomatic-relations",
)


@dataclasses.dataclass(frozen=True)
class Cable:
    """One synthetic cable."""

    cable_id: str
    classification: str
    originating_post: str
    topic: str
    year: int
    subjects: tuple[str, ...]  # names mentioned (synthetic persons)
    body: str

    @property
    def is_classified(self) -> bool:
        return self.classification != "UNCLASSIFIED"

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class ClassifiedCorpus:
    """A leak-shaped corpus of cables."""

    cables: tuple[Cable, ...]
    #: Public release never declassifies: the corpus carries its
    #: original markings regardless of being "leaked".
    publicly_released: bool = True

    def __len__(self) -> int:
        return len(self.cables)

    def classified_fraction(self) -> float:
        """Fraction of cables carrying any classification."""
        if not self.cables:
            return 0.0
        classified = sum(1 for c in self.cables if c.is_classified)
        return classified / len(self.cables)

    def by_classification(self) -> dict[str, int]:
        """Cable counts per classification marking."""
        counts: dict[str, int] = {}
        for cable in self.cables:
            counts[cable.classification] = (
                counts.get(cable.classification, 0) + 1
            )
        return counts

    def mentioning(self, name: str) -> tuple[Cable, ...]:
        return tuple(c for c in self.cables if name in c.subjects)

    def still_classified(self) -> tuple[Cable, ...]:
        """Cables that remain classified despite public release —
        the §4.5.2 point that publication does not declassify."""
        return tuple(c for c in self.cables if c.is_classified)


class ClassifiedCorpusGenerator(SeededGenerator):
    """Generate a cable corpus with a realistic marking mix."""

    #: Roughly the mix reported for the Manning cables: mostly
    #: unclassified/confidential, a small secret tail, nothing above.
    MARKING_WEIGHTS = (0.45, 0.40, 0.15, 0.0)

    def generate(
        self, cables: int = 500, start_year: int = 2003,
        end_year: int = 2010,
    ) -> ClassifiedCorpus:
        """Generate a leak-shaped corpus of synthetic cables."""
        if cables <= 0:
            raise DatasetError("cables must be positive")
        if end_year < start_year:
            raise DatasetError("end_year must not precede start_year")
        rows = []
        for index in range(cables):
            year = self.rng.randrange(start_year, end_year + 1)
            post = self.rng.choice(POSTS)
            classification = self.rng.choices(
                CLASSIFICATIONS, weights=self.MARKING_WEIGHTS, k=1
            )[0]
            subjects = tuple(
                self.full_name()
                for _ in range(self.rng.randrange(0, 4))
            )
            rows.append(
                Cable(
                    cable_id=f"{year}{post[:3].upper()}{index:05d}",
                    classification=classification,
                    originating_post=post,
                    topic=self.rng.choice(TOPICS),
                    year=year,
                    subjects=subjects,
                    body=self.sentence(30),
                )
            )
        return ClassifiedCorpus(cables=tuple(rows))
