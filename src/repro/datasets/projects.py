"""Synthetic research-project generator for mass policy assessment.

Unlike the other dataset families (which synthesise *data*), this one
synthesises *research designs*: seed-deterministic
:class:`~repro.assessment.project.ResearchProject` instances with
randomised data profiles, jurisdiction sets, harm/benefit registers,
safeguard plans, rights contexts and justification facts. They are
the workload for the ``policy.assess`` operation and the E19
benchmark, which mass-assesses thousands of them through the warm
batch executor under different policy packs.

The distributions are tuned so the verdict space is exercised: most
projects land in the proceed-with-safeguards band, with meaningful
minorities hitting REB triggers, severe legal exposure and
do-not-proceed hard stops.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..assessment import PlannedSafeguards, ResearchProject
from ..corpus import DataOrigin
from ..ethics import (
    BenefitInstance,
    HarmInstance,
    JustificationFacts,
    RightsContext,
    default_stakeholders,
)
from ..legal import ALL_JURISDICTIONS, JurisdictionSet
from .common import SeededGenerator, chunked

__all__ = ["ResearchProjectGenerator", "synthetic_project"]

_TOPICS = (
    "credential reuse",
    "booter economics",
    "underground forum trust",
    "offshore finance networks",
    "malware supply chains",
    "censorship measurement",
    "abuse infrastructure takedowns",
    "data-breach notification",
)

_HARM_KINDS = ("SI", "DA", "PA", "RH")
_BENEFIT_KINDS = ("R", "U", "DM", "AT")
_LIKELIHOODS = (0.05, 0.2, 0.5, 0.8)
_SEVERITIES = (0.1, 0.3, 0.5, 0.8)


class ResearchProjectGenerator(SeededGenerator):
    """Seed-deterministic stream of synthetic research projects."""

    def build(self, index: int = 0) -> ResearchProject:
        """One synthetic project (consumes RNG state)."""
        rng = self.rng
        topic = rng.choice(_TOPICS)
        origin = rng.choice(DataOrigin.ALL)
        intrusion = rng.random() < 0.04
        malware = rng.random() < 0.15
        profile_kwargs = {
            "origin": origin,
            "contains_personal_data": rng.random() < 0.55,
            "contains_credentials": rng.random() < 0.35,
            "contains_email_addresses": rng.random() < 0.5,
            "contains_ip_addresses": rng.random() < 0.4,
            "contains_private_messages": rng.random() < 0.25,
            "contains_financial_records": rng.random() < 0.2,
            "contains_malware_or_exploits": malware,
            "copyrighted_material": rng.random() < 0.3,
            "us_government_work": rng.random() < 0.05,
            "classified": rng.random() < 0.07,
            "state_sensitive": rng.random() < 0.12,
            "terrorism_related": rng.random() < 0.08,
            "may_contain_indecent_images": rng.random() < 0.05,
            "publicly_available": rng.random() < 0.7,
            "collected_by_researcher_intrusion": intrusion,
            "paid_offenders": rng.random() < 0.05,
            "plans_public_redistribution": rng.random() < 0.15,
            "plans_controlled_sharing": rng.random() < 0.4,
            "plans_deanonymization": rng.random() < 0.1,
            "violates_terms_of_service": rng.random() < 0.3,
        }
        from ..legal import DataProfile

        profile = DataProfile(**profile_kwargs)

        count = rng.randint(1, len(ALL_JURISDICTIONS))
        jurisdictions = JurisdictionSet(
            rng.sample(ALL_JURISDICTIONS, count)
        )

        stakeholders = default_stakeholders()
        harms = tuple(
            HarmInstance(
                description=(
                    f"harm {harm_index} from studying {topic}"
                ),
                kind=rng.choice(_HARM_KINDS),
                stakeholder_id=rng.choice(
                    ("data-subjects", "researchers")
                ),
                likelihood=rng.choice(_LIKELIHOODS),
                severity=rng.choice(_SEVERITIES),
            )
            for harm_index in range(rng.randint(0, 3))
        )
        benefits = tuple(
            BenefitInstance(
                description=(
                    f"benefit {benefit_index} of understanding "
                    f"{topic}"
                ),
                kind=rng.choice(_BENEFIT_KINDS),
                beneficiary=rng.choice(
                    ("society", "researchers")
                ),
                magnitude=rng.choice(_SEVERITIES),
            )
            for benefit_index in range(rng.randint(0, 2))
        )

        safeguards = PlannedSafeguards(
            secure_storage=rng.random() < 0.7,
            encryption_at_rest=rng.random() < 0.5,
            access_control=rng.random() < 0.5,
            privacy_preserved=rng.random() < 0.5,
            pseudonymisation=rng.random() < 0.4,
            data_minimisation=rng.random() < 0.4,
            controlled_sharing=rng.random() < 0.4,
        )
        identifies = rng.random() < 0.3
        rights = RightsContext(
            identifies_individuals=identifies,
            implies_criminality=identifies and rng.random() < 0.5,
            reaches_law_enforcement=rng.random() < 0.2,
            extrajudicial_violence_risk=rng.random() < 0.03,
            contains_private_life=profile_kwargs[
                "contains_private_messages"
            ],
            triggers_asset_action=rng.random() < 0.1,
        )
        justification = JustificationFacts(
            prior_published_use=rng.random() < 0.4,
            use_differs_from_prior=rng.random() < 0.5,
            data_public=profile_kwargs["publicly_available"],
            applies_new_techniques=rng.random() < 0.3,
            no_persons_identified=not identifies,
            secure_handling=safeguards.secure_storage,
            use_is_inherent_harm=profile_kwargs[
                "may_contain_indecent_images"
            ],
            adversaries_use_data=rng.random() < 0.4,
            defence_creates_greater_harm=rng.random() < 0.1,
            no_alternative_source=rng.random() < 0.5,
            public_interest_case=rng.random() < 0.6,
        )
        return ResearchProject(
            title=f"synthetic study {index}: {topic}",
            research_question=(
                f"what does this dataset reveal about {topic}?"
            ),
            data_description=(
                f"a synthetic illicit-origin dataset about {topic}"
            ),
            profile=profile,
            stakeholders=stakeholders,
            harms=harms,
            benefits=benefits,
            justification_facts=justification,
            safeguards=safeguards,
            jurisdictions=jurisdictions,
            rights_context=rights,
            reb_approved=rng.random() < 0.25,
            has_ethics_section=rng.random() < 0.4,
        )

    def generate(self, count: int) -> tuple[ResearchProject, ...]:
        """*count* projects, in deterministic seed order."""
        return tuple(
            self.build(index) for index in range(count)
        )

    def iter_records(
        self, *, chunk_size: int = 1024, count: int = 1000
    ) -> Iterator[list[dict]]:
        """Stream flat project summaries as record chunks."""

        def records() -> Iterator[dict]:
            for index in range(count):
                project = self.build(index)
                yield {
                    "_table": "projects",
                    "title": project.title,
                    "origin": project.profile.origin,
                    "jurisdictions": ",".join(
                        j.code for j in project.jurisdictions
                    ),
                    "harms": len(project.harms),
                    "benefits": len(project.benefits),
                    "reb_approved": project.reb_approved,
                    "has_ethics_section": (
                        project.has_ethics_section
                    ),
                }

        yield from chunked(records(), chunk_size)


def synthetic_project(seed: int) -> ResearchProject:
    """The single deterministic project for *seed*.

    ``policy.assess --seed N`` resolves its subject through this
    helper, so one seed names one project everywhere (CLI, batch
    files, benchmarks).
    """
    return ResearchProjectGenerator(seed).build(seed)
