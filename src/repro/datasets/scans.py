"""Synthetic internet-scan and network-telescope data (Carna, §4.1.1).

Two coupled generators:

* :class:`ScanGenerator` produces Carna-census-style port-scan
  records, including the *proxy artefact* CAIDA documented (a fraction
  of port-80 results polluted by transparent HTTP proxies answering
  for unreachable hosts).
* The telescope view returns probe events as seen by a darknet, which
  is exactly how Malécot & Inoue [70] and CAIDA [18] limited their
  analysis — and the source-address list it yields reproduces their
  ethical predicament: the sources identify weakly-secured devices.
"""

from __future__ import annotations

import dataclasses

from ..errors import DatasetError
from .common import SeededGenerator

__all__ = [
    "ScanRecord",
    "TelescopeEvent",
    "ScanDataset",
    "ScanGenerator",
]

COMMON_PORTS = (22, 23, 80, 443, 8080, 2323, 7547)


@dataclasses.dataclass(frozen=True)
class ScanRecord:
    """One (target, port) probe result in the census."""

    target_ip: str
    port: int
    open: bool
    #: True when the response was synthesised by an intercepting
    #: proxy rather than the target (the port-80 artefact).
    proxy_artefact: bool
    bot_source_ip: str

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class TelescopeEvent:
    """One probe arriving at the observer's darknet."""

    source_ip: str  # a botnet device — an identifiable victim
    dest_ip: str
    port: int
    day: int


@dataclasses.dataclass(frozen=True)
class ScanDataset:
    """The census plus the telescope's partial view of it."""

    records: tuple[ScanRecord, ...]
    telescope_events: tuple[TelescopeEvent, ...]
    darknet_prefix: str

    def open_rate(self, port: int) -> float:
        """Fraction of probes on *port* reported open."""
        relevant = [r for r in self.records if r.port == port]
        if not relevant:
            return 0.0
        return sum(1 for r in relevant if r.open) / len(relevant)

    def artefact_rate(self, port: int) -> float:
        """Fraction of 'open' results that are proxy artefacts —
        the technical invalidity Krenc et al. [62] documented."""
        opens = [
            r for r in self.records if r.port == port and r.open
        ]
        if not opens:
            return 0.0
        return sum(1 for r in opens if r.proxy_artefact) / len(opens)

    def botnet_sources(self) -> tuple[str, ...]:
        """Distinct compromised-device addresses visible to the
        telescope — the sensitive list [70] kept confidential."""
        return tuple(
            sorted({e.source_ip for e in self.telescope_events})
        )


class ScanGenerator(SeededGenerator):
    """Generate a census-with-telescope dataset."""

    def generate(
        self,
        targets: int = 2000,
        bots: int = 150,
        telescope_share: float = 0.05,
        proxy_pollution: float = 0.2,
        days: int = 30,
    ) -> ScanDataset:
        """Generate the census plus its telescope view."""
        if targets <= 0 or bots <= 0:
            raise DatasetError("targets and bots must be positive")
        if not 0.0 <= telescope_share <= 1.0:
            raise DatasetError("telescope_share must be in [0, 1]")
        if not 0.0 <= proxy_pollution <= 1.0:
            raise DatasetError("proxy_pollution must be in [0, 1]")
        bot_ips = [self.ipv4() for _ in range(bots)]
        records = []
        telescope = []
        darknet_prefix = "203.0.113."  # TEST-NET-3: never real hosts
        for index in range(targets):
            in_darknet = self.rng.random() < telescope_share
            if in_darknet:
                target = darknet_prefix + str(
                    self.rng.randrange(1, 255)
                )
            else:
                target = self.ipv4()
            for port in COMMON_PORTS:
                bot = self.rng.choice(bot_ips)
                if in_darknet:
                    # Darknet addresses host nothing; every probe is
                    # observed and nothing is genuinely open.
                    telescope.append(
                        TelescopeEvent(
                            source_ip=bot,
                            dest_ip=target,
                            port=port,
                            day=self.rng.randrange(days),
                        )
                    )
                    records.append(
                        ScanRecord(
                            target_ip=target,
                            port=port,
                            open=False,
                            proxy_artefact=False,
                            bot_source_ip=bot,
                        )
                    )
                    continue
                genuinely_open = self.rng.random() < 0.15
                artefact = False
                is_open = genuinely_open
                if port == 80 and not genuinely_open:
                    # Transparent proxies answer for dead hosts.
                    if self.rng.random() < proxy_pollution:
                        is_open = True
                        artefact = True
                records.append(
                    ScanRecord(
                        target_ip=target,
                        port=port,
                        open=is_open,
                        proxy_artefact=artefact,
                        bot_source_ip=bot,
                    )
                )
        return ScanDataset(
            records=tuple(records),
            telescope_events=tuple(telescope),
            darknet_prefix=darknet_prefix,
        )
