"""Synthetic booter (DDoS-as-a-Service) database (§4.3.1 substitute).

Reproduces the schema the paper enumerates for leaked booter dumps:
"details of user accounts including names, email addresses, password
hashes and security questions; details of the backend and frontend
servers used for attacks; logs of connections to the site including IP
addresses and user agent strings; logs of attacks including target IP
addresses, ports, domain names and the method used; tickets and
messages sent between users and site owners; records of payments;
details of pricing plans".
"""

from __future__ import annotations

import dataclasses
import hashlib
from collections.abc import Iterator

from ..errors import DatasetError
from .common import SeededGenerator, chunked

__all__ = [
    "BooterUser",
    "AttackRecord",
    "PaymentRecord",
    "TicketMessage",
    "PricingPlan",
    "BooterDatabase",
    "BooterDatabaseGenerator",
]

ATTACK_METHODS = (
    "dns-amplification",
    "ntp-amplification",
    "ssdp-amplification",
    "chargen-amplification",
    "udp-flood",
    "syn-flood",
)


@dataclasses.dataclass(frozen=True)
class BooterUser:
    user_id: int
    username: str
    email: str
    password_hash: str
    security_question: str
    registration_day: int
    last_login_ip: str

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class AttackRecord:
    attack_id: int
    user_id: int
    target_ip: str
    target_port: int
    method: str
    duration_seconds: int
    day: int

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class PaymentRecord:
    payment_id: int
    user_id: int
    plan: str
    amount_usd: float
    day: int


@dataclasses.dataclass(frozen=True)
class TicketMessage:
    ticket_id: int
    user_id: int
    day: int
    text: str


@dataclasses.dataclass(frozen=True)
class PricingPlan:
    name: str
    max_duration_seconds: int
    concurrent_attacks: int
    price_usd: float


@dataclasses.dataclass(frozen=True)
class BooterDatabase:
    """A complete synthetic booter dump."""

    name: str
    users: tuple[BooterUser, ...]
    attacks: tuple[AttackRecord, ...]
    payments: tuple[PaymentRecord, ...]
    tickets: tuple[TicketMessage, ...]
    plans: tuple[PricingPlan, ...]

    def attacks_by_user(self, user_id: int) -> tuple[AttackRecord, ...]:
        return tuple(a for a in self.attacks if a.user_id == user_id)

    def revenue(self) -> float:
        return sum(p.amount_usd for p in self.payments)

    def distinct_targets(self) -> int:
        return len({a.target_ip for a in self.attacks})

    def to_records(self) -> dict[str, list[dict]]:
        """Plain-dict views of every table, for generic tooling."""
        return {
            "users": [u.to_dict() for u in self.users],
            "attacks": [a.to_dict() for a in self.attacks],
            "payments": [dataclasses.asdict(p) for p in self.payments],
            "tickets": [dataclasses.asdict(t) for t in self.tickets],
            "plans": [dataclasses.asdict(p) for p in self.plans],
        }


class BooterDatabaseGenerator(SeededGenerator):
    """Generate a booter dump with heavy-tailed usage.

    A small fraction of users launch most attacks (matching what
    Karami/Santanna-style analyses report), attack methods skew toward
    UDP amplification (per Thomas et al. [110]), and durations follow
    plan limits.
    """

    DEFAULT_PLANS = (
        PricingPlan("bronze", 300, 1, 4.99),
        PricingPlan("silver", 1200, 2, 14.99),
        PricingPlan("gold", 3600, 4, 39.99),
    )

    def generate(
        self,
        name: str = "examplestresser",
        users: int = 300,
        days: int = 90,
    ) -> BooterDatabase:
        """Generate a complete booter database dump."""
        if users <= 0 or days <= 0:
            raise DatasetError("users and days must be positive")
        user_rows = []
        for user_id in range(users):
            username = self.username()
            user_rows.append(
                BooterUser(
                    user_id=user_id,
                    username=username,
                    email=self.email(username),
                    password_hash=hashlib.sha1(
                        self.password().encode()
                    ).hexdigest(),
                    security_question="first pet's name",
                    registration_day=self.rng.randrange(days),
                    last_login_ip=self.ipv4(),
                )
            )
        plans = self.DEFAULT_PLANS
        payments = []
        heavy = max(1, users // 10)
        attacks = []
        attack_id = 0
        payment_id = 0
        for user in user_rows:
            is_heavy = user.user_id < heavy
            # Many accounts register but never pay (the funnel the
            # booter studies report); heavy users always subscribe.
            if not is_heavy and self.rng.random() < 0.4:
                continue
            plan = plans[2] if is_heavy else self.rng.choice(plans[:2])
            subscriptions = self.rng.randrange(1, 4 if is_heavy else 2)
            for _ in range(subscriptions):
                payments.append(
                    PaymentRecord(
                        payment_id=payment_id,
                        user_id=user.user_id,
                        plan=plan.name,
                        amount_usd=plan.price_usd,
                        day=self.rng.randrange(
                            user.registration_day, days
                        ),
                    )
                )
                payment_id += 1
            count = (
                self.rng.randrange(20, 80)
                if is_heavy
                else self.rng.randrange(0, 8)
            )
            for _ in range(count):
                # Amplification methods dominate real booter logs.
                if self.rng.random() < 0.8:
                    method = self.rng.choice(ATTACK_METHODS[:4])
                else:
                    method = self.rng.choice(ATTACK_METHODS[4:])
                attacks.append(
                    AttackRecord(
                        attack_id=attack_id,
                        user_id=user.user_id,
                        target_ip=self.ipv4(),
                        target_port=self.rng.choice(
                            (80, 443, 25565, 3074, 53)
                        ),
                        method=method,
                        duration_seconds=self.rng.randrange(
                            30, plan.max_duration_seconds
                        ),
                        day=self.rng.randrange(
                            user.registration_day, days
                        ),
                    )
                )
                attack_id += 1
        tickets = tuple(
            TicketMessage(
                ticket_id=i,
                user_id=self.rng.randrange(users),
                day=self.rng.randrange(days),
                text=self.sentence(10),
            )
            for i in range(users // 5)
        )
        return BooterDatabase(
            name=name,
            users=tuple(user_rows),
            attacks=tuple(attacks),
            payments=tuple(payments),
            tickets=tickets,
            plans=plans,
        )

    def iter_records(
        self,
        *,
        chunk_size: int = 1024,
        name: str = "examplestresser",
        users: int = 300,
        days: int = 90,
    ) -> Iterator[list[dict]]:
        """Stream the dump as chunks of dicts tagged with ``_table``.

        Draws from the RNG in exactly the order :meth:`generate`
        does, so a fresh generator with the same seed streams the
        same synthetic dump that the materialised path would build —
        but only ever holds one chunk of attack/payment/ticket rows
        (plus the user table, which the payment loop needs) in
        memory. Records arrive in generation order: users first, then
        each paying user's payments and attacks interleaved, then
        tickets, then plans; flattened output is ``chunk_size``
        invariant.
        """
        if users <= 0 or days <= 0:
            raise DatasetError("users and days must be positive")
        return chunked(self._iter_flat(users, days), chunk_size)

    def _iter_flat(self, users: int, days: int) -> Iterator[dict]:
        """Flat record stream mirroring :meth:`generate` RNG order."""
        user_rows = []
        for user_id in range(users):
            username = self.username()
            user = BooterUser(
                user_id=user_id,
                username=username,
                email=self.email(username),
                password_hash=hashlib.sha1(
                    self.password().encode()
                ).hexdigest(),
                security_question="first pet's name",
                registration_day=self.rng.randrange(days),
                last_login_ip=self.ipv4(),
            )
            user_rows.append(user)
            row = user.to_dict()
            row["_table"] = "users"
            yield row
        plans = self.DEFAULT_PLANS
        heavy = max(1, users // 10)
        attack_id = 0
        payment_id = 0
        for user in user_rows:
            is_heavy = user.user_id < heavy
            if not is_heavy and self.rng.random() < 0.4:
                continue
            plan = plans[2] if is_heavy else self.rng.choice(plans[:2])
            subscriptions = self.rng.randrange(1, 4 if is_heavy else 2)
            for _ in range(subscriptions):
                row = dataclasses.asdict(
                    PaymentRecord(
                        payment_id=payment_id,
                        user_id=user.user_id,
                        plan=plan.name,
                        amount_usd=plan.price_usd,
                        day=self.rng.randrange(
                            user.registration_day, days
                        ),
                    )
                )
                payment_id += 1
                row["_table"] = "payments"
                yield row
            count = (
                self.rng.randrange(20, 80)
                if is_heavy
                else self.rng.randrange(0, 8)
            )
            for _ in range(count):
                if self.rng.random() < 0.8:
                    method = self.rng.choice(ATTACK_METHODS[:4])
                else:
                    method = self.rng.choice(ATTACK_METHODS[4:])
                row = AttackRecord(
                    attack_id=attack_id,
                    user_id=user.user_id,
                    target_ip=self.ipv4(),
                    target_port=self.rng.choice(
                        (80, 443, 25565, 3074, 53)
                    ),
                    method=method,
                    duration_seconds=self.rng.randrange(
                        30, plan.max_duration_seconds
                    ),
                    day=self.rng.randrange(
                        user.registration_day, days
                    ),
                ).to_dict()
                attack_id += 1
                row["_table"] = "attacks"
                yield row
        for ticket_id in range(users // 5):
            row = dataclasses.asdict(
                TicketMessage(
                    ticket_id=ticket_id,
                    user_id=self.rng.randrange(users),
                    day=self.rng.randrange(days),
                    text=self.sentence(10),
                )
            )
            row["_table"] = "tickets"
            yield row
        for plan in plans:
            row = dataclasses.asdict(plan)
            row["_table"] = "plans"
            yield row
