"""Synthetic illicit-origin dataset simulators.

Every generator here produces *synthetic* stand-ins for the dataset
families the paper surveys — no real leaked data is included or
required — but with the statistical shape the surveyed analyses
depend on (Zipf passwords, heavy-tailed booter usage, preferential-
attachment forum graphs, legislation-responsive offshore series,
proxy-polluted scan results).
"""

from .booter import (
    ATTACK_METHODS,
    AttackRecord,
    BooterDatabase,
    BooterDatabaseGenerator,
    BooterUser,
    PaymentRecord,
    PricingPlan,
    TicketMessage,
)
from .classified import (
    Cable,
    ClassifiedCorpus,
    ClassifiedCorpusGenerator,
)
from .common import SeededGenerator, zipf_choice
from .financial import (
    LEGISLATION_YEARS,
    ListedFirm,
    OffshoreEntity,
    OffshoreLeak,
    OffshoreLeakGenerator,
    Officer,
    Intermediary,
)
from .forum import (
    ForumDatabase,
    ForumGenerator,
    ForumMember,
    ForumPost,
    ForumThread,
    PrivateMessage,
    TradeRecord,
)
from .pastefeed import (
    DumpTriage,
    Paste,
    PasteFeed,
    PasteFeedGenerator,
    TriageResult,
)
from .passwords import (
    PasswordDump,
    PasswordDumpGenerator,
    PasswordRecord,
)
from .projects import ResearchProjectGenerator, synthetic_project
from .scans import ScanDataset, ScanGenerator, ScanRecord, TelescopeEvent

__all__ = [
    "ATTACK_METHODS",
    "AttackRecord",
    "BooterDatabase",
    "BooterDatabaseGenerator",
    "BooterUser",
    "Cable",
    "ClassifiedCorpus",
    "ClassifiedCorpusGenerator",
    "DumpTriage",
    "ForumDatabase",
    "ForumGenerator",
    "ForumMember",
    "ForumPost",
    "ForumThread",
    "Intermediary",
    "LEGISLATION_YEARS",
    "ListedFirm",
    "Officer",
    "OffshoreEntity",
    "OffshoreLeak",
    "OffshoreLeakGenerator",
    "PasswordDump",
    "PasswordDumpGenerator",
    "PasswordRecord",
    "Paste",
    "PasteFeed",
    "PasteFeedGenerator",
    "PaymentRecord",
    "PricingPlan",
    "PrivateMessage",
    "ResearchProjectGenerator",
    "ScanDataset",
    "ScanGenerator",
    "ScanRecord",
    "SeededGenerator",
    "TelescopeEvent",
    "TicketMessage",
    "TradeRecord",
    "TriageResult",
    "synthetic_project",
    "zipf_choice",
]
