"""Synthetic password-dump generator (substitute for §4.2 datasets).

Generates dumps with the statistical shape the surveyed password
papers rely on — Zipf-like password popularity, human mangling
patterns, cross-site reuse — without containing a single real
credential. Supports plaintext, unsalted-hash and salted-hash dump
styles, matching the three forms real leaks take (RockYou was
plaintext; MySpace partial; others hashed).
"""

from __future__ import annotations

import dataclasses
import hashlib
from collections import Counter
from collections.abc import Iterator

from ..errors import DatasetError
from .common import SeededGenerator, chunked

__all__ = ["PasswordRecord", "PasswordDump", "PasswordDumpGenerator"]


@dataclasses.dataclass(frozen=True)
class PasswordRecord:
    """One account row in a dump."""

    user_id: int
    username: str
    email: str
    password: str  # plaintext (empty when dump is hash-only)
    password_hash: str  # hex digest ('' for plaintext dumps)
    salt: str  # '' when unsalted

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class PasswordDump:
    """A complete synthetic dump."""

    site: str
    style: str  # "plaintext" | "hashed" | "salted"
    records: tuple[PasswordRecord, ...]

    def __len__(self) -> int:
        return len(self.records)

    def passwords(self) -> tuple[str, ...]:
        """Plaintexts (only meaningful for plaintext dumps)."""
        return tuple(r.password for r in self.records if r.password)

    def frequency(self) -> Counter:
        """Password frequency distribution (the cracker's view)."""
        return Counter(self.passwords())

    def to_records(self) -> list[dict]:
        return [r.to_dict() for r in self.records]


class PasswordDumpGenerator(SeededGenerator):
    """Generate dumps, optionally with cross-site password reuse.

    ``generate_pair`` produces two dumps whose user populations
    overlap and where overlapping users reuse (or lightly mutate)
    their password with the rates Das et al. report (≈43% direct
    reuse among multi-site users, plus partial reuse).
    """

    STYLES = ("plaintext", "hashed", "salted")

    def generate(
        self,
        site: str = "examplesite",
        users: int = 1000,
        style: str = "plaintext",
    ) -> PasswordDump:
        """Generate one dump in the given style."""
        if style not in self.STYLES:
            raise DatasetError(
                f"unknown dump style {style!r}; one of {self.STYLES}"
            )
        if users <= 0:
            raise DatasetError("users must be positive")
        records = []
        for user_id in range(users):
            username = self.username()
            password = self.password()
            records.append(
                self._record(user_id, username, password, style)
            )
        return PasswordDump(
            site=site, style=style, records=tuple(records)
        )

    def iter_records(
        self,
        *,
        chunk_size: int = 1024,
        site: str = "examplesite",
        users: int = 1000,
        style: str = "plaintext",
    ) -> Iterator[list[dict]]:
        """Stream the dump as chunks of dicts tagged with ``_table``.

        RNG call order matches :meth:`generate`, so the same seed
        streams the same accounts the materialised dump would hold;
        flattened output is ``chunk_size`` invariant.
        """
        if style not in self.STYLES:
            raise DatasetError(
                f"unknown dump style {style!r}; one of {self.STYLES}"
            )
        if users <= 0:
            raise DatasetError("users must be positive")
        return chunked(self._iter_flat(users, style), chunk_size)

    def _iter_flat(self, users: int, style: str) -> Iterator[dict]:
        """Flat account stream mirroring :meth:`generate` RNG order."""
        for user_id in range(users):
            username = self.username()
            password = self.password()
            row = self._record(user_id, username, password, style).to_dict()
            row["_table"] = "accounts"
            yield row

    def _record(
        self, user_id: int, username: str, password: str, style: str
    ) -> PasswordRecord:
        salt = ""
        digest = ""
        plaintext = password
        if style in ("hashed", "salted"):
            if style == "salted":
                salt = f"{self.rng.getrandbits(32):08x}"
            digest = hashlib.sha1(
                (salt + password).encode("utf-8")
            ).hexdigest()
            plaintext = ""
        return PasswordRecord(
            user_id=user_id,
            username=username,
            # Embed the account id so emails are unique per account,
            # as in real dumps (emails are account keys).
            email=self.email(f"{username}.{user_id}"),
            password=plaintext,
            password_hash=digest,
            salt=salt,
        )

    def generate_pair(
        self,
        users: int = 1000,
        overlap: float = 0.3,
        direct_reuse: float = 0.43,
        partial_reuse: float = 0.19,
    ) -> tuple[PasswordDump, PasswordDump]:
        """Two dumps with overlapping users for reuse studies [24]."""
        if not 0.0 <= overlap <= 1.0:
            raise DatasetError("overlap must be in [0, 1]")
        if direct_reuse + partial_reuse > 1.0:
            raise DatasetError("reuse fractions must sum to at most 1")
        first = self.generate(site="site-a", users=users)
        shared = int(users * overlap)
        records_b = []
        for user_id in range(users):
            if user_id < shared:
                original = first.records[user_id]
                username = original.username
                roll = self.rng.random()
                if roll < direct_reuse:
                    password = original.password
                elif roll < direct_reuse + partial_reuse:
                    password = original.password + str(
                        self.rng.randrange(10)
                    )
                else:
                    password = self.password()
                email = original.email
            else:
                username = self.username()
                password = self.password()
                # A distinct namespace so non-shared users can never
                # collide with site-a accounts.
                email = self.email(f"{username}.b{user_id}")
            records_b.append(
                PasswordRecord(
                    user_id=user_id,
                    username=username,
                    email=email,
                    password=password,
                    password_hash="",
                    salt="",
                )
            )
        second = PasswordDump(
            site="site-b", style="plaintext", records=tuple(records_b)
        )
        return first, second
