"""Shared infrastructure for the synthetic dataset generators.

Every generator is seed-deterministic (same seed → byte-identical
dataset) and produces plain-dataclass records with ``to_records()``
views (lists of dicts) so the anonymization and analysis tooling can
consume them uniformly.

Nothing here is, or derives from, real leaked data: names, emails,
passwords and addresses are synthesised from small word lists, and IP
addresses are drawn from documentation/test ranges where realism
doesn't require otherwise.
"""

from __future__ import annotations

import random
from collections.abc import Iterator, Sequence

from ..errors import DatasetError

__all__ = [
    "SeededGenerator",
    "zipf_choice",
    "chunked",
    "FIRST_NAMES",
    "LAST_NAMES",
    "MAIL_DOMAINS",
    "WORDS",
]

FIRST_NAMES = (
    "alex", "sam", "jordan", "casey", "morgan", "riley", "taylor",
    "jamie", "avery", "quinn", "harper", "rowan", "sage", "ellis",
    "marion", "devon", "reese", "finley", "emerson", "kai",
)

LAST_NAMES = (
    "smith", "jones", "garcia", "miller", "davis", "lopez", "wilson",
    "anderson", "thomas", "moore", "martin", "lee", "perez", "white",
    "clark", "lewis", "walker", "hall", "young", "king",
)

MAIL_DOMAINS = (
    "example.com", "example.org", "example.net", "mail.example",
    "inbox.example", "post.example",
)

WORDS = (
    "dragon", "monkey", "shadow", "silver", "purple", "rocket",
    "winter", "summer", "soccer", "hockey", "flower", "cookie",
    "banana", "sunshine", "freedom", "diamond", "thunder", "ginger",
    "pepper", "marble", "falcon", "breeze", "copper", "ember",
    "willow", "hazel", "comet", "pixel", "raven", "storm",
)


def chunked(
    records: Iterator[dict], chunk_size: int
) -> Iterator[list[dict]]:
    """Batch a flat record stream into lists of *chunk_size*.

    Chunking only batches — flattening the output reproduces the
    input stream exactly regardless of ``chunk_size``, which is the
    invariance the safeguard pipeline's determinism guarantee rests
    on. The final chunk may be short.
    """
    if chunk_size <= 0:
        raise DatasetError("chunk_size must be positive")
    chunk: list[dict] = []
    for record in records:
        chunk.append(record)
        if len(chunk) >= chunk_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def zipf_choice(
    rng: random.Random, items: Sequence, exponent: float = 1.1
) -> object:
    """Draw from *items* with a Zipf(rank) distribution.

    Password and username frequencies in real dumps are famously
    Zipf-like; the exponent defaults near the values reported for
    RockYou-scale corpora.
    """
    if not items:
        raise DatasetError("cannot sample from an empty sequence")
    if exponent <= 0:
        raise DatasetError("zipf exponent must be positive")
    weights = [1.0 / (rank**exponent) for rank in range(1, len(items) + 1)]
    return rng.choices(items, weights=weights, k=1)[0]


class SeededGenerator:
    """Base class holding the seeded RNG and low-level synthesisers.

    Generators that support streaming override :meth:`iter_records`
    to yield the dataset as fixed-size chunks of plain-dict records
    without materialising the whole database first. The contract:

    * the flattened concatenation of chunks is independent of
      ``chunk_size`` (chunking only batches, never reorders);
    * a fresh generator with the same seed and parameters yields the
      same records that :meth:`generate` would produce (identical RNG
      call order), so streaming and materialised paths agree;
    * every yielded record is a plain dict carrying a ``"_table"``
      key naming its source table.
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self.rng = random.Random(seed)

    def iter_records(
        self, *, chunk_size: int = 1024, **params: object
    ) -> Iterator[list[dict]]:
        """Stream the dataset as chunks of record dicts.

        The base class has no streaming mode; subclasses with one
        (booter and password dumps) override this.
        """
        raise DatasetError(
            f"{type(self).__name__} does not support streaming "
            "generation"
        )

    # -- identity synthesis ------------------------------------------
    def username(self) -> str:
        """A synthetic account handle in a common style."""
        style = self.rng.randrange(3)
        first = self.rng.choice(FIRST_NAMES)
        if style == 0:
            return f"{first}{self.rng.randrange(10, 99)}"
        if style == 1:
            return f"{self.rng.choice(WORDS)}_{first}"
        return f"{first}.{self.rng.choice(LAST_NAMES)}"

    def full_name(self) -> str:
        """A synthetic human full name."""
        return (
            f"{self.rng.choice(FIRST_NAMES).title()} "
            f"{self.rng.choice(LAST_NAMES).title()}"
        )

    def email(self, username: str | None = None) -> str:
        local = username or self.username()
        return f"{local}@{self.rng.choice(MAIL_DOMAINS)}"

    def ipv4(self, *, public_looking: bool = True) -> str:
        """A synthetic IPv4 address.

        Draws from broad ranges while avoiding the most special-cased
        prefixes; these addresses never need to correspond to real
        hosts.
        """
        if public_looking:
            first = self.rng.choice(
                [n for n in range(1, 224) if n not in (10, 127, 172, 192)]
            )
        else:
            first = 10
        return ".".join(
            str(octet)
            for octet in (
                first,
                self.rng.randrange(256),
                self.rng.randrange(256),
                self.rng.randrange(1, 255),
            )
        )

    def password(self) -> str:
        """A human-style password: word (+ mangling) per the PCFG
        observations of Weir et al."""
        base = str(zipf_choice(self.rng, WORDS))
        roll = self.rng.random()
        if roll < 0.35:
            return base
        if roll < 0.65:
            return f"{base}{self.rng.randrange(0, 100)}"
        if roll < 0.8:
            return f"{base.capitalize()}{self.rng.randrange(1, 10)}!"
        if roll < 0.9:
            leet = (
                base.replace("a", "4").replace("e", "3").replace("o", "0")
            )
            return leet
        return f"{base}{self.rng.choice(WORDS)}"

    def sentence(self, words: int = 8) -> str:
        """A synthetic filler sentence of about *words* words."""
        chosen = [
            self.rng.choice(WORDS) for _ in range(max(1, words))
        ]
        text = " ".join(chosen)
        return text.capitalize() + "."
