"""Synthetic underground-forum database (§4.3.3 substitute).

Models what the leaked forum dumps the paper discusses contain:
members with personal data, boards spanning both criminal and benign
topics, threads and posts, private messages, and marketplace trades.
The interaction structure (who replies to whom, who messages whom) is
generated with preferential attachment so the social-network analyses
of Yip et al. and Motoyama et al. have realistic skew to work on.
"""

from __future__ import annotations

import dataclasses
import itertools

from ..errors import DatasetError
from .common import SeededGenerator

__all__ = [
    "ForumMember",
    "ForumThread",
    "ForumPost",
    "PrivateMessage",
    "TradeRecord",
    "ForumDatabase",
    "ForumGenerator",
]

BOARDS = (
    ("hacking-tools", True),
    ("carding", True),
    ("accounts-market", True),
    ("spam-services", True),
    ("video-games", False),
    ("politics", False),
    ("introductions", False),
)

PRODUCTS = (
    "credit-card-data",
    "bank-logins",
    "exploit-kit",
    "botnet-rental",
    "gift-cards",
    "accounts",
    "tutorials",
)


@dataclasses.dataclass(frozen=True)
class ForumMember:
    member_id: int
    username: str
    email: str
    join_day: int
    reputation: int

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class ForumThread:
    thread_id: int
    board: str
    illicit: bool
    author_id: int
    title: str
    day: int


@dataclasses.dataclass(frozen=True)
class ForumPost:
    post_id: int
    thread_id: int
    author_id: int
    day: int
    text: str
    reply_to_member: int | None


@dataclasses.dataclass(frozen=True)
class PrivateMessage:
    message_id: int
    sender_id: int
    recipient_id: int
    day: int
    text: str


@dataclasses.dataclass(frozen=True)
class TradeRecord:
    trade_id: int
    seller_id: int
    buyer_id: int
    product: str
    price_usd: float
    day: int


@dataclasses.dataclass(frozen=True)
class ForumDatabase:
    """A complete synthetic forum dump."""

    name: str
    members: tuple[ForumMember, ...]
    threads: tuple[ForumThread, ...]
    posts: tuple[ForumPost, ...]
    messages: tuple[PrivateMessage, ...]
    trades: tuple[TradeRecord, ...]

    def interaction_edges(self) -> list[tuple[int, int]]:
        """(source, target) member interactions for network analysis:
        post replies and private messages."""
        edges: list[tuple[int, int]] = []
        for post in self.posts:
            if (
                post.reply_to_member is not None
                and post.reply_to_member != post.author_id
            ):
                edges.append((post.author_id, post.reply_to_member))
        for message in self.messages:
            if message.sender_id != message.recipient_id:
                edges.append(
                    (message.sender_id, message.recipient_id)
                )
        return edges

    def illicit_share(self) -> float:
        """Fraction of threads on illicit boards; real forums mix
        criminal and benign topics (§4.3.3)."""
        if not self.threads:
            return 0.0
        illicit = sum(1 for t in self.threads if t.illicit)
        return illicit / len(self.threads)

    def trades_by_product(self) -> dict[str, int]:
        """Trade counts per product category."""
        counts: dict[str, int] = {}
        for trade in self.trades:
            counts[trade.product] = counts.get(trade.product, 0) + 1
        return counts


class ForumGenerator(SeededGenerator):
    """Generate a forum dump with preferential-attachment structure."""

    def generate(
        self,
        name: str = "exampleforum",
        members: int = 200,
        threads: int = 150,
        days: int = 365,
    ) -> ForumDatabase:
        """Generate a complete synthetic forum dump."""
        if members < 2 or threads < 1 or days < 1:
            raise DatasetError(
                "need at least 2 members, 1 thread and 1 day"
            )
        member_rows = tuple(
            ForumMember(
                member_id=i,
                username=self.username(),
                email=self.email(),
                join_day=self.rng.randrange(days),
                reputation=self.rng.randrange(0, 500),
            )
            for i in range(members)
        )
        # Activity weights: preferential attachment by reputation.
        weights = [1 + m.reputation for m in member_rows]

        def pick_member() -> int:
            return self.rng.choices(
                range(members), weights=weights, k=1
            )[0]

        thread_rows = []
        post_rows = []
        post_id_counter = itertools.count()
        for thread_id in range(threads):
            board, illicit = self.rng.choice(BOARDS)
            author = pick_member()
            day = self.rng.randrange(days)
            thread_rows.append(
                ForumThread(
                    thread_id=thread_id,
                    board=board,
                    illicit=illicit,
                    author_id=author,
                    title=self.sentence(5).rstrip("."),
                    day=day,
                )
            )
            participants = [author]
            for _ in range(self.rng.randrange(1, 12)):
                poster = pick_member()
                reply_to = (
                    self.rng.choice(participants)
                    if participants
                    else None
                )
                post_rows.append(
                    ForumPost(
                        post_id=next(post_id_counter),
                        thread_id=thread_id,
                        author_id=poster,
                        day=min(days - 1, day + self.rng.randrange(7)),
                        text=self.sentence(12),
                        reply_to_member=reply_to,
                    )
                )
                participants.append(poster)
        message_rows = tuple(
            PrivateMessage(
                message_id=i,
                sender_id=pick_member(),
                recipient_id=pick_member(),
                day=self.rng.randrange(days),
                text=self.sentence(9),
            )
            for i in range(members * 2)
        )
        trade_rows = tuple(
            TradeRecord(
                trade_id=i,
                seller_id=pick_member(),
                buyer_id=pick_member(),
                product=self.rng.choice(PRODUCTS),
                price_usd=round(self.rng.uniform(5, 500), 2),
                day=self.rng.randrange(days),
            )
            for i in range(threads // 2)
        )
        return ForumDatabase(
            name=name,
            members=member_rows,
            threads=tuple(thread_rows),
            posts=tuple(post_rows),
            messages=message_rows,
            trades=trade_rows,
        )
