"""Paste-site feed simulator and dump triage.

"These dumps and many others can be found online by using common
search engines" (§4.2): in practice researchers *discover* candidate
leak material in noisy public feeds. This module simulates such a
feed — a stream of pastes, a minority of which contain breach-shaped
data — and provides :class:`DumpTriage`, a detector built on the
anonymization scrubber that flags candidate dumps *without retaining
the identifiers it sees*, returning only counts. Ground-truth labels
make detector quality (precision/recall) measurable.
"""

from __future__ import annotations

import dataclasses

from ..anonymization import TextScrubber
from ..errors import DatasetError
from .common import SeededGenerator

__all__ = ["Paste", "PasteFeed", "PasteFeedGenerator", "DumpTriage",
           "TriageResult"]


@dataclasses.dataclass(frozen=True)
class Paste:
    """One paste: text plus ground-truth label."""

    paste_id: int
    title: str
    text: str
    is_dump: bool  # ground truth, unknown to the detector


@dataclasses.dataclass(frozen=True)
class PasteFeed:
    """A batch of pastes with known dump fraction."""

    pastes: tuple[Paste, ...]

    def __len__(self) -> int:
        return len(self.pastes)

    def dump_fraction(self) -> float:
        """Ground-truth fraction of dump pastes in the feed."""
        if not self.pastes:
            return 0.0
        return sum(1 for p in self.pastes if p.is_dump) / len(
            self.pastes
        )


class PasteFeedGenerator(SeededGenerator):
    """Generate a paste feed with breach-shaped needles in benign
    hay."""

    def generate(
        self, pastes: int = 200, dump_fraction: float = 0.15
    ) -> PasteFeed:
        """Generate a feed with the requested dump fraction."""
        if pastes <= 0:
            raise DatasetError("pastes must be positive")
        if not 0.0 <= dump_fraction <= 1.0:
            raise DatasetError("dump_fraction must be in [0, 1]")
        rows = []
        dump_count = round(pastes * dump_fraction)
        for paste_id in range(pastes):
            if paste_id < dump_count:
                rows.append(self._dump_paste(paste_id))
            else:
                rows.append(self._benign_paste(paste_id))
        # Shuffle deterministically so dumps aren't front-loaded.
        order = list(range(pastes))
        self.rng.shuffle(order)
        shuffled = tuple(rows[i] for i in order)
        return PasteFeed(pastes=shuffled)

    def _dump_paste(self, paste_id: int) -> Paste:
        lines = []
        for _ in range(self.rng.randrange(8, 25)):
            username = self.username()
            lines.append(
                f"{self.email(username)}:{self.password()}"
            )
        return Paste(
            paste_id=paste_id,
            title=f"{self.rng.choice(('db', 'combo', 'leak'))}-"
            f"{paste_id}",
            text="\n".join(lines),
            is_dump=True,
        )

    def _benign_paste(self, paste_id: int) -> Paste:
        kind = self.rng.randrange(4)
        if kind == 0:
            text = "\n".join(
                self.sentence(10) for _ in range(6)
            )
        elif kind == 1:
            # Code-like paste.
            text = "\n".join(
                f"def f{i}(x):\n    return x * {i}"
                for i in range(4)
            )
        elif kind == 2:
            # Log-like paste with a few IPs (but no credentials).
            text = "\n".join(
                f"connect from {self.ipv4()} ok"
                for _ in range(5)
            )
        else:
            # Mailing-list archive: emails present but below dump
            # density — the hard negative for the detector.
            lines = []
            for _ in range(10):
                if self.rng.random() < 0.3:
                    lines.append(
                        f"From: {self.email()} wrote:"
                    )
                else:
                    lines.append("> " + self.sentence(8))
            text = "\n".join(lines)
        return Paste(
            paste_id=paste_id,
            title=f"paste-{paste_id}",
            text=text,
            is_dump=False,
        )


@dataclasses.dataclass(frozen=True)
class TriageResult:
    """Detector quality against ground truth."""

    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


class DumpTriage:
    """Flag candidate credential dumps by identifier density.

    A paste is flagged when its email-per-line density exceeds the
    threshold — credential dumps are line-oriented ``email:password``
    material, benign pastes are not. The detector retains only
    counts, never the identifiers themselves (data minimisation at
    the discovery stage).
    """

    def __init__(self, *, email_density_threshold: float = 0.7) -> None:
        if not 0.0 < email_density_threshold <= 1.0:
            raise DatasetError(
                "email_density_threshold must be in (0, 1]"
            )
        self._threshold = email_density_threshold
        self._scrubber = TextScrubber(kinds=("email",))

    def looks_like_dump(self, paste: Paste) -> bool:
        """Whether one paste matches the credential-dump shape."""
        lines = [
            line for line in paste.text.splitlines() if line.strip()
        ]
        if not lines:
            return False
        emails = self._scrubber.scrub(paste.text).count("email")
        return emails / len(lines) >= self._threshold

    def evaluate(self, feed: PasteFeed) -> TriageResult:
        """Score the detector against the feed's ground truth."""
        tp = fp = fn = tn = 0
        for paste in feed.pastes:
            flagged = self.looks_like_dump(paste)
            if flagged and paste.is_dump:
                tp += 1
            elif flagged:
                fp += 1
            elif paste.is_dump:
                fn += 1
            else:
                tn += 1
        return TriageResult(
            true_positives=tp,
            false_positives=fp,
            false_negatives=fn,
            true_negatives=tn,
        )
