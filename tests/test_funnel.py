"""Unit tests for the booter offender-funnel analysis."""

from __future__ import annotations

import dataclasses

import pytest

from repro.datasets import BooterDatabaseGenerator
from repro.errors import MetricError
from repro.metrics import analyze_funnel


@pytest.fixture(scope="module")
def database():
    return BooterDatabaseGenerator(2).generate(users=300, days=90)


@pytest.fixture(scope="module")
def funnel(database):
    return analyze_funnel(database)


class TestFunnelShape:
    def test_three_stages_in_order(self, funnel):
        assert [stage.name for stage in funnel.stages] == [
            "registered",
            "paid",
            "attacked",
        ]

    def test_monotone_narrowing(self, funnel):
        counts = [stage.count for stage in funnel.stages]
        assert counts == sorted(counts, reverse=True)

    def test_registration_is_full(self, funnel):
        assert funnel.stage("registered").conversion_from_previous == 1.0

    def test_not_everyone_pays(self, funnel):
        # The generator models free registrations, as real dumps show.
        paid = funnel.stage("paid")
        assert 0.3 < paid.conversion_from_previous < 0.95

    def test_attackers_are_payers(self, funnel, database):
        attackers = {a.user_id for a in database.attacks}
        payers = {p.user_id for p in database.payments}
        assert attackers <= payers

    def test_unknown_stage(self, funnel):
        with pytest.raises(MetricError):
            funnel.stage("lurked")


class TestConcentration:
    def test_heavy_users_dominate_attacks(self, funnel):
        # Heavy-tail usage: top 10% of attackers launch far more
        # than 10% of attacks.
        assert funnel.attacks_top10_share > 0.25

    def test_revenue_concentration_bounds(self, funnel):
        assert 0.0 < funnel.revenue_top10_share <= 1.0

    def test_mean_attacks_positive(self, funnel):
        assert funnel.mean_attacks_per_attacker > 1.0

    def test_describe(self, funnel):
        text = funnel.describe()
        assert "registered" in text
        assert "%" in text


class TestEdgeCases:
    def test_empty_database_rejected(self, database):
        empty = dataclasses.replace(
            database, users=(), attacks=(), payments=()
        )
        with pytest.raises(MetricError):
            analyze_funnel(empty)

    def test_no_attacks_database(self, database):
        quiet = dataclasses.replace(database, attacks=())
        funnel = analyze_funnel(quiet)
        assert funnel.stage("attacked").count == 0
        assert funnel.mean_attacks_per_attacker == 0.0
        assert funnel.attacks_top10_share == 0.0
