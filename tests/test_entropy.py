"""Unit and property tests for the password-distribution metrics."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MetricError
from repro.metrics import (
    alpha_guesswork_bits,
    distribution,
    guesses_for_success,
    min_entropy,
    partial_guesswork,
    shannon_entropy,
    success_rate,
)


def uniform(n: int) -> list[float]:
    return [1.0 / n] * n


class TestDistribution:
    def test_sorted_descending(self):
        probs = distribution(["a", "a", "b", "c"])
        assert probs == [0.5, 0.25, 0.25]

    def test_empty_rejected(self):
        with pytest.raises(MetricError):
            distribution([])


class TestEntropies:
    def test_uniform_shannon(self):
        assert shannon_entropy(uniform(8)) == pytest.approx(3.0)

    def test_uniform_min_entropy(self):
        assert min_entropy(uniform(8)) == pytest.approx(3.0)

    def test_skew_drops_min_entropy_first(self):
        skewed = [0.5, 0.25, 0.125, 0.125]
        assert min_entropy(skewed) < shannon_entropy(skewed)

    def test_validation(self):
        with pytest.raises(MetricError):
            shannon_entropy([])
        with pytest.raises(MetricError):
            shannon_entropy([0.4, 0.4])  # doesn't sum to 1
        with pytest.raises(MetricError):
            min_entropy([1.5, -0.5])


class TestGuessingMetrics:
    SKEWED = [0.5, 0.2, 0.1, 0.1, 0.05, 0.05]

    def test_success_rate(self):
        assert success_rate(self.SKEWED, 1) == pytest.approx(0.5)
        assert success_rate(self.SKEWED, 2) == pytest.approx(0.7)

    def test_success_rate_validation(self):
        with pytest.raises(MetricError):
            success_rate(self.SKEWED, 0)

    def test_guesses_for_success(self):
        assert guesses_for_success(self.SKEWED, 0.5) == 1
        assert guesses_for_success(self.SKEWED, 0.7) == 2
        assert guesses_for_success(self.SKEWED, 1.0) == 6

    def test_alpha_validation(self):
        with pytest.raises(MetricError):
            guesses_for_success(self.SKEWED, 0.0)
        with pytest.raises(MetricError):
            guesses_for_success(self.SKEWED, 1.5)

    def test_partial_guesswork_uniform(self):
        # For a uniform distribution attacked to exhaustion, G_1 is
        # the classic (N+1)/2.
        n = 16
        g = partial_guesswork(uniform(n), 1.0)
        assert g == pytest.approx((n + 1) / 2)

    def test_alpha_guesswork_uniform_equals_keylength(self):
        # Bonneau's normalisation: uniform over 2^k keys gives k bits
        # at any alpha.
        for alpha in (0.1, 0.25, 0.5, 1.0):
            bits = alpha_guesswork_bits(uniform(16), alpha)
            assert bits == pytest.approx(4.0, abs=0.15)

    def test_skewed_below_shannon(self):
        # The headline result: effective key length at small alpha is
        # far below Shannon entropy for skewed distributions.
        probs = distribution(
            ["123456"] * 40 + ["password"] * 20 + [
                f"pw{i}" for i in range(40)
            ]
        )
        assert alpha_guesswork_bits(probs, 0.25) < shannon_entropy(
            probs
        )

    @settings(max_examples=40, deadline=None)
    @given(
        counts=st.lists(
            st.integers(1, 50), min_size=2, max_size=30
        ),
        alpha=st.sampled_from([0.1, 0.25, 0.5, 0.9]),
    )
    def test_guesswork_properties(self, counts, alpha):
        total = sum(counts)
        probs = sorted(
            (c / total for c in counts), reverse=True
        )
        mu = guesses_for_success(probs, alpha)
        assert 1 <= mu <= len(probs)
        g = partial_guesswork(probs, alpha)
        assert 0 < g <= len(probs)
        # Monotone in alpha: more coverage needs at least as many
        # guesses.
        assert guesses_for_success(probs, min(1.0, alpha)) <= (
            guesses_for_success(probs, 1.0)
        )

    @settings(max_examples=40, deadline=None)
    @given(
        counts=st.lists(st.integers(1, 50), min_size=2, max_size=30)
    )
    def test_min_entropy_never_exceeds_shannon(self, counts):
        total = sum(counts)
        probs = [c / total for c in counts]
        assert min_entropy(probs) <= shannon_entropy(probs) + 1e-9
