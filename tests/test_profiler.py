"""Unit tests for the sampling profiler and collapsed-stack views."""

from __future__ import annotations

import threading

import pytest

from repro.observability import (
    MetricsRegistry,
    Observer,
    SamplingProfiler,
    Tracer,
    observed,
    top_collapsed,
    tracer,
)


def _busy_work(rounds: int = 15) -> int:
    total = 0
    for _ in range(rounds):
        for value in range(120_000):
            total += value * value % 97
    return total


def _live_observer() -> Observer:
    registry = MetricsRegistry()
    return Observer(metrics=registry, tracer=Tracer(registry))


class TestSamplingProfiler:
    def test_samples_attributed_to_active_span(self):
        with observed(_live_observer()):
            profiler = SamplingProfiler(interval=0.001)
            with profiler:
                with tracer().span("workload.busy"):
                    _busy_work()
        assert profiler.sample_count > 0
        summary = profiler.summary()
        # The busy loop dominates: most samples land in the span.
        assert (
            summary["spans"].get("workload.busy", 0)
            > profiler.sample_count // 2
        )
        assert any(
            "_busy_work" in frame for frame in summary["functions"]
        )

    def test_disabled_observer_means_no_thread_no_samples(self):
        before = threading.active_count()
        profiler = SamplingProfiler(interval=0.001)
        with profiler:
            assert not profiler.running
            assert threading.active_count() == before
            _busy_work(2)
        assert profiler.sample_count == 0
        assert profiler.collapsed() == ""

    def test_thread_stops_on_exit(self):
        with observed(_live_observer()):
            profiler = SamplingProfiler(interval=0.001)
            with profiler:
                assert profiler.running
                _busy_work(2)
            assert not profiler.running
        assert all(
            thread.name != "repro-profiler"
            for thread in threading.enumerate()
        )

    def test_collapsed_format(self):
        with observed(_live_observer()):
            profiler = SamplingProfiler(interval=0.001)
            with profiler:
                with tracer().span("fmt.check"):
                    _busy_work()
        text = profiler.collapsed()
        assert text.endswith("\n")
        for line in text.splitlines():
            stack, _, count = line.rpartition(" ")
            assert count.isdigit() and int(count) > 0
            assert stack  # span root plus at least zero frames
        assert sorted(text.splitlines()) == text.splitlines()

    def test_call_counts_hybrid(self):
        with observed(_live_observer()):
            profiler = SamplingProfiler(
                interval=0.01, call_counts=True
            )
            with profiler:
                _busy_work(1)
        calls = profiler.summary()["calls"]
        assert any("_busy_work" in name for name in calls)

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0.0)


class TestTopCollapsed:
    def test_hottest_leaves_ranked(self):
        text = (
            "span;outer;hot 30\n"
            "span;outer;warm 10\n"
            "other;hot 5\n"
        )
        rows = top_collapsed(text, 2)
        assert rows == [("hot", 35), ("warm", 10)]

    def test_empty_and_garbage_tolerated(self):
        assert top_collapsed("") == []
        assert top_collapsed("\n\nnot a sample line\n") == []
