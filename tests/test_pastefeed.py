"""Unit tests for the paste-feed simulator and dump triage."""

from __future__ import annotations

import pytest

from repro.datasets import (
    DumpTriage,
    Paste,
    PasteFeed,
    PasteFeedGenerator,
)
from repro.errors import DatasetError


@pytest.fixture(scope="module")
def feed():
    return PasteFeedGenerator(9).generate(
        pastes=400, dump_fraction=0.2
    )


class TestGenerator:
    def test_dump_fraction_respected(self, feed):
        assert feed.dump_fraction() == pytest.approx(0.2, abs=0.01)

    def test_deterministic(self):
        a = PasteFeedGenerator(3).generate(pastes=50)
        b = PasteFeedGenerator(3).generate(pastes=50)
        assert a == b

    def test_dumps_look_like_combo_lists(self, feed):
        dump = next(p for p in feed.pastes if p.is_dump)
        lines = dump.text.splitlines()
        assert all("@" in line and ":" in line for line in lines)

    def test_benign_variety(self, feed):
        benign = [p for p in feed.pastes if not p.is_dump]
        with_emails = sum(1 for p in benign if "@" in p.text)
        without = len(benign) - with_emails
        # Hard negatives (mailing lists) and clean pastes both occur.
        assert with_emails > 0
        assert without > 0

    def test_validation(self):
        with pytest.raises(DatasetError):
            PasteFeedGenerator(1).generate(pastes=0)
        with pytest.raises(DatasetError):
            PasteFeedGenerator(1).generate(dump_fraction=1.5)

    def test_shuffled_not_front_loaded(self, feed):
        first_quarter = feed.pastes[: len(feed.pastes) // 4]
        dumps_in_front = sum(1 for p in first_quarter if p.is_dump)
        assert dumps_in_front < len(first_quarter)


class TestTriage:
    def test_threshold_validation(self):
        with pytest.raises(DatasetError):
            DumpTriage(email_density_threshold=0.0)
        with pytest.raises(DatasetError):
            DumpTriage(email_density_threshold=1.5)

    def test_high_quality_detection(self, feed):
        result = DumpTriage().evaluate(feed)
        assert result.precision > 0.9
        assert result.recall > 0.9
        assert result.f1 > 0.9

    def test_counts_partition_feed(self, feed):
        result = DumpTriage().evaluate(feed)
        total = (
            result.true_positives
            + result.false_positives
            + result.false_negatives
            + result.true_negatives
        )
        assert total == len(feed)

    def test_mailing_list_not_flagged(self):
        triage = DumpTriage()
        mailing_list = Paste(
            paste_id=0,
            title="archive",
            text="From: a@b.example wrote:\n> hello there\n"
            "> more text\n> and more\n",
            is_dump=False,
        )
        assert not triage.looks_like_dump(mailing_list)

    def test_combo_list_flagged(self):
        triage = DumpTriage()
        combo = Paste(
            paste_id=0,
            title="combo",
            text="a@b.example:hunter2\nc@d.example:dragon\n",
            is_dump=True,
        )
        assert triage.looks_like_dump(combo)

    def test_empty_paste_not_flagged(self):
        assert not DumpTriage().looks_like_dump(
            Paste(paste_id=0, title="empty", text="", is_dump=False)
        )

    def test_loose_threshold_trades_precision_for_recall(self, feed):
        strict = DumpTriage(email_density_threshold=0.9).evaluate(
            feed
        )
        loose = DumpTriage(email_density_threshold=0.2).evaluate(
            feed
        )
        assert loose.recall >= strict.recall
        assert loose.false_positives >= strict.false_positives

    def test_metrics_zero_safe(self):
        from repro.datasets import TriageResult

        empty = TriageResult(0, 0, 0, 0)
        assert empty.precision == 0.0
        assert empty.recall == 0.0
        assert empty.f1 == 0.0
