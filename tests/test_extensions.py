"""Unit tests for the corpus extension API."""

from __future__ import annotations

import pytest

from repro.analysis import section5_statistics, verify_section5
from repro.codebook import CellValue
from repro.corpus import (
    Category,
    CorpusBuilder,
    DataOrigin,
    EXTENSION_ENTRIES,
    extended_corpus,
    table1_corpus,
)
from repro.errors import CorpusError
from repro.tables import render_table1


def _builder() -> CorpusBuilder:
    return CorpusBuilder(
        id="new-study",
        category=Category.LEAKED_DATABASES,
        source_label="New leak",
        reference=90,
        year=2017,
    )


class TestCorpusBuilder:
    def test_sparse_build_defaults_negative(self):
        entry = _builder().build()
        assert entry.values["justice"] is CellValue.NOT_DISCUSSED
        assert (
            entry.values["computer-misuse"]
            is CellValue.NOT_APPLICABLE
        )
        assert entry.reb_status is CellValue.NOT_MENTIONED

    def test_legal_marks_applicable(self):
        entry = _builder().legal("computer-misuse").build()
        assert entry.legal_issues == ("computer-misuse",)

    def test_legal_rejects_non_legal_dimension(self):
        with pytest.raises(CorpusError):
            _builder().legal("justice")

    def test_ethical_flags(self):
        entry = _builder().ethical(
            identify_harms=True, justice=False
        ).build()
        assert entry.discussed("identify-harms")
        assert not entry.discussed("justice")

    def test_ethical_unknown_flag(self):
        with pytest.raises(CorpusError):
            _builder().ethical(vibes=True)

    def test_justification_declined(self):
        entry = (
            _builder()
            .justifications(
                public_data=True, declined="no_additional_harm"
            )
            .build()
        )
        assert (
            entry.values["no-additional-harm"] is CellValue.DECLINED
        )

    def test_justification_unknown(self):
        with pytest.raises(CorpusError):
            _builder().justifications(sounds_fine=True)

    def test_reb_statuses(self):
        entry = _builder().reb("exempt", reason="no PII").build()
        assert entry.reb_status is CellValue.EXEMPT
        assert entry.exemption_reason == "no PII"

    def test_reb_unknown_status(self):
        with pytest.raises(CorpusError):
            _builder().reb("waved-through")

    def test_codes_validated_on_build(self):
        builder = _builder().codes(safeguards=("ZZ",))
        with pytest.raises(Exception):
            builder.build()

    def test_extension_provenance_marked(self):
        entry = _builder().build()
        assert "extension" in entry.provenance


class TestExtendedCorpus:
    def test_extension_entries_valid(self):
        assert len(EXTENSION_ENTRIES) == 2
        corpus = extended_corpus()
        assert len(corpus) == 32
        assert "ashley-madison-discussion" in corpus
        assert "mirai-source-studies" in corpus

    def test_categories_stay_contiguous(self):
        corpus = extended_corpus()
        seen = [e.category for e in corpus]
        runs = [
            c for i, c in enumerate(seen)
            if i == 0 or seen[i - 1] != c
        ]
        assert len(runs) == len(set(runs))

    def test_extended_corpus_renders(self):
        text = render_table1(extended_corpus(), "csv")
        assert "ashley-madison-discussion" in text

    def test_extended_corpus_analyzable(self):
        stats = section5_statistics(extended_corpus())
        assert stats.total_entries == 32
        # Ashley Madison is coded as not-used → one more N/A row.
        assert stats.reb_not_applicable == 3

    def test_table1_reproduction_unaffected(self):
        # E1–E8 always run on the pristine corpus: extensions must
        # not leak into it.
        pristine = table1_corpus()
        assert len(pristine) == 30
        assert all(check.ok for check in verify_section5(pristine))

    def test_ashley_madison_shape(self):
        entry = extended_corpus()["ashley-madison-discussion"]
        assert not entry.used_data
        assert entry.has_code("harms", "DA")
        assert entry.origin == DataOrigin.UNAUTHORIZED_LEAK
