"""Validation: the assessment engine agrees with the paper's §4
qualitative judgements.

The paper passes explicit judgement on several case studies; if our
engines encode §2/§3 faithfully, feeding them the §4 facts must
reproduce those judgements:

* AT&T/Goatse (§4.1.2): "clearly both unethical and illegal" —
  the engine must say do-not-proceed.
* Patreon (§4.3.2): declining the dump was right — necessity fails
  because scraping sufficed, and the engine must find no acceptable
  justification for using the dump.
* Thomas et al. [110] (§4.3.1): careful, safeguarded, justified —
  the engine must let it proceed (with REB review).
* Password-dump research (§4.2): defensible under the
  no-additional-harm + fight-malicious-use pattern when handled
  securely.
* The Carna botnet (§4.1.1): creating the botnet was computer
  misuse; research that merely uses the data is lower risk.
"""

from __future__ import annotations

import pytest

from repro.assessment import (
    PlannedSafeguards,
    ResearchProject,
    Verdict,
    assess_project,
)
from repro.corpus import DataOrigin
from repro.ethics import (
    BenefitInstance,
    HarmInstance,
    JustificationFacts,
    evaluate_justification,
)
from repro.legal import DataProfile, JurisdictionSet, RiskLevel, analyze_legal


class TestATandT:
    def test_engine_condemns_the_collection(self):
        project = ResearchProject(
            title="Harvesting iPad owner emails via the AT&T endpoint",
            research_question=(
                "Can ICC-IDs be enumerated to recover email addresses?"
            ),
            data_description=(
                "114,000 email addresses obtained by exploiting an "
                "AT&T web service."
            ),
            profile=DataProfile(
                origin=DataOrigin.VULNERABILITY_EXPLOITATION,
                contains_email_addresses=True,
                collected_by_researcher_intrusion=True,
            ),
            harms=(
                HarmInstance(
                    description="exposure of 114,000 users' emails",
                    kind="SI",
                    stakeholder_id="data-subjects",
                    likelihood="certain",
                    severity="moderate",
                ),
            ),
            benefits=(),
            justification_facts=JustificationFacts(
                adversaries_use_data=False
            ),
            jurisdictions=JurisdictionSet.from_codes(["US"]),
        )
        assessment = assess_project(project)
        assert assessment.verdict == Verdict.DO_NOT_PROCEED
        assert assessment.legal.overall_risk == RiskLevel.SEVERE

    def test_far_more_data_than_needed_is_the_tell(self):
        # Collecting one record proves a vulnerability; collecting
        # 114,000 is harvesting. The beneficence finding flags the
        # unmitigated, benefit-free register.
        from repro.ethics import (
            FindingStatus,
            MenloEvaluation,
            default_stakeholders,
        )

        evaluation = MenloEvaluation(
            default_stakeholders(),
            [
                HarmInstance(
                    description="mass harvesting",
                    kind="SI",
                    stakeholder_id="data-subjects",
                    likelihood="certain",
                    severity="moderate",
                )
            ],
            [],
            lawful=False,
            public_interest=False,
        )
        assert evaluation.overall_status() in (
            FindingStatus.NEEDS_SAFEGUARDS,
            FindingStatus.VIOLATED,
        )


class TestPatreon:
    def test_necessity_fails_when_scraping_suffices(self):
        verdict = evaluate_justification(
            "necessary-data",
            JustificationFacts(no_alternative_source=False),
        )
        assert not verdict.acceptable

    def test_no_justification_survives(self):
        # Poor & Davidson's facts: data public, but scraping
        # suffices, private/public cannot be separated (so persons
        # might be identified), handling not established.
        facts = JustificationFacts(
            data_public=True,
            no_persons_identified=False,
            secure_handling=False,
            no_alternative_source=False,
            adversaries_use_data=False,
        )
        from repro.ethics import evaluate_all_justifications

        verdicts = evaluate_all_justifications(facts)
        assert not any(v.acceptable for v in verdicts)


class TestThomasBooterStudy:
    def _project(self) -> ResearchProject:
        return ResearchProject(
            title="1000 days of UDP amplification DDoS attacks",
            research_question=(
                "What fraction of booter attacks do honeypots see?"
            ),
            data_description=(
                "Leaked booter databases used as ground truth for "
                "honeypot coverage."
            ),
            profile=DataProfile(
                origin=DataOrigin.UNAUTHORIZED_LEAK,
                contains_email_addresses=True,
                contains_ip_addresses=True,
                publicly_available=True,
                plans_controlled_sharing=True,
            ),
            harms=(
                HarmInstance(
                    description="re-exposure of booter users",
                    kind="SI",
                    stakeholder_id="data-subjects",
                    likelihood="possible",
                    severity="moderate",
                ),
            ),
            benefits=(
                BenefitInstance(
                    description="only available ground truth",
                    kind="U",
                    beneficiary="society",
                    magnitude=0.8,
                ),
                BenefitInstance(
                    description="better DDoS defences",
                    kind="DM",
                    beneficiary="society",
                    magnitude=0.6,
                ),
            ),
            justification_facts=JustificationFacts(
                data_public=True,
                no_alternative_source=True,
                public_interest_case=True,
                secure_handling=True,
            ),
            safeguards=PlannedSafeguards(
                secure_storage=True,
                privacy_preserved=True,
                controlled_sharing=True,
            ),
            jurisdictions=JurisdictionSet.from_codes(["UK"]),
            reb_approved=True,
            has_ethics_section=True,
        )

    def test_proceeds_with_safeguards(self):
        assessment = assess_project(self._project())
        assert assessment.verdict in (
            Verdict.PROCEED,
            Verdict.PROCEED_WITH_SAFEGUARDS,
        )

    def test_necessity_justification_is_strong(self):
        assessment = assess_project(self._project())
        strong = [
            j
            for j in assessment.acceptable_justifications
            if j.weight == "strong"
        ]
        assert any(
            j.justification_id == "necessary-data" for j in strong
        )

    def test_without_reb_the_engine_demands_review(self):
        import dataclasses

        project = dataclasses.replace(
            self._project(), reb_approved=False
        )
        assessment = assess_project(project)
        assert assessment.verdict == Verdict.REQUIRES_REB


class TestPasswordDumpPattern:
    def test_defensible_with_secure_handling(self):
        facts = JustificationFacts(
            data_public=True,
            prior_published_use=True,
            no_persons_identified=True,
            secure_handling=True,
            adversaries_use_data=True,
        )
        nah = evaluate_justification("no-additional-harm", facts)
        fmu = evaluate_justification("fight-malicious-use", facts)
        assert nah.acceptable
        assert fmu.acceptable

    def test_not_the_first_never_suffices(self):
        # The paper's explicit critique of the most common argument.
        facts = JustificationFacts(prior_published_use=True)
        verdict = evaluate_justification("not-the-first", facts)
        assert not verdict.acceptable


class TestCarna:
    def test_building_the_botnet_is_misuse(self):
        report = analyze_legal(
            DataProfile(
                origin=DataOrigin.VULNERABILITY_EXPLOITATION,
                collected_by_researcher_intrusion=True,
            ),
            JurisdictionSet.from_codes(["US"]),
        )
        assert report.overall_risk == RiskLevel.SEVERE

    def test_merely_using_the_data_is_lower_risk(self):
        report = analyze_legal(
            DataProfile(
                origin=DataOrigin.VULNERABILITY_EXPLOITATION,
                contains_ip_addresses=True,
                publicly_available=True,
            ),
            JurisdictionSet.from_codes(["US"]),
        )
        assert report.overall_risk in (
            RiskLevel.LOW,
            RiskLevel.MEDIUM,
        )

    @pytest.mark.parametrize(
        "jurisdiction,applies", [("US", False), ("DE", True)]
    )
    def test_telescope_ip_question_is_jurisdictional(
        self, jurisdiction, applies
    ):
        # Malecot & Inoue's predicament: the bot source IPs identify
        # victims — personal data in Germany, not in the US.
        report = analyze_legal(
            DataProfile(
                origin=DataOrigin.VULNERABILITY_EXPLOITATION,
                contains_ip_addresses=True,
            ),
            JurisdictionSet.from_codes([jurisdiction]),
        )
        assert (
            "data-privacy" in report.applicable_issues()
        ) is applies
