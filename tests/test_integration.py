"""Integration tests: cross-module workflows end to end."""

from __future__ import annotations

import pytest

from repro import table1_corpus
from repro.analysis import CodingMatrix, section5_statistics
from repro.anonymization import IPAnonymizer, Pseudonymizer
from repro.assessment import (
    PlannedSafeguards,
    assess_project,
    publication_checklist,
)
from repro.coding import Coder, annotations_from_corpus
from repro.corpus import Corpus, extended_corpus
from repro.datasets import BooterDatabaseGenerator
from repro.metrics import ForumNetwork
from repro.reporting import (
    generate_data_management_plan,
    generate_ethics_section,
    generate_reb_application,
    run_reproduction,
)
from repro.safeguards import (
    SecureContainer,
    combine_shares,
    split_secret,
)
from repro.tables import render_table1
from tests.test_assessment import booter_project


class TestCorpusRoundtrips:
    def test_json_roundtrip_preserves_analysis(self, corpus):
        clone = Corpus.from_json(corpus.codebook, corpus.to_json())
        original = section5_statistics(corpus)
        recovered = section5_statistics(clone)
        assert original.as_dict() == recovered.as_dict()

    def test_json_roundtrip_preserves_rendering(self, corpus):
        clone = Corpus.from_json(corpus.codebook, corpus.to_json())
        assert render_table1(clone, "csv") == render_table1(
            corpus, "csv"
        )

    def test_annotations_reconstruct_matrix(self, corpus):
        # Corpus -> annotations -> same positive-coding counts.
        annotations = annotations_from_corpus(
            corpus, Coder(id="roundtrip")
        )
        matrix = CodingMatrix(corpus)
        for dim in corpus.codebook.closed_dimensions():
            positive_from_annotations = sum(
                1
                for entry in corpus
                if annotations.get(entry.id, dim.id).value.is_positive
            )
            assert positive_from_annotations == int(
                matrix.column(dim.id).sum()
            )

    def test_extended_corpus_flows_through_reporting(self):
        corpus = extended_corpus()
        stats = section5_statistics(corpus)
        assert stats.total_entries == 32
        text = render_table1(corpus, "markdown")
        assert "Mirai source code" in text


class TestAssessmentToReports:
    def test_full_document_pack(self):
        assessment = assess_project(booter_project(reb_approved=True))
        ethics = generate_ethics_section(assessment)
        application = generate_reb_application(assessment)
        dmp = generate_data_management_plan(assessment.project)
        # The three documents tell one consistent story.
        assert "leaked without authorization" in ethics
        assert assessment.project.title in application
        assert assessment.project.title in dmp
        assert publication_checklist().ready(assessment)

    def test_safeguard_upgrade_changes_verdict_consistently(self):
        bare = assess_project(
            booter_project(
                safeguards=PlannedSafeguards(), reb_approved=True
            )
        )
        protected = assess_project(booter_project(reb_approved=True))
        bare_risk = bare.grid.total_risk()
        protected_risk = protected.grid.total_risk()
        assert protected_risk < bare_risk
        assert len(protected.required_actions) <= len(
            bare.required_actions
        )


class TestDataHandlingPipeline:
    def test_generate_anonymize_seal_escrow_recover(self):
        # The full custody chain on one synthetic dump.
        db = BooterDatabaseGenerator(77).generate(users=50, days=30)
        key = b"pipeline-key-0123456789abcdef!!!"
        anonymizer = IPAnonymizer(key)
        pseudonymizer = Pseudonymizer(key)
        safe_rows = [
            (
                pseudonymizer.pseudonym(str(a.user_id), "user"),
                anonymizer.anonymize(a.target_ip),
                a.method,
            )
            for a in db.attacks
        ]
        assert len(safe_rows) == len(db.attacks)
        assert not any(
            a.target_ip == row[1]
            for a, row in zip(db.attacks, safe_rows)
        ) or len(db.attacks) == 0

        passphrase = "escrowed-passphrase"
        container = SecureContainer(passphrase)
        sealed = container.seal(repr(safe_rows).encode())
        shares = split_secret(
            passphrase.encode(), shares=5, threshold=3
        )
        recovered_passphrase = combine_shares(
            [shares[0], shares[2], shares[4]]
        ).decode()
        recovered = SecureContainer(recovered_passphrase).open(sealed)
        assert recovered == repr(safe_rows).encode()

    def test_forum_pipeline_network_analysis(self):
        from repro.datasets import ForumGenerator

        forum = ForumGenerator(5).generate(members=80, threads=60)
        network = ForumNetwork(forum)
        summary = network.summary()
        actors = network.key_actors(3)
        assert summary.members == 80
        member_ids = {m.member_id for m in forum.members}
        assert all(actor in member_ids for actor, _ in actors)


class TestReproductionBattery:
    def test_everything_passes_in_one_run(self, corpus):
        outcomes = run_reproduction(corpus)
        assert len(outcomes) == 19
        assert all(outcome.passed for outcome in outcomes)

    def test_detects_corpus_drift(self, corpus):
        # Corrupt one cell and the battery must notice.
        import dataclasses

        from repro.codebook import CellValue, paper_codebook

        entries = list(corpus)
        target = next(
            i for i, e in enumerate(entries) if e.id == "pcfg-weir"
        )
        broken_values = dict(entries[target].values)
        broken_values["ethics-section"] = CellValue.DISCUSSED
        entries[target] = dataclasses.replace(
            entries[target], values=broken_values
        )
        broken = Corpus(paper_codebook(), entries)
        outcomes = run_reproduction(broken)
        assert any(not outcome.passed for outcome in outcomes)
