"""Unit tests for the intervention-ethics module."""

from __future__ import annotations

import pytest

from repro.errors import EthicsModelError
from repro.ethics import (
    InterventionAssessment,
    InterventionOption,
    TAKEDOWN_DILEMMAS,
)


def option(**overrides) -> InterventionOption:
    defaults = dict(
        id="sinkhole",
        description="sinkhole the botnet C&C domain",
        harm_reduced=0.7,
        harm_created=0.1,
        reversible=True,
        authorised=True,
        likely_to_work=True,
    )
    defaults.update(overrides)
    return InterventionOption(**defaults)


class TestDilemmas:
    def test_inventory_shape(self):
        assert len(TAKEDOWN_DILEMMAS) == 5
        ids = [d.id for d in TAKEDOWN_DILEMMAS]
        assert len(set(ids)) == len(ids)
        for dilemma in TAKEDOWN_DILEMMAS:
            assert dilemma.act_considerations
            assert dilemma.refrain_considerations


class TestInterventionOption:
    def test_bounds(self):
        with pytest.raises(EthicsModelError):
            option(harm_reduced=1.5)
        with pytest.raises(EthicsModelError):
            option(harm_created=-0.1)


class TestAssessment:
    def test_needs_options(self):
        with pytest.raises(EthicsModelError):
            InterventionAssessment(())

    def test_duplicate_ids(self):
        with pytest.raises(EthicsModelError):
            InterventionAssessment((option(), option()))

    def test_unauthorised_blocks(self):
        assessment = InterventionAssessment(
            (option(authorised=False),)
        )
        verdict, reasons = assessment.evaluate("sinkhole")
        assert verdict == "do-not-proceed"
        assert any("computer misuse" in r for r in reasons)

    def test_ineffective_blocks(self):
        # Moore & Clayton: interventions must be likely to work.
        assessment = InterventionAssessment(
            (option(likely_to_work=False),)
        )
        verdict, _ = assessment.evaluate("sinkhole")
        assert verdict == "do-not-proceed"

    def test_net_harm_blocks(self):
        assessment = InterventionAssessment(
            (option(harm_reduced=0.2, harm_created=0.3),)
        )
        verdict, _ = assessment.evaluate("sinkhole")
        assert verdict == "do-not-proceed"

    def test_irreversible_needs_oversight(self):
        assessment = InterventionAssessment(
            (option(reversible=False),)
        )
        verdict, reasons = assessment.evaluate("sinkhole")
        assert verdict == "proceed-with-oversight"
        assert any("oversight" in r for r in reasons)

    def test_clean_option_proceeds(self):
        assessment = InterventionAssessment((option(),))
        verdict, _ = assessment.evaluate("sinkhole")
        assert verdict == "proceed"

    def test_unknown_option(self):
        assessment = InterventionAssessment((option(),))
        with pytest.raises(EthicsModelError):
            assessment.evaluate("nuke-from-orbit")

    def test_best_option_prefers_clean_proceed(self):
        assessment = InterventionAssessment(
            (
                option(
                    id="cleanse",
                    reversible=False,
                    harm_reduced=0.9,
                ),
                option(id="sinkhole", harm_reduced=0.6),
            )
        )
        best, verdict = assessment.best_option()
        assert best is not None
        assert best.id == "sinkhole"  # proceed beats oversight
        assert verdict == "proceed"

    def test_best_option_none_when_all_blocked(self):
        assessment = InterventionAssessment(
            (option(authorised=False),)
        )
        best, verdict = assessment.best_option()
        assert best is None
        assert verdict == "do-not-proceed"

    def test_best_option_largest_net_within_tier(self):
        assessment = InterventionAssessment(
            (
                option(id="small", harm_reduced=0.3),
                option(id="large", harm_reduced=0.8),
            )
        )
        best, _ = assessment.best_option()
        assert best.id == "large"
