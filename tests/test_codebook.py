"""Unit tests for the codebook schema."""

from __future__ import annotations

import pytest

from repro.codebook import (
    CellValue,
    Code,
    Codebook,
    Dimension,
    DimensionKind,
    parse_glyph,
)
from repro.errors import (
    CodebookError,
    UnknownCodeError,
    UnknownDimensionError,
)


class TestCellValue:
    def test_positive_values(self):
        assert CellValue.APPLICABLE.is_positive
        assert CellValue.DISCUSSED.is_positive
        assert CellValue.APPROVED.is_positive

    def test_negative_values(self):
        for value in (
            CellValue.NOT_APPLICABLE,
            CellValue.NOT_DISCUSSED,
            CellValue.DECLINED,
            CellValue.NOT_MENTIONED,
            CellValue.EXEMPT,
            CellValue.NOT_RELEVANT,
        ):
            assert not value.is_positive

    def test_every_value_has_glyph(self):
        for value in CellValue:
            assert isinstance(value.glyph, str)

    def test_parse_tick_and_cross(self):
        assert parse_glyph("✓") is CellValue.DISCUSSED
        assert parse_glyph("✗") is CellValue.NOT_DISCUSSED

    def test_parse_dingbat_digits(self):
        # Text extractions of the paper render ✓/✗ as 3/5.
        assert parse_glyph("3") is CellValue.DISCUSSED
        assert parse_glyph("5") is CellValue.NOT_DISCUSSED

    def test_parse_reb_column_reinterprets(self):
        assert parse_glyph("3", reb_column=True) is CellValue.APPROVED
        assert (
            parse_glyph("5", reb_column=True) is CellValue.NOT_MENTIONED
        )
        assert parse_glyph("E", reb_column=True) is CellValue.EXEMPT
        assert parse_glyph("∅", reb_column=True) is CellValue.NOT_RELEVANT

    def test_parse_special_glyphs(self):
        assert parse_glyph("•") is CellValue.APPLICABLE
        assert parse_glyph("l") is CellValue.DECLINED
        assert parse_glyph("") is CellValue.NOT_APPLICABLE

    def test_parse_unknown_raises(self):
        with pytest.raises(CodebookError):
            parse_glyph("?")


class TestCode:
    def test_valid_code(self):
        code = Code(id="privacy", abbrev="P", name="Privacy")
        assert str(code) == "P"

    def test_bad_slug_rejected(self):
        with pytest.raises(CodebookError):
            Code(id="Not A Slug", abbrev="X", name="X")

    def test_empty_abbrev_rejected(self):
        with pytest.raises(CodebookError):
            Code(id="x", abbrev="", name="X")


class TestDimension:
    def _closed(self) -> Dimension:
        return Dimension(
            id="demo",
            name="Demo",
            group="legal",
            allowed=(CellValue.APPLICABLE, CellValue.NOT_APPLICABLE),
        )

    def _open(self) -> Dimension:
        return Dimension(
            id="codes",
            name="Codes",
            group="codes",
            kind=DimensionKind.OPEN,
            members=(
                Code(id="alpha", abbrev="A", name="Alpha"),
                Code(id="beta", abbrev="B", name="Beta"),
            ),
        )

    def test_closed_validates_allowed_value(self):
        dim = self._closed()
        assert dim.validate_value(CellValue.APPLICABLE)

    def test_closed_rejects_disallowed_value(self):
        with pytest.raises(CodebookError):
            self._closed().validate_value(CellValue.DISCUSSED)

    def test_closed_needs_allowed(self):
        with pytest.raises(CodebookError):
            Dimension(id="x", name="X", group="g")

    def test_open_lookup_by_id_and_abbrev(self):
        dim = self._open()
        assert dim.code("alpha").abbrev == "A"
        assert dim.code("B").id == "beta"

    def test_open_unknown_code(self):
        with pytest.raises(UnknownCodeError):
            self._open().code("gamma")

    def test_open_duplicate_codes_rejected(self):
        with pytest.raises(CodebookError):
            self._open().validate_codes(("A", "alpha"))

    def test_open_needs_members(self):
        with pytest.raises(CodebookError):
            Dimension(id="x", name="X", group="g", kind=DimensionKind.OPEN)

    def test_closed_must_not_have_members(self):
        with pytest.raises(CodebookError):
            Dimension(
                id="x",
                name="X",
                group="g",
                allowed=(CellValue.DISCUSSED,),
                members=(Code(id="a", abbrev="A", name="A"),),
            )

    def test_unknown_kind_rejected(self):
        with pytest.raises(CodebookError):
            Dimension(
                id="x",
                name="X",
                group="g",
                kind="weird",
                allowed=(CellValue.DISCUSSED,),
            )


class TestPaperCodebook:
    def test_dimension_counts(self, codebook):
        assert len(codebook.group("legal")) == 6
        assert len(codebook.group("ethical")) == 5
        assert len(codebook.group("justification")) == 5
        assert len(codebook.group("meta")) == 2
        assert len(codebook.group("codes")) == 3

    def test_groups_in_table_order(self, codebook):
        assert codebook.groups == (
            "legal",
            "ethical",
            "justification",
            "meta",
            "codes",
        )

    def test_code_families(self, codebook):
        assert {c.abbrev for c in codebook["safeguards"].members} == {
            "SS", "P", "CS",
        }
        assert {c.abbrev for c in codebook["harms"].members} == {
            "I", "PA", "DA", "SI", "RH", "BC",
        }
        assert {c.abbrev for c in codebook["benefits"].members} == {
            "R", "U", "DM", "AT",
        }

    def test_reb_dimension_values(self, codebook):
        allowed = set(codebook["reb-approval"].allowed)
        assert allowed == {
            CellValue.APPROVED,
            CellValue.NOT_MENTIONED,
            CellValue.EXEMPT,
            CellValue.NOT_RELEVANT,
        }

    def test_declined_only_in_justifications(self, codebook):
        for dim in codebook.closed_dimensions():
            if dim.group == "justification":
                assert CellValue.DECLINED in dim.allowed
            else:
                assert CellValue.DECLINED not in dim.allowed

    def test_unknown_dimension_lookup(self, codebook):
        with pytest.raises(UnknownDimensionError):
            codebook["nonexistent"]

    def test_legend_covers_open_dimensions(self, codebook):
        legend = codebook.legend()
        assert set(legend) == {"safeguards", "harms", "benefits"}
        assert legend["safeguards"]["P"] == "Privacy"

    def test_validate_coding_missing_dimension(self, codebook):
        with pytest.raises(CodebookError):
            codebook.validate_coding({}, {})

    def test_every_dimension_has_description(self, codebook):
        for dim in codebook:
            assert dim.description, f"{dim.id} lacks a description"

    def test_duplicate_dimension_ids_rejected(self):
        dim = Dimension(
            id="dup",
            name="Dup",
            group="g",
            allowed=(CellValue.DISCUSSED,),
        )
        with pytest.raises(ValueError):
            Codebook("x", (dim, dim))
