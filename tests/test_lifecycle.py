"""Unit tests for the REB submission-case state machine."""

from __future__ import annotations

import pytest

from repro.errors import REBError
from repro.reb import (
    CaseState,
    Decision,
    REBWorkflow,
    Submission,
    SubmissionCase,
    TriggerPolicy,
    ictr_board,
    medical_style_board,
)


def make_case(
    *,
    risk: float = 0.3,
    safeguards: tuple[str, ...] = (),
    human_subjects: bool = False,
    potential_harm: bool = True,
    board=None,
    policy=None,
) -> SubmissionCase:
    workflow = REBWorkflow(
        board or ictr_board(), policy or TriggerPolicy.RISK_BASED
    )
    submission = Submission(
        id="case-1",
        title="Test submission",
        human_subjects=human_subjects,
        potential_human_harm=potential_harm,
        risk_score=risk,
        safeguard_codes=safeguards,
    )
    return SubmissionCase(submission, workflow)


class TestHappyPaths:
    def test_exemption_path(self):
        case = make_case(
            potential_harm=False,
            policy=TriggerPolicy.HUMAN_SUBJECTS,
        )
        case.submit(0)
        case.triage(1)
        assert case.state == CaseState.EXEMPT
        assert case.is_terminal
        assert case.days_to_decision == 1

    def test_clean_approval_path(self):
        case = make_case(risk=0.05, safeguards=("SS", "P", "CS"))
        case.submit(0)
        case.triage(2)
        decision = case.decide(7)
        assert decision is Decision.APPROVED
        assert case.state == CaseState.APPROVED
        assert case.days_to_decision == 7

    def test_conditions_path(self):
        case = make_case(safeguards=())
        case.submit(0)
        case.triage(1)
        assert case.decide(5) is Decision.APPROVED_WITH_CONDITIONS
        assert case.conditions
        case.satisfy_conditions(12, "storage encrypted, P adopted")
        assert case.state == CaseState.APPROVED
        assert not case.conditions
        assert case.days_to_decision == 12

    def test_rejection_and_appeal(self):
        case = make_case(risk=2.0, safeguards=("P",))
        case.submit(0)
        case.triage(1)
        assert case.decide(10) is Decision.REJECTED
        case.appeal(15, "risk score recalculated after redesign")
        assert case.state == CaseState.IN_REVIEW
        # Second rejection cannot be appealed again.
        case.decide(20)
        with pytest.raises(REBError):
            case.appeal(25, "please")

    def test_referral_path(self):
        case = make_case(board=medical_style_board())
        case.submit(0)
        case.triage(1)
        assert case.decide(30) is Decision.REFERRED
        case.external_advice(90, "ICTR specialist consulted")
        assert case.state == CaseState.IN_REVIEW

    def test_amendment_reopens_review(self):
        case = make_case(risk=0.05, safeguards=("SS", "P", "CS"))
        case.submit(0)
        case.triage(1)
        case.decide(5)
        case.amend(100, "new dataset added to the study")
        assert case.state == CaseState.IN_REVIEW
        assert case.days_to_decision is None


class TestGuards:
    def test_cannot_triage_before_submit(self):
        case = make_case()
        with pytest.raises(REBError):
            case.triage(0)

    def test_cannot_decide_from_draft(self):
        case = make_case()
        with pytest.raises(REBError):
            case.decide(0)

    def test_cannot_submit_twice(self):
        case = make_case()
        case.submit(0)
        with pytest.raises(REBError):
            case.submit(1)

    def test_time_cannot_go_backwards(self):
        case = make_case()
        case.submit(5)
        with pytest.raises(REBError):
            case.triage(3)

    def test_conditions_need_evidence(self):
        case = make_case(safeguards=())
        case.submit(0)
        case.triage(1)
        case.decide(5)
        with pytest.raises(REBError):
            case.satisfy_conditions(8, "   ")

    def test_appeal_needs_grounds(self):
        case = make_case(risk=2.0, safeguards=("P",))
        case.submit(0)
        case.triage(1)
        case.decide(10)
        with pytest.raises(REBError):
            case.appeal(12, "")

    def test_amend_only_from_approved(self):
        case = make_case()
        case.submit(0)
        with pytest.raises(REBError):
            case.amend(1, "change")

    def test_advice_needs_content(self):
        case = make_case(board=medical_style_board())
        case.submit(0)
        case.triage(1)
        case.decide(30)
        with pytest.raises(REBError):
            case.external_advice(40, "")


class TestHistory:
    def test_full_history_recorded(self):
        case = make_case(safeguards=())
        case.submit(0)
        case.triage(1)
        case.decide(5)
        case.satisfy_conditions(9, "done")
        states = [t.to_state for t in case.history]
        assert states == [
            CaseState.SUBMITTED,
            CaseState.IN_REVIEW,
            CaseState.CONDITIONS_PENDING,
            CaseState.APPROVED,
        ]

    def test_transcript_renders(self):
        case = make_case()
        case.submit(0)
        case.triage(1)
        text = case.transcript()
        assert "draft -> submitted" in text
        assert "current state: in-review" in text
