"""Package-level tests: version, lazy exports, top-level API."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_eager_exports(self):
        for name in (
            "table1_corpus",
            "paper_codebook",
            "paper_bibliography",
            "Corpus",
            "CellValue",
        ):
            assert hasattr(repro, name)

    def test_lazy_exports_resolve(self):
        assert callable(repro.render_table1)
        assert callable(repro.section5_statistics)
        assert callable(repro.assess_project)
        assert repro.CodingMatrix is not None
        assert repro.ResearchProject is not None

    def test_lazy_export_cached(self):
        first = repro.render_table1
        second = repro.render_table1
        assert first is second

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_a_thing

    def test_all_sorted(self):
        assert list(repro.__all__) == sorted(repro.__all__)

    def test_quickstart_docstring_is_true(self):
        # The module docstring's quickstart must actually work.
        corpus = repro.table1_corpus()
        table = repro.render_table1(corpus)
        stats = repro.section5_statistics(corpus)
        assert "Malware & exploitation" in table
        assert stats.ethics_sections == 12


class TestLatexEscaping:
    @given(
        st.text(
            alphabet="abc&%$#_{}~^\\•✓✗∅ ",
            min_size=1,
            max_size=30,
        )
    )
    def test_no_raw_specials_survive(self, text):
        from repro.tables.renderers import _latex_escape

        escaped = _latex_escape(text)
        # Raw specials must not survive unescaped: after removing all
        # known macro forms there should be no bare & % # or { }.
        stripped = (
            escaped.replace(r"\&", "")
            .replace(r"\%", "")
            .replace(r"\$", "")
            .replace(r"\#", "")
            .replace(r"\_", "")
            .replace(r"\{", "")
            .replace(r"\}", "")
            .replace(r"\textbackslash{}", "")
            .replace(r"\textasciitilde{}", "")
            .replace(r"\textasciicircum{}", "")
            .replace(r"$\bullet$", "")
            .replace(r"\checkmark", "")
            .replace(r"$\times$", "")
            .replace(r"$\emptyset$", "")
        )
        for char in "&%$#_~^\\":
            assert char not in stripped, (text, escaped)

    def test_latex_table_has_no_raw_ampersand_in_cells(self, corpus):
        from repro.tables import render_table1

        latex = render_table1(corpus, "latex")
        for line in latex.splitlines():
            if "AT\\&T" in line:
                break
        else:
            pytest.fail("escaped AT&T row not found")
