"""Unit tests for the Keegan-Matias risk-benefit grid."""

from __future__ import annotations

import pytest

from repro.errors import EthicsModelError
from repro.ethics import (
    BenefitInstance,
    HarmInstance,
    RiskBenefitGrid,
    default_stakeholders,
)


def _harm(stakeholder="data-subjects", likelihood=0.5, severity=0.5):
    return HarmInstance(
        description="exposure",
        kind="SI",
        stakeholder_id=stakeholder,
        likelihood=likelihood,
        severity=severity,
    )


def _benefit(beneficiary="society", magnitude=0.5):
    return BenefitInstance(
        description="defence mechanisms",
        kind="DM",
        beneficiary=beneficiary,
        magnitude=magnitude,
    )


class TestGridConstruction:
    def test_unknown_harm_stakeholder(self):
        with pytest.raises(EthicsModelError):
            RiskBenefitGrid(
                default_stakeholders(), [_harm("ghost")], []
            )

    def test_unknown_beneficiary(self):
        with pytest.raises(EthicsModelError):
            RiskBenefitGrid(
                default_stakeholders(), [], [_benefit("ghost")]
            )

    def test_society_always_allowed(self):
        grid = RiskBenefitGrid(
            default_stakeholders(), [], [_benefit("society")]
        )
        assert grid.total_benefit() > 0


class TestBalances:
    def test_per_party_accounting(self):
        grid = RiskBenefitGrid(
            default_stakeholders(),
            [_harm(), _harm()],
            [_benefit("society")],
        )
        balance = grid.balance("data-subjects")
        assert balance.harm_count == 2
        assert balance.risk == pytest.approx(0.5)
        assert balance.benefit == 0.0
        assert balance.is_subsidising

    def test_society_row_present_when_benefits(self):
        grid = RiskBenefitGrid(
            default_stakeholders(), [], [_benefit("society")]
        )
        parties = [b.stakeholder_id for b in grid.balances()]
        assert "society" in parties

    def test_society_row_absent_without_benefits(self):
        grid = RiskBenefitGrid(default_stakeholders(), [_harm()], [])
        parties = [b.stakeholder_id for b in grid.balances()]
        assert "society" not in parties

    def test_net(self):
        grid = RiskBenefitGrid(
            default_stakeholders(),
            [_harm()],
            [_benefit("data-subjects", magnitude=0.9)],
        )
        balance = grid.balance("data-subjects")
        assert balance.net == pytest.approx(0.9 - 0.25)
        assert not balance.is_subsidising


class TestQueries:
    def test_unassessed_parties(self):
        grid = RiskBenefitGrid(
            default_stakeholders(), [_harm()], [_benefit("society")]
        )
        unassessed = grid.unassessed_parties()
        assert "service-operator" in unassessed
        assert "data-subjects" not in unassessed

    def test_favourable_requires_no_subsidy(self):
        grid = RiskBenefitGrid(
            default_stakeholders(),
            [_harm()],
            [_benefit("society", magnitude=0.9)],
        )
        # Benefit exceeds risk, but data-subjects subsidise: not
        # favourable under the multi-party rule.
        assert grid.total_benefit() > grid.total_risk()
        assert not grid.favourable()

    def test_favourable_when_balanced(self):
        grid = RiskBenefitGrid(
            default_stakeholders(),
            [_harm(likelihood=0.1, severity=0.1)],
            [_benefit("data-subjects", magnitude=0.9)],
        )
        assert grid.favourable()

    def test_render_marks_subsidising(self):
        grid = RiskBenefitGrid(
            default_stakeholders(), [_harm()], [_benefit("society")]
        )
        assert "[subsidising]" in grid.render_text()
