"""Unit tests for the one-call governance document pack."""

from __future__ import annotations

import pytest

from repro.assessment import assess_project
from repro.ethics import RightsContext
from repro.legal import JurisdictionSet, US
from repro.reporting import generate_audit_pack
from tests.test_assessment import booter_project


@pytest.fixture(scope="module")
def assessment():
    return assess_project(booter_project(reb_approved=True))


class TestAuditPack:
    def test_core_documents_present(self, assessment):
        pack = generate_audit_pack(assessment)
        assert set(pack) == {
            "ethics-section",
            "reb-application",
            "data-management-plan",
            "rights-annex",
            "checklist",
        }
        assert all(text.strip() for text in pack.values())

    def test_travel_annex_optional(self, assessment):
        pack = generate_audit_pack(
            assessment,
            home=US,
            travel_destinations=JurisdictionSet.from_codes(
                ["UK", "DE"]
            ),
        )
        assert "travel-advisory" in pack
        assert "Travel advisory" in pack["travel-advisory"]

    def test_rights_annex_reflects_context(self):
        project = booter_project(
            rights_context=RightsContext(
                identifies_individuals=True,
                contains_private_life=True,
            ),
            reb_approved=True,
        )
        pack = generate_audit_pack(assess_project(project))
        assert "privacy" in pack["rights-annex"]
        assert "Article 12" in pack["rights-annex"]

    def test_rights_annex_clean_when_unengaged(self, assessment):
        pack = generate_audit_pack(assessment)
        assert "No rights" in pack["rights-annex"]

    def test_documents_are_consistent(self, assessment):
        pack = generate_audit_pack(assessment)
        title = assessment.project.title
        assert title in pack["reb-application"]
        assert title in pack["data-management-plan"]
