"""Unit and property tests for the synthetic dataset generators."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import (
    BooterDatabaseGenerator,
    ClassifiedCorpusGenerator,
    ForumGenerator,
    OffshoreLeakGenerator,
    PasswordDumpGenerator,
    ScanGenerator,
    zipf_choice,
)
from repro.errors import DatasetError

seeds = st.integers(0, 2**16)


class TestCommon:
    def test_zipf_empty(self):
        import random

        with pytest.raises(DatasetError):
            zipf_choice(random.Random(0), [])

    def test_zipf_bad_exponent(self):
        import random

        with pytest.raises(DatasetError):
            zipf_choice(random.Random(0), [1, 2], exponent=0)

    def test_zipf_skews_to_head(self):
        import random

        rng = random.Random(0)
        items = list(range(50))
        draws = [zipf_choice(rng, items) for _ in range(2000)]
        head = sum(1 for d in draws if d < 5)
        tail = sum(1 for d in draws if d >= 45)
        assert head > 5 * max(tail, 1)

    def test_identity_synthesis_shapes(self):
        gen = PasswordDumpGenerator(0)
        assert "@" in gen.email()
        assert gen.ipv4().count(".") == 3
        assert gen.full_name().istitle()


class TestPasswordDump:
    def test_sizes_and_style(self):
        dump = PasswordDumpGenerator(1).generate(users=100)
        assert len(dump) == 100
        assert all(r.password for r in dump.records)
        assert all(not r.password_hash for r in dump.records)

    def test_hashed_style_hides_plaintext(self):
        dump = PasswordDumpGenerator(1).generate(
            users=50, style="hashed"
        )
        assert all(not r.password for r in dump.records)
        assert all(len(r.password_hash) == 40 for r in dump.records)
        assert all(not r.salt for r in dump.records)

    def test_salted_style(self):
        dump = PasswordDumpGenerator(1).generate(
            users=50, style="salted"
        )
        assert all(r.salt for r in dump.records)

    def test_unknown_style(self):
        with pytest.raises(DatasetError):
            PasswordDumpGenerator(1).generate(style="rot13")

    def test_zero_users(self):
        with pytest.raises(DatasetError):
            PasswordDumpGenerator(1).generate(users=0)

    def test_zipf_head(self):
        dump = PasswordDumpGenerator(1).generate(users=3000)
        top_count = dump.frequency().most_common(1)[0][1]
        assert top_count > len(dump) / 100  # heavy head

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_deterministic(self, seed):
        a = PasswordDumpGenerator(seed).generate(users=50)
        b = PasswordDumpGenerator(seed).generate(users=50)
        assert a.to_records() == b.to_records()

    def test_pair_reuse_rates(self):
        a, b = PasswordDumpGenerator(5).generate_pair(
            users=2000, overlap=0.5
        )
        shared = {
            r.email for r in a.records
        } & {r.email for r in b.records}
        assert len(shared) == 1000

    def test_pair_validation(self):
        with pytest.raises(DatasetError):
            PasswordDumpGenerator(1).generate_pair(overlap=1.5)
        with pytest.raises(DatasetError):
            PasswordDumpGenerator(1).generate_pair(
                direct_reuse=0.8, partial_reuse=0.3
            )


class TestBooter:
    @pytest.fixture(scope="class")
    def db(self):
        return BooterDatabaseGenerator(2).generate(users=200, days=60)

    def test_schema_populated(self, db):
        assert db.users and db.attacks and db.payments and db.plans
        assert db.tickets

    def test_heavy_tail(self, db):
        heavy = len(db.users) // 10
        heavy_attacks = sum(
            1 for a in db.attacks if a.user_id < heavy
        )
        assert heavy_attacks > len(db.attacks) / 2

    def test_amplification_dominates(self, db):
        amplified = sum(
            1
            for a in db.attacks
            if a.method.endswith("amplification")
        )
        assert amplified > 0.6 * len(db.attacks)

    def test_durations_within_plan_limits(self, db):
        max_duration = max(
            p.max_duration_seconds for p in db.plans
        )
        assert all(
            a.duration_seconds <= max_duration for a in db.attacks
        )

    def test_attack_days_follow_registration(self, db):
        registration = {
            u.user_id: u.registration_day for u in db.users
        }
        assert all(
            a.day >= registration[a.user_id] for a in db.attacks
        )

    def test_revenue_positive(self, db):
        assert db.revenue() > 0

    def test_records_view(self, db):
        records = db.to_records()
        assert set(records) == {
            "users", "attacks", "payments", "tickets", "plans",
        }

    def test_validation(self):
        with pytest.raises(DatasetError):
            BooterDatabaseGenerator(1).generate(users=0)


class TestForum:
    @pytest.fixture(scope="class")
    def forum(self):
        return ForumGenerator(3).generate(members=150, threads=100)

    def test_mixed_boards(self, forum):
        # Real forums cover both criminal and benign topics (§4.3.3).
        assert 0.1 < forum.illicit_share() < 0.9

    def test_interactions_exist(self, forum):
        edges = forum.interaction_edges()
        assert edges
        member_ids = {m.member_id for m in forum.members}
        assert all(
            s in member_ids and t in member_ids for s, t in edges
        )

    def test_posts_reference_threads(self, forum):
        thread_ids = {t.thread_id for t in forum.threads}
        assert all(p.thread_id in thread_ids for p in forum.posts)

    def test_trades_by_product(self, forum):
        counts = forum.trades_by_product()
        assert sum(counts.values()) == len(forum.trades)

    def test_validation(self):
        with pytest.raises(DatasetError):
            ForumGenerator(1).generate(members=1)


class TestOffshore:
    @pytest.fixture(scope="class")
    def leak(self):
        return OffshoreLeakGenerator(4).generate()

    def test_entities_linked_to_intermediaries(self, leak):
        ids = {i.intermediary_id for i in leak.intermediaries}
        assert all(e.intermediary_id in ids for e in leak.entities)

    def test_legislation_reduces_incorporations(self, leak):
        series = leak.incorporations_by_year()
        pre = sum(series.get(y, 0) for y in range(2000, 2005))
        post = sum(series.get(y, 0) for y in range(2010, 2015))
        assert post < pre

    def test_active_entities_monotone_sanity(self, leak):
        assert leak.active_entities(1990) == 0

    def test_public_figures_rare(self, leak):
        assert 0 < len(leak.public_figures()) < len(leak.officers) / 5

    def test_validation(self):
        with pytest.raises(DatasetError):
            OffshoreLeakGenerator(1).generate(
                start_year=2010, end_year=2000
            )
        with pytest.raises(DatasetError):
            OffshoreLeakGenerator(1).generate(legislation_effect=1.0)


class TestClassified:
    @pytest.fixture(scope="class")
    def corpus(self):
        return ClassifiedCorpusGenerator(5).generate(cables=400)

    def test_marking_mix(self, corpus):
        counts = corpus.by_classification()
        assert counts.get("TOP SECRET", 0) == 0
        assert counts["UNCLASSIFIED"] > 0
        assert counts["SECRET"] > 0

    def test_classification_survives_release(self, corpus):
        assert corpus.publicly_released
        assert corpus.still_classified()

    def test_mentioning(self, corpus):
        cable = next(c for c in corpus.cables if c.subjects)
        hits = corpus.mentioning(cable.subjects[0])
        assert cable in hits

    def test_validation(self):
        with pytest.raises(DatasetError):
            ClassifiedCorpusGenerator(1).generate(cables=0)


class TestScans:
    @pytest.fixture(scope="class")
    def scan(self):
        return ScanGenerator(6).generate(
            targets=1000, proxy_pollution=0.3
        )

    def test_port80_artefacts_present(self, scan):
        # The CAIDA finding: port-80 open rates are polluted.
        assert scan.artefact_rate(80) > 0.0
        assert scan.artefact_rate(22) == 0.0

    def test_telescope_sees_only_darknet(self, scan):
        assert all(
            e.dest_ip.startswith(scan.darknet_prefix)
            for e in scan.telescope_events
        )

    def test_botnet_sources_identifiable(self, scan):
        # The [70] predicament: the telescope reveals victim devices.
        assert len(scan.botnet_sources()) > 0

    def test_darknet_never_open(self, scan):
        darknet = [
            r
            for r in scan.records
            if r.target_ip.startswith(scan.darknet_prefix)
        ]
        assert darknet
        assert not any(r.open for r in darknet)

    def test_validation(self):
        with pytest.raises(DatasetError):
            ScanGenerator(1).generate(telescope_share=2.0)
