"""Unit tests for the plain-text chart helpers."""

from __future__ import annotations

import pytest

from repro.errors import RenderError
from repro.tables import bar_chart, series_table, sparkline


class TestBarChart:
    def test_scales_to_maximum(self):
        chart = bar_chart({"a": 10, "b": 5}, width=10)
        lines = chart.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_labels_aligned(self):
        chart = bar_chart({"short": 1, "longer-label": 2})
        lines = chart.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_zero_values_render(self):
        chart = bar_chart({"a": 0, "b": 0})
        assert "0" in chart

    def test_validation(self):
        with pytest.raises(RenderError):
            bar_chart({})
        with pytest.raises(RenderError):
            bar_chart({"a": -1})
        with pytest.raises(RenderError):
            bar_chart({"a": 1}, width=0)

    def test_values_shown(self):
        chart = bar_chart({"P": 10, "SS": 2, "CS": 4})
        assert "10" in chart and "2" in chart and "4" in chart


class TestSparkline:
    def test_length_preserved(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series_monotone_glyphs(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line == "".join(sorted(line))

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_extremes_hit_bounds(self):
        line = sparkline([0, 100])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_empty_rejected(self):
        with pytest.raises(RenderError):
            sparkline([])


class TestSeriesTable:
    def test_renders_all_series(self):
        table = series_table(
            {"dict": [0.1, 0.5, 0.8], "brute": [0.0, 0.0, 0.0]}
        )
        assert "dict" in table and "brute" in table
        assert len(table.splitlines()) == 2

    def test_ragged_rejected(self):
        with pytest.raises(RenderError):
            series_table({"a": [1, 2], "b": [1]})

    def test_empty_rejected(self):
        with pytest.raises(RenderError):
            series_table({})
        with pytest.raises(RenderError):
            series_table({"a": []})
