"""Unit tests for the AoIR-style decision process."""

from __future__ import annotations

import pytest

from repro.errors import EthicsModelError
from repro.ethics import AOIR_QUESTIONS, DecisionProcess, Question


class TestQuestionInventory:
    def test_unique_ids(self):
        ids = [q.id for q in AOIR_QUESTIONS]
        assert len(set(ids)) == len(ids)

    def test_areas_covered(self):
        areas = {q.area for q in AOIR_QUESTIONS}
        assert areas == {
            "context",
            "consent",
            "harm",
            "data-handling",
            "publication",
        }

    def test_some_non_blocking(self):
        assert any(not q.blocking for q in AOIR_QUESTIONS)


class TestDecisionProcess:
    def test_duplicate_questions_rejected(self):
        question = Question(id="q", area="a", text="?")
        with pytest.raises(EthicsModelError):
            DecisionProcess((question, question))

    def test_answer_unknown_question(self):
        process = DecisionProcess()
        with pytest.raises(EthicsModelError):
            process.answer("nope", "answer")

    def test_empty_answer_rejected(self):
        process = DecisionProcess()
        with pytest.raises(EthicsModelError):
            process.answer("context-venue", "   ")

    def test_completion_requires_blocking_only(self):
        process = DecisionProcess()
        for question in AOIR_QUESTIONS:
            if question.blocking:
                process.answer(question.id, "considered and recorded")
        assert process.complete()
        assert process.unanswered()  # non-blocking remain

    def test_area_completeness(self):
        process = DecisionProcess()
        process.answer("context-venue", "a leaked booter database")
        completeness = process.area_completeness()
        assert completeness["context"] == 0.5
        assert completeness["consent"] == 0.0

    def test_transcript_shows_unanswered(self):
        process = DecisionProcess()
        process.answer("context-venue", "a leaked booter database")
        transcript = process.transcript()
        assert "a leaked booter database" in transcript
        assert "(unanswered)" in transcript

    def test_incomplete_initially(self):
        assert not DecisionProcess().complete()
