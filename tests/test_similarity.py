"""Unit tests for the paper-similarity analysis."""

from __future__ import annotations

import pytest

from repro.analysis import SimilarityAnalysis
from repro.corpus import Category
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def corpus():
    from repro import table1_corpus

    return table1_corpus()


@pytest.fixture(scope="module")
def analysis(corpus):
    return SimilarityAnalysis(corpus)


class TestJaccard:
    def test_self_similarity(self, analysis, corpus):
        for entry in corpus:
            assert analysis.jaccard(entry.id, entry.id) == 1.0

    def test_symmetric(self, analysis):
        ab = analysis.jaccard("pcfg-weir", "omen-durmuth")
        ba = analysis.jaccard("omen-durmuth", "pcfg-weir")
        assert ab == ba

    def test_bounds(self, analysis, corpus):
        ids = corpus.entry_ids
        for a in ids[:5]:
            for b in ids[:5]:
                assert 0.0 <= analysis.jaccard(a, b) <= 1.0

    def test_all_negative_pair_identical(self, analysis):
        # Two classified rows that discuss nothing behave identically.
        assert analysis.jaccard(
            "manning-berger", "snowden-schneier"
        ) == 1.0

    def test_unknown_entry(self, analysis):
        with pytest.raises(AnalysisError):
            analysis.jaccard("ghost", "pcfg-weir")


class TestStructure:
    def test_pairs_sorted_descending(self, analysis):
        pairs = analysis.pairs(minimum=0.5)
        values = [pair.jaccard for pair in pairs]
        assert values == sorted(values, reverse=True)

    def test_graph_nodes_cover_corpus(self, analysis, corpus):
        graph = analysis.graph(threshold=0.7)
        assert graph.number_of_nodes() == len(corpus)

    def test_threshold_validation(self, analysis):
        with pytest.raises(AnalysisError):
            analysis.graph(threshold=1.5)

    def test_clusters_partition(self, analysis, corpus):
        clusters = analysis.clusters(threshold=0.7)
        total = sum(len(cluster) for cluster in clusters)
        assert total == len(corpus)
        assert len(clusters[0]) >= len(clusters[-1])

    def test_password_rows_cluster_together(self, analysis):
        # The five password papers make very similar ethical moves.
        clusters = analysis.clusters(threshold=0.55)
        password_ids = {
            "guess-again-kelley",
            "tangled-web-das",
            "omen-durmuth",
        }
        containing = [
            cluster
            for cluster in clusters
            if password_ids & cluster
        ]
        assert len(containing) == 1

    def test_category_cohesion_passwords_highest(self, analysis):
        cohesion = analysis.category_cohesion()
        assert cohesion[Category.PASSWORDS] == max(
            cohesion[c]
            for c in (
                Category.PASSWORDS,
                Category.MALWARE,
                Category.CLASSIFIED,
            )
        )

    def test_separation_positive_but_partial(self, analysis):
        # Categories structure the coding, but far from perfectly —
        # the paper's "wide variation ... even when using the same
        # data".
        separation = analysis.separation()
        assert 0.0 < separation < 0.5
