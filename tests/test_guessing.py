"""Unit tests for the password guess generators and cracking harness."""

from __future__ import annotations

import itertools

import pytest

from repro.datasets import PasswordDumpGenerator
from repro.errors import MetricError
from repro.metrics import (
    BruteForceGuesser,
    DictionaryGuesser,
    MarkovGuesser,
    PCFGGuesser,
    cracking_curve,
)


@pytest.fixture(scope="module")
def corpora():
    train = PasswordDumpGenerator(42).generate(
        site="train", users=1500
    )
    test = PasswordDumpGenerator(7).generate(site="test", users=600)
    return train.passwords(), test.passwords()


class TestDictionaryGuesser:
    def test_popularity_order(self):
        guesser = DictionaryGuesser(["b", "a", "a", "c", "a", "b"])
        assert list(itertools.islice(guesser.guesses(), 3)) == [
            "a", "b", "c",
        ]

    def test_empty_training(self):
        with pytest.raises(MetricError):
            DictionaryGuesser([])


class TestBruteForce:
    def test_enumeration_order(self):
        guesser = BruteForceGuesser(alphabet="ab")
        first = list(itertools.islice(guesser.guesses(), 6))
        assert first == ["a", "b", "aa", "ab", "ba", "bb"]

    def test_empty_alphabet(self):
        with pytest.raises(MetricError):
            BruteForceGuesser(alphabet="")


class TestMarkovGuesser:
    def test_generates_unseen_strings(self, corpora):
        train, _ = corpora
        guesser = MarkovGuesser(train)
        seen = set(train)
        produced = list(itertools.islice(guesser.guesses(), 500))
        assert any(guess not in seen for guess in produced)

    def test_no_duplicates(self, corpora):
        train, _ = corpora
        produced = list(
            itertools.islice(MarkovGuesser(train).guesses(), 400)
        )
        assert len(produced) == len(set(produced))

    def test_empty_training(self):
        with pytest.raises(MetricError):
            MarkovGuesser([])


class TestPCFGGuesser:
    def test_respects_structures(self):
        guesser = PCFGGuesser(["word1", "word2", "pass9"])
        produced = list(itertools.islice(guesser.guesses(), 20))
        # All training passwords are L4D1, so guesses are too.
        assert all(
            g[:4].isalpha() and g[4:].isdigit() for g in produced
        )

    def test_recombination(self):
        # PCFG's strength: recombining segments generates strings
        # never seen in training.
        guesser = PCFGGuesser(["abc1", "xyz2"])
        produced = set(itertools.islice(guesser.guesses(), 10))
        assert "abc2" in produced or "xyz1" in produced

    def test_no_duplicates(self, corpora):
        train, _ = corpora
        produced = list(
            itertools.islice(PCFGGuesser(train).guesses(), 400)
        )
        assert len(produced) == len(set(produced))

    def test_empty_training(self):
        with pytest.raises(MetricError):
            PCFGGuesser([])


class TestCrackingCurve:
    def test_monotone_nondecreasing(self, corpora):
        train, test = corpora
        curve = cracking_curve(
            DictionaryGuesser(train), test, guess_budget=1024
        )
        fractions = [fraction for _, fraction in curve]
        assert fractions == sorted(fractions)

    def test_trained_beats_brute_force(self, corpora):
        # The E12 ordering: any trained guesser >> brute force.
        train, test = corpora
        budget = 1000
        brute = cracking_curve(
            BruteForceGuesser(), test, budget
        )[-1][1]
        for guesser in (
            DictionaryGuesser(train),
            MarkovGuesser(train),
            PCFGGuesser(train),
        ):
            trained = cracking_curve(guesser, test, budget)[-1][1]
            assert trained > brute + 0.05

    def test_checkpoints_at_powers_of_two(self, corpora):
        train, test = corpora
        curve = cracking_curve(
            DictionaryGuesser(train), test, guess_budget=64
        )
        counts = [count for count, _ in curve]
        assert counts[:4] == [1, 2, 4, 8]

    def test_validation(self, corpora):
        train, test = corpora
        with pytest.raises(MetricError):
            cracking_curve(DictionaryGuesser(train), test, 0)
        with pytest.raises(MetricError):
            cracking_curve(DictionaryGuesser(train), [], 10)

    def test_stops_when_all_cracked(self):
        guesser = DictionaryGuesser(["a", "b"])
        curve = cracking_curve(guesser, ["a", "b"], 1000)
        assert curve[-1][1] == 1.0
        assert curve[-1][0] <= 2
