"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_format_choices(self):
        args = build_parser().parse_args(
            ["table1", "--format", "latex"]
        )
        assert args.format == "latex"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--format", "pdf"])


def _subcommands() -> list[list[str]]:
    """Every subcommand invocation path, discovered from the parser.

    Includes nested subcommands (``audit verify`` etc.) so a new
    command or sub-command is covered the moment it is registered.
    """
    import argparse

    paths: list[list[str]] = []

    def walk(parser: argparse.ArgumentParser, prefix: list[str]):
        subactions = [
            action
            for action in parser._actions
            if isinstance(action, argparse._SubParsersAction)
        ]
        if not subactions:
            if prefix:
                paths.append(prefix)
            return
        for action in subactions:
            for name, child in action.choices.items():
                walk(child, [*prefix, name])

    walk(build_parser(), [])
    return paths


class TestHelp:
    """``--help`` must exit 0 for every (sub)command.

    Regression guard for the argparse crash class where an unescaped
    ``%`` in help text raises at format time — the only moment the
    string is interpolated is when ``--help`` actually renders.
    """

    def test_discovers_nested_commands(self):
        paths = _subcommands()
        assert ["pipeline"] in paths
        assert ["audit", "verify"] in paths
        assert len(paths) >= 14

    @pytest.mark.parametrize(
        "path", _subcommands(), ids=lambda p: " ".join(p)
    )
    def test_help_exits_zero(self, path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([*path, "--help"])
        assert excinfo.value.code == 0
        assert "usage:" in capsys.readouterr().out

    def test_top_level_help(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        assert "audit" in capsys.readouterr().out


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Malware & exploitation" in out

    def test_table1_csv(self, capsys):
        assert main(["table1", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 31

    def test_stats(self, capsys):
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "ethics sections: 12/28" in out

    def test_verify_passes(self, capsys):
        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        assert "FAIL" not in out

    def test_report(self, capsys):
        assert main(["report"]) == 0
        assert "# Reproduction report" in capsys.readouterr().out

    def test_legend(self, capsys):
        assert main(["legend"]) == 0
        assert "P=Privacy" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "kind",
        ["passwords", "booter", "forum", "offshore", "classified",
         "scan"],
    )
    def test_simulate_kinds(self, capsys, kind):
        assert main(["simulate", kind, "--seed", "1"]) == 0
        assert capsys.readouterr().out.strip()

    def test_simulate_deterministic(self, capsys):
        main(["simulate", "booter", "--seed", "5"])
        first = capsys.readouterr().out
        main(["simulate", "booter", "--seed", "5"])
        second = capsys.readouterr().out
        assert first == second

    def test_bibliography_search(self, capsys):
        assert main(["bibliography", "--search", "Menlo"]) == 0
        out = capsys.readouterr().out
        assert "[28]" in out

    def test_bibliography_full(self, capsys):
        assert main(["bibliography"]) == 0
        assert "124 references" in capsys.readouterr().out

    def test_similarity(self, capsys):
        assert main(["similarity", "--threshold", "0.7"]) == 0
        out = capsys.readouterr().out
        assert "clusters at threshold 0.7" in out
        assert "category separation" in out

    def test_simulate_reb(self, capsys):
        assert main(
            ["simulate-reb", "--board", "medical", "--seed", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "Legacy medical-model REB" in out
        assert "submissions" in out

    def test_simulate_reb_policy_choice(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate-reb", "--policy", "vibes"]
            )

    def test_evidence(self, capsys):
        assert main(["evidence", "patreon"]) == 0
        out = capsys.readouterr().out
        assert "§4.3.2" in out
        assert "unethical to do so" in out

    def test_evidence_unknown_entry(self, capsys):
        assert main(["evidence", "ghost"]) == 1
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err.startswith("error: ")
        assert "ghost" in captured.err

    def test_intervals(self, capsys):
        assert main(["intervals"]) == 0
        out = capsys.readouterr().out
        assert "ethics sections: 12/28" in out
        assert "385" in out


class TestErrorMapping:
    """Domain errors become one clean stderr line, never a traceback."""

    def test_lint_unknown_rule_exits_one(self, capsys):
        assert main(["lint", "--select", "R99"]) == 1
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err.startswith("error: ")
        assert "R99" in captured.err

    def test_batch_missing_file_exits_usage(self, tmp_path, capsys):
        missing = tmp_path / "absent.jsonl"
        assert main(["batch", str(missing)]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: cannot read batch file")


class TestOpsParity:
    """CLI stdout is byte-identical to the operation response text.

    The CLI writes ``response.text`` verbatim, so for every
    subcommand the golden form is the kernel's own response — any
    drift between adapter and operation is a parity failure here.
    """

    CASES = [
        ["table1"],
        ["table1", "--format", "csv"],
        ["table1", "--format", "latex"],
        ["table1", "--format", "latex-booktabs"],
        ["report", "render"],
        ["table", "latex"],
        ["table", "latex", "--style", "plain"],
        ["codebook", "merge"],
        ["codebook", "merge", "--strategy", "intersection"],
        ["agreement", "fuzzy"],
        ["agreement", "fuzzy", "--threshold", "0.9"],
        ["stats"],
        ["report"],
        ["legend"],
        ["lint"],
        ["lint", "--format", "json"],
        ["verify"],
        ["evidence", "patreon"],
        ["bibliography"],
        ["bibliography", "--search", "Menlo"],
        ["similarity", "--threshold", "0.7"],
        ["intervals"],
        ["simulate", "booter", "--seed", "5"],
        ["simulate-reb", "--board", "medical", "--seed", "2"],
    ]

    @pytest.mark.parametrize(
        "argv", CASES, ids=lambda argv: " ".join(argv)
    )
    def test_cli_matches_operation_response(self, argv, capsys):
        from repro.ops import execute

        code = main(argv)
        cli_out = capsys.readouterr().out
        args = build_parser().parse_args(argv)
        from repro.ops import default_registry

        operation = default_registry().get(args._operation)
        values = {
            arg.dest: getattr(args, arg.dest)
            for arg in operation.args
        }
        response = execute(operation, values)
        assert cli_out == response.text
        assert code == response.exit_code
