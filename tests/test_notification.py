"""Unit tests for the breach-notification service contrast."""

from __future__ import annotations

import pytest

from repro.datasets import PasswordDumpGenerator
from repro.errors import SafeguardError
from repro.safeguards import (
    AccessSaleService,
    BreachNotificationService,
    BreachRecord,
    password_range_query,
)


def records(seed: int = 1, n: int = 50) -> list[BreachRecord]:
    dump = PasswordDumpGenerator(seed).generate(users=n)
    return [
        BreachRecord(
            breach_name="examplesite-2016",
            email=record.email,
            password=record.password,
        )
        for record in dump.records
    ]


@pytest.fixture()
def service():
    svc = BreachNotificationService(hmac_key=b"k" * 32)
    svc.ingest(records())
    return svc


class TestBreachRecord:
    def test_validation(self):
        with pytest.raises(SafeguardError):
            BreachRecord(breach_name="x", email="nope", password="p")
        with pytest.raises(SafeguardError):
            BreachRecord(breach_name="", email="a@b.c", password="p")


class TestVerificationGate:
    def test_unverified_query_refused(self, service):
        victim = records()[0].email
        with pytest.raises(SafeguardError):
            service.breaches_for(victim)

    def test_verified_owner_sees_breaches(self, service):
        victim = records()[0].email
        token = service.request_verification(victim)
        service.confirm_verification(victim, token)
        assert service.breaches_for(victim) == ("examplesite-2016",)

    def test_wrong_token_refused(self, service):
        victim = records()[0].email
        service.request_verification(victim)
        with pytest.raises(SafeguardError):
            service.confirm_verification(victim, "deadbeef")

    def test_verified_non_victim_sees_empty(self, service):
        email = "innocent@example.org"
        token = service.request_verification(email)
        service.confirm_verification(email, token)
        assert service.breaches_for(email) == ()

    def test_future_breach_notifies_subscriber(self, service):
        email = records()[0].email
        token = service.request_verification(email)
        service.confirm_verification(email, token)
        service.ingest(
            [
                BreachRecord(
                    breach_name="newsite-2017",
                    email=email,
                    password="whatever1",
                )
            ]
        )
        assert (email, "newsite-2017") in (
            service.pending_notifications
        )


class TestRangeQueryProtocol:
    def test_breached_password_found(self, service):
        password = records()[0].password
        assert service.check_password(password)

    def test_unbreached_password_not_found(self, service):
        assert not service.check_password("Xq7#kZp9!mW2vRt5!!")

    def test_client_reveals_only_prefix(self, service):
        import hashlib

        password = records()[0].password
        digest = (
            hashlib.sha1(password.encode()).hexdigest().upper()
        )
        bucket = service.password_bucket(digest[:5])
        # The server response is the whole bucket, not a yes/no for
        # a specific password.
        assert isinstance(bucket[digest[:5]], list)
        assert password_range_query(password, bucket)

    def test_prefix_validation(self, service):
        with pytest.raises(SafeguardError):
            service.password_bucket("zz")
        with pytest.raises(SafeguardError):
            service.password_bucket("GGGGG")

    def test_empty_bucket(self, service):
        bucket = service.password_bucket("00000")
        assert password_range_query("nothere", bucket) in (
            True,
            False,
        )

    def test_service_never_exposes_passwords(self, service):
        assert not service.exposes_passwords()


class TestAccessSaleContrast:
    def test_sale_service_exposes_everything(self):
        sale = AccessSaleService()
        sale.ingest(records())
        victim = records()[0]
        results = sale.lookup(victim.email, payment=5.0)
        # Anyone's plaintext password for five dollars — the conduct
        # that got leakedsource shut down.
        assert results[0].password == victim.password
        assert sale.exposes_passwords()
        assert sale.revenue == 5.0

    def test_sale_service_wants_money(self):
        sale = AccessSaleService()
        with pytest.raises(SafeguardError):
            sale.lookup("a@b.c", payment=0)

    def test_ethical_service_refuses_the_same_query(self, service):
        # The defining contrast: the query the sale service answers
        # is exactly the one the notification service refuses.
        victim = records()[0].email
        with pytest.raises(SafeguardError):
            service.breaches_for(victim)
