"""Unit tests for stakeholder modelling."""

from __future__ import annotations

import pytest

from repro.errors import EthicsModelError
from repro.ethics import (
    ConsentStatus,
    Stakeholder,
    StakeholderRegistry,
    StakeholderRole,
    default_stakeholders,
)


class TestStakeholder:
    def test_roles_validated(self):
        with pytest.raises(EthicsModelError):
            Stakeholder(id="x", name="X", role="observer")

    def test_consent_validated(self):
        with pytest.raises(EthicsModelError):
            Stakeholder(
                id="x",
                name="X",
                role=StakeholderRole.PRIMARY,
                consent="shrug",
            )

    def test_empty_id_rejected(self):
        with pytest.raises(EthicsModelError):
            Stakeholder(id="", name="X", role=StakeholderRole.KEY)

    @pytest.mark.parametrize(
        "consent,needs",
        [
            (ConsentStatus.OBTAINED, False),
            (ConsentStatus.NOT_REQUIRED, False),
            (ConsentStatus.IMPOSSIBLE, True),
            (ConsentStatus.IMPRACTICAL, True),
            (ConsentStatus.NOT_SOUGHT, True),
        ],
    )
    def test_reb_protection_rule(self, consent, needs):
        person = Stakeholder(
            id="x",
            name="X",
            role=StakeholderRole.PRIMARY,
            consent=consent,
        )
        assert person.needs_reb_protection is needs

    def test_corporate_persons_never_need_protection(self):
        company = Stakeholder(
            id="x",
            name="X Corp",
            role=StakeholderRole.SECONDARY,
            natural_person=False,
            consent=ConsentStatus.IMPOSSIBLE,
        )
        assert not company.needs_reb_protection


class TestRegistry:
    def test_duplicate_rejected(self):
        registry = StakeholderRegistry()
        registry.add(
            Stakeholder(id="x", name="X", role=StakeholderRole.KEY)
        )
        with pytest.raises(EthicsModelError):
            registry.add(
                Stakeholder(id="x", name="Y", role=StakeholderRole.KEY)
            )

    def test_unknown_lookup(self):
        with pytest.raises(EthicsModelError):
            StakeholderRegistry()["ghost"]

    def test_role_queries(self):
        registry = default_stakeholders()
        assert len(registry.primary) == 1
        assert len(registry.secondary) == 1
        assert len(registry.key) == 2

    def test_unknown_role_query(self):
        with pytest.raises(EthicsModelError):
            StakeholderRegistry().by_role("nope")

    def test_default_registry_complete(self):
        registry = default_stakeholders()
        assert registry.is_complete()
        assert "data-subjects" in registry

    def test_default_subjects_unprotected(self):
        registry = default_stakeholders()
        unprotected = registry.unprotected()
        assert any(s.id == "data-subjects" for s in unprotected)

    def test_vulnerable_filter(self):
        registry = StakeholderRegistry(
            [
                Stakeholder(
                    id="minor",
                    name="Minors in the data",
                    role=StakeholderRole.PRIMARY,
                    vulnerable=True,
                ),
            ]
        )
        assert len(registry.vulnerable()) == 1

    def test_incomplete_without_key(self):
        registry = StakeholderRegistry(
            [
                Stakeholder(
                    id="p", name="P", role=StakeholderRole.PRIMARY
                )
            ]
        )
        assert not registry.is_complete()
