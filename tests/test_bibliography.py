"""Unit tests for the bibliography."""

from __future__ import annotations

import pytest

from repro.bibliography import Bibliography, Reference, ReferenceType
from repro.errors import BibliographyError


class TestReference:
    def test_cite_single_author(self):
        ref = Reference(
            number=1, key="x2020", authors=("Ada Lovelace",),
            year=2020, title="On engines",
        )
        assert ref.cite() == "Ada Lovelace (2020)"

    def test_cite_two_authors(self):
        ref = Reference(
            number=1, key="x2020",
            authors=("A. One", "B. Two"), year=2020, title="T",
        )
        assert ref.cite() == "A. One and B. Two (2020)"

    def test_cite_many_authors_et_al(self):
        ref = Reference(
            number=1, key="x2020",
            authors=("A. One", "B. Two", "C. Three"),
            year=2020, title="T",
        )
        assert ref.cite() == "A. One et al. (2020)"

    def test_cite_undated(self):
        ref = Reference(
            number=1, key="x", authors=("A",), year=0, title="T",
        )
        assert "n.d." in ref.cite()

    def test_format_includes_number_and_doi(self):
        ref = Reference(
            number=7, key="x2020", authors=("A",), year=2020,
            title="T", venue="V", doi="10.1/xyz",
        )
        formatted = ref.format()
        assert formatted.startswith("[7]")
        assert "doi:10.1/xyz" in formatted

    def test_invalid_number(self):
        with pytest.raises(BibliographyError):
            Reference(number=0, key="x", authors=(), year=2020, title="T")

    def test_invalid_key(self):
        with pytest.raises(BibliographyError):
            Reference(
                number=1, key="Not Slug", authors=(), year=2020, title="T"
            )

    def test_invalid_type(self):
        with pytest.raises(BibliographyError):
            Reference(
                number=1, key="x", authors=(), year=2020, title="T",
                type="zine",
            )

    def test_peer_review_heuristic(self):
        paper = Reference(
            number=1, key="a", authors=(), year=2020, title="T",
            type=ReferenceType.PAPER,
        )
        blog = Reference(
            number=2, key="b", authors=(), year=2020, title="T",
            type=ReferenceType.WEB,
        )
        assert paper.is_peer_reviewed
        assert not blog.is_peer_reviewed


class TestBibliographyRegistry:
    def test_duplicate_number_rejected(self):
        ref = Reference(number=1, key="a", authors=(), year=2020, title="T")
        ref2 = Reference(number=1, key="b", authors=(), year=2020, title="U")
        with pytest.raises(BibliographyError):
            Bibliography([ref, ref2])

    def test_duplicate_key_rejected(self):
        ref = Reference(number=1, key="a", authors=(), year=2020, title="T")
        ref2 = Reference(number=2, key="a", authors=(), year=2020, title="U")
        with pytest.raises(BibliographyError):
            Bibliography([ref, ref2])

    def test_unknown_lookup(self):
        bib = Bibliography([])
        with pytest.raises(BibliographyError):
            bib[1]


class TestPaperBibliography:
    def test_has_all_124_references(self, bibliography):
        assert len(bibliography) == 124
        assert [r.number for r in bibliography] == list(range(1, 125))

    def test_lookup_by_number_and_key(self, bibliography):
        menlo = bibliography[28]
        assert "Menlo" in menlo.title
        assert bibliography["dittrich2012menlo"] is menlo

    def test_key_case_studies_present(self, bibliography):
        assert "Carna" in bibliography[18].title
        assert "password reuse" in bibliography[24].title
        assert "Panama" in bibliography[82].title
        assert bibliography[110].authors[0] == "Daniel R. Thomas"

    def test_laws_typed_as_laws(self, bibliography):
        for number in (1, 2, 21, 22, 37, 38, 39, 40, 41, 88, 108, 112):
            assert bibliography[number].type == ReferenceType.LAW, number

    def test_search_by_title(self, bibliography):
        hits = bibliography.search("booter")
        assert {r.number for r in hits} >= {54, 93}

    def test_search_by_author(self, bibliography):
        hits = bibliography.search("Bonneau")
        assert {r.number for r in hits} >= {13, 24, 32}

    def test_by_year(self, bibliography):
        years_2017 = bibliography.by_year(2017)
        assert any(r.number == 110 for r in years_2017)

    def test_by_type_partitions(self, bibliography):
        total = sum(
            len(bibliography.by_type(t)) for t in ReferenceType.ALL
        )
        assert total == len(bibliography)

    def test_contains(self, bibliography):
        assert 28 in bibliography
        assert "dittrich2012menlo" in bibliography
        assert 999 not in bibliography
