"""Unit tests for the report generators and reproduction report."""

from __future__ import annotations

import pytest

from repro.assessment import assess_project
from repro.reporting import (
    generate_data_management_plan,
    generate_ethics_section,
    generate_reb_application,
    render_report,
    run_reproduction,
)
from tests.test_assessment import booter_project


@pytest.fixture(scope="module")
def assessment():
    return assess_project(booter_project(reb_approved=True))


class TestEthicsSection:
    def test_covers_required_elements(self, assessment):
        text = generate_ethics_section(assessment)
        # §6: obtained / protected / harms / benefits / need.
        assert "leaked without authorization" in text
        assert "safeguards" in text.lower()
        assert "sensitive information" in text
        assert "uniqueness" in text
        assert "Research Ethics Board" in text

    def test_mentions_aup_citation(self, assessment):
        text = generate_ethics_section(assessment)
        assert "https://example.org/aup" in text

    def test_unapproved_project_promises_review(self):
        assessment = assess_project(booter_project(reb_approved=False))
        text = generate_ethics_section(assessment)
        assert "seek review" in text

    def test_consentless_stakeholders_explained(self, assessment):
        text = generate_ethics_section(assessment)
        assert "Informed consent could not be obtained" in text


class TestREBApplication:
    def test_sections_present(self, assessment):
        text = generate_reb_application(assessment)
        for heading in (
            "Stakeholders and consent",
            "Risk-benefit analysis",
            "Menlo principles",
            "Legal analysis",
            "Safeguards",
            "Request",
        ):
            assert heading in text

    def test_risky_project_requests_approval(self, assessment):
        text = generate_reb_application(assessment)
        assert "We request APPROVAL" in text

    def test_riskless_project_requests_exemption(self):
        project = booter_project(harms=())
        text = generate_reb_application(assess_project(project))
        assert "We request EXEMPTION" in text
        assert "insufficient basis" in text


class TestDataManagementPlan:
    def test_sensitivity_table_rendered(self, assessment):
        text = generate_data_management_plan(assessment.project)
        for sensitivity in (
            "derived", "pseudonymised", "identifiable", "toxic",
        ):
            assert sensitivity in text

    def test_controls_checked(self, assessment):
        text = generate_data_management_plan(assessment.project)
        assert "[x] encryption at rest" in text
        assert "[x] controlled sharing" in text

    def test_sharing_recommendation_when_absent(self):
        from repro.assessment import PlannedSafeguards

        project = booter_project(
            safeguards=PlannedSafeguards(privacy_preserved=True)
        )
        text = generate_data_management_plan(project)
        assert "consider controlled sharing" in text


class TestReproductionReport:
    def test_all_outcomes_pass(self, corpus):
        outcomes = run_reproduction(corpus)
        failing = [o for o in outcomes if not o.passed]
        assert not failing, [o.description for o in failing]

    def test_report_renders_markdown_table(self, corpus):
        report = render_report(corpus)
        assert report.startswith("# Reproduction report")
        assert "| E1 |" in report
        assert "E13" in report
        assert "Safeguards: " in report
