"""Unit and integration tests for the assessment engine (incl. E10)."""

from __future__ import annotations

import pytest

from repro.assessment import (
    PlannedSafeguards,
    ResearchProject,
    Verdict,
    assess_project,
    corpus_profiles,
    profile_for,
    publication_checklist,
    validate_legal_reconstruction,
)
from repro.corpus import DataOrigin
from repro.errors import AssessmentError
from repro.ethics import (
    BenefitInstance,
    HarmInstance,
    JustificationFacts,
)
from repro.legal import DataProfile, JurisdictionSet


def booter_project(**overrides) -> ResearchProject:
    """A realistic project: measuring DDoS attacks from booter dumps
    (the Thomas et al. [110] scenario)."""
    defaults = dict(
        title="Measuring booter attacks from leaked databases",
        research_question=(
            "What fraction of UDP amplification attacks do honeypots "
            "observe?"
        ),
        data_description=(
            "Leaked databases of two DDoS-for-hire services."
        ),
        profile=DataProfile(
            origin=DataOrigin.UNAUTHORIZED_LEAK,
            contains_email_addresses=True,
            contains_ip_addresses=True,
            publicly_available=True,
        ),
        harms=(
            HarmInstance(
                description="re-exposure of booter customer emails",
                kind="SI",
                stakeholder_id="data-subjects",
                likelihood=0.5,
                severity=0.5,
            ),
        ),
        benefits=(
            BenefitInstance(
                description="ground truth for DDoS measurement",
                kind="U",
                beneficiary="society",
                magnitude=0.8,
            ),
        ),
        justification_facts=JustificationFacts(
            data_public=True,
            no_alternative_source=True,
            public_interest_case=True,
            secure_handling=True,
        ),
        safeguards=PlannedSafeguards(
            secure_storage=True,
            privacy_preserved=True,
            controlled_sharing=True,
            acceptable_use_policy="https://example.org/aup",
        ),
        jurisdictions=JurisdictionSet.from_codes(["UK", "US"]),
        has_ethics_section=True,
    )
    defaults.update(overrides)
    return ResearchProject(**defaults)


class TestProjectModel:
    def test_requires_title_and_question(self):
        with pytest.raises(AssessmentError):
            booter_project(title="")
        with pytest.raises(AssessmentError):
            booter_project(research_question="")

    def test_unknown_harm_stakeholder(self):
        harm = HarmInstance(
            description="x",
            kind="SI",
            stakeholder_id="ghost",
            likelihood=0.5,
            severity=0.5,
        )
        with pytest.raises(AssessmentError):
            booter_project(harms=(harm,))

    def test_safeguard_codes(self):
        safeguards = PlannedSafeguards(
            encryption_at_rest=True,
            access_control=True,
            privacy_preserved=True,
        )
        assert safeguards.codes() == ("SS", "P")

    def test_mitigated_harms_reduce_risk(self):
        project = booter_project()
        raw = sum(h.residual_risk for h in project.harms)
        mitigated = sum(
            h.residual_risk for h in project.mitigated_harms()
        )
        assert mitigated < raw

    def test_mitigation_capped(self):
        safeguards = PlannedSafeguards(
            secure_storage=True,
            privacy_preserved=True,
            data_minimisation=True,
            pseudonymisation=True,
            controlled_sharing=True,
        )
        for kind in ("SI", "DA", "PA", "RH", "BC", "I"):
            assert 0.0 <= safeguards.mitigation_for(kind) <= 0.9


class TestEngine:
    def test_well_safeguarded_project(self):
        assessment = assess_project(booter_project(reb_approved=True))
        assert assessment.verdict in (
            Verdict.PROCEED,
            Verdict.PROCEED_WITH_SAFEGUARDS,
        )

    def test_unapproved_risky_project_requires_reb(self):
        assessment = assess_project(booter_project(reb_approved=False))
        assert assessment.verdict == Verdict.REQUIRES_REB
        assert any(
            "risk-based trigger" in action
            for action in assessment.required_actions
        )

    def test_indecent_images_blocks(self):
        project = booter_project(
            profile=DataProfile(
                origin=DataOrigin.UNAUTHORIZED_LEAK,
                may_contain_indecent_images=True,
            )
        )
        assessment = assess_project(project)
        assert assessment.verdict == Verdict.DO_NOT_PROCEED

    def test_missing_ethics_section_flagged(self):
        assessment = assess_project(
            booter_project(has_ethics_section=False)
        )
        assert any(
            "ethics section" in action
            for action in assessment.required_actions
        )

    def test_subsidising_party_noted(self):
        assessment = assess_project(booter_project())
        # The data subjects carry risk; society gets the benefit.
        assert any("justice" in note for note in assessment.notes)

    def test_acceptable_justifications_found(self):
        assessment = assess_project(booter_project())
        ids = {
            j.justification_id
            for j in assessment.acceptable_justifications
        }
        assert "necessary-data" in ids

    def test_summary_renders(self):
        assessment = assess_project(booter_project())
        text = assessment.summary()
        assert "Verdict:" in text
        assert "Menlo" in text

    def test_rights_context_blocks_lethal_research(self):
        from repro.ethics import RightsContext

        project = booter_project(
            rights_context=RightsContext(
                identifies_individuals=True,
                implies_criminality=True,
                extrajudicial_violence_risk=True,
            ),
            reb_approved=True,
        )
        assessment = assess_project(project)
        assert assessment.verdict == Verdict.DO_NOT_PROCEED
        assert any(
            risk.right.id == "life" for risk in assessment.rights_risks
        )

    def test_rights_context_without_life_risk_requires_reb(self):
        from repro.ethics import RightsContext

        project = booter_project(
            rights_context=RightsContext(
                identifies_individuals=True,
                contains_private_life=True,
            ),
            reb_approved=True,
        )
        assessment = assess_project(project)
        assert assessment.verdict == Verdict.REQUIRES_REB
        assert any(
            "human rights" in action
            for action in assessment.required_actions
        )

    def test_default_rights_context_empty(self):
        assessment = assess_project(booter_project())
        assert assessment.rights_risks == ()


class TestChecklist:
    def test_ready_project_passes_required(self):
        assessment = assess_project(booter_project(reb_approved=True))
        checklist = publication_checklist()
        assert checklist.ready(assessment)

    def test_unready_project_fails(self):
        assessment = assess_project(
            booter_project(
                has_ethics_section=False, reb_approved=False
            )
        )
        checklist = publication_checklist()
        assert not checklist.ready(assessment)

    def test_report_counts(self):
        assessment = assess_project(booter_project(reb_approved=True))
        report = publication_checklist().report(assessment)
        assert "items pass" in report


class TestCorpusProfiles:
    def test_profiles_cover_corpus(self, corpus):
        profiles = corpus_profiles()
        assert set(profiles) == set(corpus.entry_ids)

    def test_unknown_entry(self):
        with pytest.raises(AssessmentError):
            profile_for("nope")

    def test_e10_reconstruction_all_pass(self, corpus):
        checks = validate_legal_reconstruction(corpus)
        failing = [c.describe() for c in checks if not c.ok]
        assert len(checks) == 30
        assert not failing, failing
