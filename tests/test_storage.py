"""Unit and property tests for the secure storage container."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import IntegrityError, SafeguardError
from repro.safeguards import SecureContainer, StoragePolicy, derive_key


class TestDeriveKey:
    def test_deterministic(self):
        salt = b"0123456789abcdef"
        assert derive_key("pass", salt) == derive_key("pass", salt)

    def test_salt_matters(self):
        assert derive_key("pass", b"a" * 16) != derive_key(
            "pass", b"b" * 16
        )

    def test_short_salt_rejected(self):
        with pytest.raises(SafeguardError):
            derive_key("pass", b"ab")

    def test_empty_passphrase_rejected(self):
        with pytest.raises(SafeguardError):
            derive_key("", b"0123456789abcdef")


class TestSecureContainer:
    def test_roundtrip(self):
        container = SecureContainer("correct horse battery staple")
        sealed = container.seal(b"the booter database")
        assert container.open(sealed) == b"the booter database"

    def test_wrong_passphrase_fails_closed(self):
        sealed = SecureContainer("right").seal(b"data")
        with pytest.raises(IntegrityError):
            SecureContainer("wrong").open(sealed)

    def test_tampering_detected_every_byte(self):
        container = SecureContainer("pass")
        sealed = bytearray(container.seal(b"sensitive"))
        for index in range(0, len(sealed), 7):
            corrupted = bytearray(sealed)
            corrupted[index] ^= 0x01
            with pytest.raises(IntegrityError):
                container.open(bytes(corrupted))

    def test_truncation_detected(self):
        container = SecureContainer("pass")
        sealed = container.seal(b"sensitive")
        with pytest.raises(IntegrityError):
            container.open(sealed[:10])

    def test_not_a_container(self):
        with pytest.raises(IntegrityError):
            SecureContainer("pass").open(b"Z" * 100)

    def test_empty_plaintext_roundtrips(self):
        container = SecureContainer("pass")
        assert container.open(container.seal(b"")) == b""

    def test_nondeterministic_sealing(self):
        # Fresh salt+nonce per seal: identical plaintexts must not
        # produce identical ciphertexts.
        container = SecureContainer("pass")
        assert container.seal(b"same") != container.seal(b"same")

    def test_non_bytes_rejected(self):
        with pytest.raises(SafeguardError):
            SecureContainer("pass").seal("text")  # type: ignore

    def test_empty_passphrase_rejected(self):
        with pytest.raises(SafeguardError):
            SecureContainer("")

    @settings(max_examples=25, deadline=None)
    @given(st.binary(max_size=2048))
    def test_roundtrip_property(self, payload):
        container = SecureContainer("property-pass")
        assert container.open(container.seal(payload)) == payload


class TestStoragePolicy:
    def test_default_conformant(self):
        assert StoragePolicy().conformant

    def test_each_violation_reported(self):
        policy = StoragePolicy(
            encrypted_at_rest=False,
            access_controlled=False,
            audit_logged=False,
            offline_backups_encrypted=False,
            raw_data_never_public=False,
        )
        assert len(policy.violations()) == 5
        assert not policy.conformant
