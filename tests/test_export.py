"""Unit tests for telemetry egress: exporters, buckets, merges."""

from __future__ import annotations

import json

from repro.observability import (
    BUCKET_BOUNDS,
    NULL_METRICS,
    AuditTrail,
    MetricsRegistry,
    Tracer,
    load_events,
    registry_from_events,
    render_otlp,
    render_prometheus,
    span_forest,
)


class TestHistogramBuckets:
    def test_fixed_bounds_are_decade_grid(self):
        assert len(BUCKET_BOUNDS) == 16
        assert BUCKET_BOUNDS[0] == 1e-06
        assert BUCKET_BOUNDS[-1] == 1e09

    def test_observations_land_in_le_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("x.seconds")
        histogram.observe(0.001)  # exactly on a bound -> that bucket
        histogram.observe(0.0005)
        histogram.observe(5e9)  # beyond the last bound -> overflow
        buckets = histogram.summary()["buckets"]
        assert len(buckets) == len(BUCKET_BOUNDS) + 1
        assert buckets[BUCKET_BOUNDS.index(0.001)] == 2
        assert buckets[-1] == 1
        assert sum(buckets) == 3

    def test_empty_summary_has_no_buckets(self):
        registry = MetricsRegistry()
        summary = registry.histogram("x").summary()
        assert summary == {
            "count": 0,
            "total": 0.0,
            "min": 0.0,
            "max": 0.0,
        }

    def test_bucket_counts_deterministic_across_splits(self):
        # Summing the same observations through 1, 2 or 4 registries
        # then merging must yield identical buckets — the property
        # that makes exports worker-count-invariant.
        values = [((i * 37) % 100 + 1) / 13.0 for i in range(60)]
        merged_summaries = []
        for splits in (1, 2, 4):
            registries = [MetricsRegistry() for _ in range(splits)]
            for index, value in enumerate(values):
                registries[index % splits].histogram(
                    "work.seconds"
                ).observe(value)
            target = MetricsRegistry()
            for registry in registries:
                target.merge(registry.snapshot())
            merged_summaries.append(
                target.snapshot()["histograms"]["work.seconds"]
            )
        assert merged_summaries[0] == merged_summaries[1]
        assert merged_summaries[1] == merged_summaries[2]


class TestMergeSemantics:
    def test_counters_and_gauges_merge_differently(self):
        left = MetricsRegistry()
        right = MetricsRegistry()
        left.counter("events").inc(3)
        right.counter("events").inc(4)
        left.gauge("depth").set(5)
        right.gauge("depth").set(2)
        left.merge(right.snapshot())
        snapshot = left.snapshot()
        # Counters accumulate; gauges keep the maximum observed (the
        # peak-occupancy semantics the pipeline merge relies on).
        assert snapshot["counters"]["events"] == 7
        assert snapshot["gauges"]["depth"] == 5
        right.merge(left.snapshot())
        assert right.snapshot()["gauges"]["depth"] == 5

    def test_merge_skips_absent_min_max(self):
        # A summary claiming count>0 but missing min/max (a hostile
        # or truncated snapshot) must not fold 0.0 into the running
        # extrema.
        registry = MetricsRegistry()
        registry.histogram("x").observe(5.0)
        registry.merge({"histograms": {"x": {"count": 2, "total": 9.0}}})
        summary = registry.snapshot()["histograms"]["x"]
        assert summary["min"] == 5.0
        assert summary["max"] == 5.0
        assert summary["count"] == 3

    def test_merge_empty_summary_is_noop_on_extrema(self):
        registry = MetricsRegistry()
        registry.histogram("x").observe(2.0)
        empty = MetricsRegistry()
        empty.histogram("x")  # count == 0
        registry.merge(empty.snapshot())
        summary = registry.snapshot()["histograms"]["x"]
        assert summary["min"] == 2.0 and summary["max"] == 2.0


class TestPrometheusRenderer:
    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry().snapshot()) == ""
        assert render_otlp(MetricsRegistry().snapshot())  # valid doc

    def test_counter_gauge_histogram_series(self):
        registry = MetricsRegistry()
        registry.counter("pipeline.records").inc(12)
        registry.gauge("audit.chain.intact").set(1)
        registry.histogram("run.seconds").observe(0.5)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE repro_pipeline_records_total counter" in text
        assert "repro_pipeline_records_total 12" in text
        assert "repro_audit_chain_intact 1" in text
        assert 'repro_run_seconds_bucket{le="1.0"} 1' in text
        assert 'repro_run_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_run_seconds_sum 0.5" in text
        assert "repro_run_seconds_count 1" in text
        assert text.endswith("\n")

    def test_bucket_series_is_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("x")
        for value in (1e-05, 1e-03, 1e-01):
            histogram.observe(value)
        lines = render_prometheus(registry.snapshot()).splitlines()
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in lines
            if "_bucket" in line
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 3

    def test_rendering_is_byte_stable(self):
        registry = MetricsRegistry()
        registry.counter("a.b").inc(2)
        registry.histogram("c.d").observe(0.25)
        snapshot = registry.snapshot()
        assert render_prometheus(snapshot) == render_prometheus(
            snapshot
        )


class TestPrometheusHelpLines:
    def test_help_precedes_type_for_described_instruments(self):
        registry = MetricsRegistry()
        registry.counter("ops.cache.hits").inc(3)
        registry.gauge("audit.chain.length").set(9)
        registry.histogram("pipeline.run.seconds").observe(0.5)
        lines = render_prometheus(registry.snapshot()).splitlines()
        for metric in (
            "repro_ops_cache_hits_total",
            "repro_audit_chain_length",
            "repro_pipeline_run_seconds",
        ):
            type_index = lines.index(
                next(
                    line
                    for line in lines
                    if line.startswith(f"# TYPE {metric} ")
                )
            )
            assert lines[type_index - 1].startswith(
                f"# HELP {metric} "
            )

    def test_help_lines_alphabetical_within_kind(self):
        registry = MetricsRegistry()
        registry.counter("pipeline.records").inc(1)
        registry.counter("audit.events").inc(1)
        registry.counter("ops.cache.misses").inc(1)
        lines = render_prometheus(registry.snapshot()).splitlines()
        help_lines = [
            line for line in lines if line.startswith("# HELP")
        ]
        assert help_lines == sorted(help_lines)
        assert len(help_lines) == 3

    def test_prefix_families_and_unknown_names(self):
        registry = MetricsRegistry()
        registry.histogram("span.stage.seal.seconds").observe(0.1)
        registry.counter(
            "audit.events.pipeline.run_started"
        ).inc(1)
        registry.counter("made.up.instrument").inc(1)
        text = render_prometheus(registry.snapshot())
        assert (
            "# HELP repro_span_stage_seal_seconds "
            "Duration distribution in seconds" in text
        )
        assert (
            "# HELP repro_audit_events_pipeline_run_started_total "
            "Audit events observed" in text
        )
        # Unknown instruments get no made-up HELP line.
        assert "# HELP repro_made_up_instrument" not in text
        assert "# TYPE repro_made_up_instrument_total counter" in text

    def test_describe_instrument_resolution(self):
        from repro.observability.export import (
            INSTRUMENT_HELP,
            describe_instrument,
        )

        assert describe_instrument("ops.cache.hits") == (
            INSTRUMENT_HELP["ops.cache.hits"]
        )
        # Exact entries win over the matching prefix family.
        assert describe_instrument("audit.events") == (
            INSTRUMENT_HELP["audit.events"]
        )
        assert describe_instrument("audit.events.a.b") != (
            INSTRUMENT_HELP["audit.events"]
        )
        assert describe_instrument("nope") is None
        assert sorted(INSTRUMENT_HELP) == list(INSTRUMENT_HELP)


class TestOtlpRenderer:
    def test_document_shape(self):
        registry = MetricsRegistry()
        registry.counter("events").inc(4)
        registry.gauge("ratio").set(0.5)
        registry.histogram("lat").observe(0.1)
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        document = json.loads(
            render_otlp(registry.snapshot(), tracer.finished)
        )
        metrics = document["resourceMetrics"][0]["scopeMetrics"][0][
            "metrics"
        ]
        by_name = {metric["name"]: metric for metric in metrics}
        assert by_name["events"]["sum"]["isMonotonic"] is True
        assert by_name["events"]["sum"]["dataPoints"] == [
            {"asInt": "4"}
        ]
        assert by_name["ratio"]["gauge"]["dataPoints"] == [
            {"asDouble": 0.5}
        ]
        point = by_name["lat"]["histogram"]["dataPoints"][0]
        assert point["count"] == "1"
        assert point["explicitBounds"] == list(BUCKET_BOUNDS)
        spans = document["resourceSpans"][0]["scopeSpans"][0]["spans"]
        assert [span["name"] for span in spans] == ["outer", "inner"]
        assert spans[1]["parentSpanId"] == spans[0]["spanId"]
        assert spans[0].get("parentSpanId") is None

    def test_span_ids_deterministic(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        registry = MetricsRegistry()
        first = render_otlp(registry.snapshot(), tracer.finished)
        second = render_otlp(registry.snapshot(), tracer.finished)
        assert first == second


class TestSpanForest:
    def test_nesting_reconstructed(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child.a"):
                pass
            with tracer.span("child.b"):
                with tracer.span("leaf"):
                    pass
        forest = span_forest(tracer.finished)
        assert len(forest) == 1
        root = forest[0]
        assert root["name"] == "root"
        assert [c["name"] for c in root["children"]] == [
            "child.a",
            "child.b",
        ]
        assert root["children"][1]["children"][0]["name"] == "leaf"

    def test_empty_input(self):
        assert span_forest(()) == []


class TestRegistryFromEvents:
    def _trail_events(self, tmp_path):
        trail = AuditTrail(tmp_path / "audit.jsonl")
        trail.event("pipeline", "run-started", workers=2)
        trail.event("pipeline", "stage-applied", subject="seal")
        trail.event("pipeline", "stage-applied", subject="scrub")
        trail.event("storage", "sealed", subject="blob")
        trail.close()
        return load_events(trail.path)

    def test_counters_and_anchors(self, tmp_path):
        events = self._trail_events(tmp_path)
        snapshot = registry_from_events(events).snapshot()
        assert snapshot["counters"]["audit.events"] == 4
        assert (
            snapshot["counters"][
                "audit.events.pipeline.stage_applied"
            ]
            == 2
        )
        assert snapshot["counters"]["audit.events.storage.sealed"] == 1
        assert snapshot["gauges"]["audit.chain.length"] == 4
        assert snapshot["gauges"]["audit.chain.intact"] == 1

    def test_same_events_same_bytes(self, tmp_path):
        events = self._trail_events(tmp_path)
        first = render_prometheus(
            registry_from_events(events).snapshot()
        )
        second = render_prometheus(
            registry_from_events(events).snapshot()
        )
        assert first == second

    def test_empty_chain(self):
        snapshot = registry_from_events([]).snapshot()
        assert snapshot["counters"]["audit.events"] == 0
        assert snapshot["gauges"]["audit.chain.intact"] == 1


class TestNullInstrumentPassthrough:
    def test_null_registry_accepts_everything(self):
        # Instrumented code must not branch on enablement: the null
        # registry swallows the whole instrument API at no cost.
        NULL_METRICS.counter("a.b").inc(5)
        NULL_METRICS.gauge("c.d").set(2)
        NULL_METRICS.histogram("e.f").observe(0.5)
        assert NULL_METRICS.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        assert not NULL_METRICS.enabled

    def test_null_registry_renders_empty(self):
        assert render_prometheus(NULL_METRICS.snapshot()) == ""
