"""Unit tests for the annotation / adjudication machinery."""

from __future__ import annotations

import pytest

from repro.codebook import CellValue, paper_codebook
from repro.coding import (
    AdjudicationSession,
    Annotation,
    AnnotationSet,
    Coder,
    annotations_from_corpus,
)
from repro.errors import CodingError


@pytest.fixture()
def codebook():
    return paper_codebook()


def _value_annotation(entry="e1", dim="justice", value=CellValue.DISCUSSED):
    return Annotation(entry_id=entry, dimension_id=dim, value=value)


class TestAnnotation:
    def test_needs_exactly_one_payload(self):
        with pytest.raises(CodingError):
            Annotation(entry_id="e", dimension_id="d")
        with pytest.raises(CodingError):
            Annotation(
                entry_id="e",
                dimension_id="d",
                value=CellValue.DISCUSSED,
                codes=("P",),
            )

    def test_label_for_value(self):
        assert _value_annotation().label == "discussed"

    def test_label_for_codes_sorted(self):
        annotation = Annotation(
            entry_id="e", dimension_id="safeguards", codes=("P", "CS")
        )
        assert annotation.label == "CS+P"

    def test_label_for_empty_codes(self):
        annotation = Annotation(
            entry_id="e", dimension_id="safeguards", codes=()
        )
        assert annotation.label == "-"


class TestAnnotationSet:
    def test_add_and_get(self, codebook):
        coder = Coder(id="alice")
        annotations = AnnotationSet(coder, codebook)
        annotations.add(_value_annotation())
        assert annotations.get("e1", "justice").label == "discussed"
        assert annotations.get("e1", "nope") is None

    def test_rejects_wrong_payload_kind(self, codebook):
        annotations = AnnotationSet(Coder(id="a"), codebook)
        with pytest.raises(CodingError):
            annotations.add(
                Annotation(
                    entry_id="e", dimension_id="justice", codes=("P",)
                )
            )
        with pytest.raises(CodingError):
            annotations.add(
                Annotation(
                    entry_id="e",
                    dimension_id="safeguards",
                    value=CellValue.DISCUSSED,
                )
            )

    def test_rejects_disallowed_value(self, codebook):
        annotations = AnnotationSet(Coder(id="a"), codebook)
        with pytest.raises(CodingError):
            annotations.add(
                _value_annotation(dim="justice", value=CellValue.EXEMPT)
            )

    def test_rejects_duplicate_key(self, codebook):
        annotations = AnnotationSet(Coder(id="a"), codebook)
        annotations.add(_value_annotation())
        with pytest.raises(CodingError):
            annotations.add(_value_annotation())

    def test_coder_id_required(self):
        with pytest.raises(CodingError):
            Coder(id="")


class TestAnnotationsFromCorpus:
    def test_covers_all_cells(self, corpus):
        annotations = annotations_from_corpus(corpus, Coder(id="paper"))
        # 18 closed dimensions + 3 open per entry.
        assert len(annotations) == len(corpus) * (18 + 3)

    def test_matches_corpus_values(self, corpus):
        annotations = annotations_from_corpus(corpus, Coder(id="paper"))
        annotation = annotations.get("patreon", "no-additional-harm")
        assert annotation.value is CellValue.DECLINED


class TestAdjudication:
    def _sets(self, codebook, labels_by_coder):
        sets = []
        for coder_id, value in labels_by_coder.items():
            annotations = AnnotationSet(Coder(id=coder_id), codebook)
            annotations.add(_value_annotation(value=value))
            sets.append(annotations)
        return sets

    def test_needs_two_coders(self, codebook):
        with pytest.raises(CodingError):
            AdjudicationSession(
                [AnnotationSet(Coder(id="a"), codebook)]
            )

    def test_majority_wins(self, codebook):
        sets = self._sets(
            codebook,
            {
                "a": CellValue.DISCUSSED,
                "b": CellValue.DISCUSSED,
                "c": CellValue.NOT_DISCUSSED,
            },
        )
        session = AdjudicationSession(sets)
        consensus = session.consensus(Coder(id="judge"))
        assert (
            consensus.get("e1", "justice").value is CellValue.DISCUSSED
        )

    def test_disagreements_listed(self, codebook):
        sets = self._sets(
            codebook,
            {"a": CellValue.DISCUSSED, "b": CellValue.NOT_DISCUSSED},
        )
        session = AdjudicationSession(sets)
        disagreements = session.disagreements()
        assert len(disagreements) == 1
        assert "justice" in disagreements[0].describe()

    def test_tie_requires_resolution(self, codebook):
        sets = self._sets(
            codebook,
            {"a": CellValue.DISCUSSED, "b": CellValue.NOT_DISCUSSED},
        )
        session = AdjudicationSession(sets)
        with pytest.raises(CodingError):
            session.consensus(Coder(id="judge"))
        session.resolve(
            "e1",
            "justice",
            _value_annotation(value=CellValue.NOT_DISCUSSED),
        )
        consensus = session.consensus(Coder(id="judge"))
        assert (
            consensus.get("e1", "justice").value
            is CellValue.NOT_DISCUSSED
        )

    def test_resolution_key_mismatch(self, codebook):
        sets = self._sets(
            codebook,
            {"a": CellValue.DISCUSSED, "b": CellValue.NOT_DISCUSSED},
        )
        session = AdjudicationSession(sets)
        with pytest.raises(CodingError):
            session.resolve(
                "other", "justice", _value_annotation()
            )

    def test_duplicate_coder_ids_rejected(self, codebook):
        sets = self._sets(codebook, {"a": CellValue.DISCUSSED})
        sets.append(sets[0])
        with pytest.raises(CodingError):
            AdjudicationSession(sets)

    def test_agreeing_coders_no_disagreement(self, codebook):
        sets = self._sets(
            codebook,
            {"a": CellValue.DISCUSSED, "b": CellValue.DISCUSSED},
        )
        session = AdjudicationSession(sets)
        assert session.disagreements() == []
        consensus = session.consensus(Coder(id="judge"))
        assert len(consensus) == 1
