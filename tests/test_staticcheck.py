"""Unit tests for the staticcheck policy linter (rules R1-R7).

The interprocedural rules (R8/R9), the project graph and the
incremental cache live in ``test_staticcheck_project.py``; reporter
golden output lives in ``test_staticcheck_reporters.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import StaticCheckError
from repro.staticcheck import (
    BaselineEntry,
    Finding,
    LintEngine,
    ModuleInfo,
    Rule,
    RuleRegistry,
    baseline_drift,
    check_consistency,
    default_registry,
    render_json,
    render_text,
    summarize,
)


def lint(source: str, relpath: str) -> list:
    return LintEngine(default_registry()).lint_source(source, relpath)


def failing(source: str, relpath: str) -> list:
    return [f for f in lint(source, relpath) if not f.suppressed]


def rule_ids(findings) -> set[str]:
    return {f.rule_id for f in findings}


class TestEngine:
    def test_syntax_error_raises(self):
        with pytest.raises(StaticCheckError):
            LintEngine().lint_source("def broken(:", "ethics/x.py")

    def test_registry_rejects_duplicates(self):
        class Dupe(Rule):
            id = "R2"

        with pytest.raises(StaticCheckError):
            default_registry().register(Dupe())

    def test_select_unknown_rule(self):
        with pytest.raises(StaticCheckError):
            default_registry().select(["R99"])

    def test_select_subset(self):
        registry = default_registry().select(["R2", "R3"])
        assert registry.rule_ids == ("R2", "R3")

    def test_import_alias_resolution(self):
        module = ModuleInfo(
            "import datetime\nfrom ..datasets import ForumGenerator\n",
            "reporting/x.py",
        )
        aliases = module.import_aliases()
        assert aliases["datetime"] == "datetime"
        assert aliases["ForumGenerator"] == (
            "repro.datasets.ForumGenerator"
        )


class TestR1SafeguardBoundary:
    def test_raw_import_without_anonymization(self):
        found = failing(
            "from ..datasets import PasswordDumpGenerator\n",
            "reporting/x.py",
        )
        assert rule_ids(found) == {"R1"}
        assert found[0].line == 1

    def test_raw_value_escapes_via_call_and_return(self):
        found = failing(
            "from ..datasets import PasswordDumpGenerator\n"
            "from ..anonymization import TextScrubber\n"
            "def report(seed):\n"
            "    dump = PasswordDumpGenerator(seed).generate()\n"
            "    publish(dump)\n"
            "    return dump\n",
            "reporting/x.py",
        )
        assert [f.line for f in found] == [5, 6]
        assert rule_ids(found) == {"R1"}

    def test_sanitised_flow_is_clean(self):
        assert not failing(
            "from ..datasets import PasswordDumpGenerator\n"
            "from ..anonymization import TextScrubber\n"
            "def report(seed):\n"
            "    dump = PasswordDumpGenerator(seed).generate()\n"
            "    scrubber = TextScrubber()\n"
            "    clean = scrubber.scrub(dump)\n"
            "    publish(clean)\n"
            "    return clean\n",
            "reporting/x.py",
        )

    def test_inline_sanitizer_call_is_clean(self):
        assert not failing(
            "from ..datasets import ForumGenerator\n"
            "from ..anonymization import Pseudonymizer\n"
            "def report(seed):\n"
            "    forum = ForumGenerator(seed).generate()\n"
            "    return publish(Pseudonymizer(forum))\n",
            "reporting/x.py",
        )

    def test_rule_scoped_to_outbound_modules(self):
        source = "from ..datasets import PasswordDumpGenerator\n"
        assert failing(source, "safeguards/sharing.py")
        assert not failing(source, "metrics/guessing.py")
        assert not failing(source, "safeguards/storage.py")


class TestR2Determinism:
    def test_global_rng_flagged(self):
        found = failing(
            "import random\nrandom.choice([1, 2])\n", "datasets/x.py"
        )
        assert rule_ids(found) == {"R2"}

    def test_from_import_flagged(self):
        found = failing(
            "from random import choice\nchoice([1, 2])\n",
            "analysis/x.py",
        )
        assert rule_ids(found) == {"R2"}

    def test_clock_and_uuid_flagged(self):
        found = failing(
            "import datetime\nimport uuid\nimport time\n"
            "datetime.datetime.now()\nuuid.uuid4()\ntime.time()\n",
            "datasets/x.py",
        )
        assert [f.line for f in found] == [4, 5, 6]

    def test_seeded_random_instance_allowed(self):
        assert not failing(
            "import random\nrng = random.Random(7)\nrng.random()\n",
            "datasets/x.py",
        )

    def test_out_of_scope_modules_ignored(self):
        assert not failing(
            "import random\nrandom.random()\n", "reb/simulation.py"
        )


class TestR3PIILiterals:
    def test_realistic_email_flagged(self):
        found = failing('address = "jo.doe@gmail.com"\n', "ethics/x.py")
        assert rule_ids(found) == {"R3"}

    def test_documentation_email_allowed(self):
        assert not failing(
            'a = "jo@example.com"\nb = "jo@mail.example"\n'
            'c = "jo@corp.test"\n',
            "ethics/x.py",
        )

    def test_routable_ip_flagged_reserved_allowed(self):
        found = failing(
            'bad = "8.8.8.8"\ndoc = "198.51.100.7"\n'
            'private = "10.0.0.1"\nloop = "127.0.0.1"\n',
            "datasets/x.py",
        )
        assert [f.line for f in found] == [1]

    def test_routable_ipv6_flagged(self):
        found = failing(
            'bad = "2606:4700::1111"\n'
            'also = "2001:470:1f0b:1000::1"\n',
            "datasets/x.py",
        )
        assert rule_ids(found) == {"R3"}
        assert [f.line for f in found] == [1, 2]

    def test_reserved_ipv6_allowed(self):
        assert not failing(
            'doc = "2001:db8::1"\nloop = "::1"\n'
            'link = "fe80::1"\nula = "fd12:3456:789a::1"\n',
            "datasets/x.py",
        )

    def test_slice_syntax_not_flagged(self):
        # x[1::2] strips to "1::2", a valid global IPv6 address; the
        # slice-shape carve-out must keep plain code unflagged.
        assert not failing(
            "evens = items[::2]\nodds = items[1::2]\n"
            "rev = items[::-1]\nstep = items[2::3]\n",
            "analysis/x.py",
        )

    def test_version_strings_not_flagged(self):
        assert not failing(
            'doi = "10.14746/pp.2016.21.2.11"\nv = "1.2.3"\n',
            "bibliography/x.py",
        )

    def test_phone_number_flagged_555_allowed(self):
        found = failing(
            'a = "call 415-867-5309"\nb = "call 415-555-0123"\n',
            "reb/x.py",
        )
        assert [f.line for f in found] == [1]

    def test_comments_scanned(self):
        found = failing(
            "x = 1  # ask ops@internal.io about this\n", "legal/x.py"
        )
        assert rule_ids(found) == {"R3"}


class _Entry:
    """Minimal corpus-entry stand-in for consistency fixtures."""

    def __init__(self, id, values, code_sets):
        self.id = id
        self.values = values
        self.code_sets = code_sets


class _Stats:
    def __init__(self, **counts):
        self.__dict__.update(counts)


class TestR4Consistency:
    def _codebook(self):
        from repro.codebook import paper_codebook

        return paper_codebook()

    def _complete_stats(self, codebook):
        def members(dim_id):
            return {
                c.abbrev: 0 for c in codebook[dim_id].members
            }

        def group(name):
            return {d.id: 0 for d in codebook.group(name)}

        return _Stats(
            safeguard_counts=members("safeguards"),
            harm_counts=members("harms"),
            benefit_counts=members("benefits"),
            justification_counts=group("justification"),
            ethical_issue_counts=group("ethical"),
            legal_issue_counts=group("legal"),
        )

    def _complete_entry(self, codebook, id="entry-a"):
        values = {
            d.id: d.allowed[0] for d in codebook.closed_dimensions()
        }
        code_sets = {
            d.id: () for d in codebook.open_dimensions()
        }
        return _Entry(id, values, code_sets)

    def test_consistent_data_passes(self):
        codebook = self._codebook()
        findings = check_consistency(
            codebook,
            [self._complete_entry(codebook)],
            self._complete_stats(codebook),
        )
        assert findings == []

    def test_missing_closed_dimension_flagged(self):
        codebook = self._codebook()
        entry = self._complete_entry(codebook)
        del entry.values["computer-misuse"]
        findings = check_consistency(
            codebook, [entry], self._complete_stats(codebook)
        )
        assert any("computer-misuse" in f.message for f in findings)

    def test_orphan_coding_flagged(self):
        codebook = self._codebook()
        entry = self._complete_entry(codebook)
        entry.values["no-such-dimension"] = None
        findings = check_consistency(
            codebook, [entry], self._complete_stats(codebook)
        )
        assert any(
            "no-such-dimension" in f.message for f in findings
        )

    def test_stats_omission_and_orphan_flagged(self):
        codebook = self._codebook()
        stats = self._complete_stats(codebook)
        del stats.safeguard_counts["P"]
        stats.harm_counts["ZZ"] = 1
        findings = check_consistency(
            codebook, [self._complete_entry(codebook)], stats
        )
        messages = "\n".join(f.message for f in findings)
        assert "omits codebook member 'P'" in messages
        assert "orphan key 'ZZ'" in messages
        assert all(
            f.path == "src/repro/analysis/section5.py"
            for f in findings
        )


class TestR5AuditBoundary:
    UNAUDITED = (
        "class Register:\n"
        "    def grant(self, who):\n"
        "        self.holders[who] = True\n"
        "        return who\n"
    )

    def test_unaudited_mutation_flagged(self):
        found = failing(self.UNAUDITED, "safeguards/x.py")
        assert rule_ids(found) == {"R5"}
        assert "Register.grant" in found[0].message
        assert found[0].line == 2

    def test_mutator_call_flagged(self):
        found = failing(
            "class Register:\n"
            "    def grant(self, who):\n"
            "        self._holders.append(who)\n",
            "safeguards/x.py",
        )
        assert rule_ids(found) == {"R5"}

    def test_audit_event_call_passes(self):
        assert not failing(
            "from ..observability import audit_event\n"
            "class Register:\n"
            "    def grant(self, who):\n"
            "        self.holders[who] = True\n"
            "        audit_event('sharing', 'grant', subject=who)\n",
            "safeguards/x.py",
        )

    def test_own_audit_log_attribute_passes(self):
        assert not failing(
            "class Controller:\n"
            "    def grant(self, who):\n"
            "        self._grants.add(who)\n"
            "        self.audit.append(('grant', who))\n",
            "safeguards/x.py",
        )
        assert not failing(
            "class Controller:\n"
            "    def grant(self, who):\n"
            "        self._grants.add(who)\n"
            "        self._trail.event('access', 'grant')\n",
            "safeguards/x.py",
        )

    def test_private_methods_and_reads_ignored(self):
        assert not failing(
            "class Register:\n"
            "    def _rebuild(self):\n"
            "        self.cache = {}\n"
            "    def holders(self):\n"
            "        ordered = sorted(self._holders)\n"
            "        return ordered\n",
            "safeguards/x.py",
        )

    def test_outside_safeguards_ignored(self):
        assert not failing(self.UNAUDITED, "reb/x.py")


class TestR6TelemetryNaming:
    def test_conforming_instrument_names_pass(self):
        assert not failing(
            "def run(registry, tracer):\n"
            "    registry.counter('pipeline.records').inc()\n"
            "    registry.gauge('audit.chain.length').set(1)\n"
            "    registry.histogram('pipeline.run.seconds')\n"
            "    with tracer.span('pipeline.run'):\n"
            "        pass\n",
            "observability/x.py",
        )

    def test_uppercase_instrument_name_flagged(self):
        found = failing(
            "def run(registry):\n"
            "    registry.counter('Pipeline.Records').inc()\n",
            "pipeline/x.py",
        )
        assert rule_ids(found) == {"R6"}
        assert "dotted snake_case" in found[0].message
        assert found[0].line == 2

    def test_hyphenated_span_name_flagged(self):
        found = failing(
            "def run(tracer):\n"
            "    with tracer.span('seal-stage'):\n"
            "        pass\n",
            "pipeline/x.py",
        )
        assert rule_ids(found) == {"R6"}

    def test_fstring_fragments_checked(self):
        assert not failing(
            "def run(registry, name):\n"
            "    registry.histogram(f'span.{name}.seconds')\n",
            "observability/x.py",
        )
        found = failing(
            "def run(registry, name):\n"
            "    registry.histogram(f'Span-{name}.Seconds')\n",
            "observability/x.py",
        )
        assert rule_ids(found) == {"R6"}

    def test_non_string_and_zero_arg_calls_skipped(self):
        # re.Match.span(1) and found.span() are not telemetry.
        assert not failing(
            "def run(match, found):\n"
            "    match.span(1)\n"
            "    found.span()\n",
            "anonymization/x.py",
        )

    def test_variable_names_skipped(self):
        assert not failing(
            "def run(registry, name):\n"
            "    registry.counter(name).inc()\n",
            "pipeline/x.py",
        )

    def test_audit_event_bad_action_flagged(self):
        found = failing(
            "from ..observability import audit_event\n"
            "def run():\n"
            "    audit_event('pipeline', 'Run Started')\n",
            "pipeline/x.py",
        )
        assert rule_ids(found) == {"R6"}
        assert "action" in found[0].message

    def test_audit_event_kebab_action_passes(self):
        assert not failing(
            "from ..observability import audit_event\n"
            "def run(n):\n"
            "    audit_event('pipeline', 'run-started', workers=n)\n",
            "pipeline/x.py",
        )

    def test_package_is_r6_clean(self):
        from repro.staticcheck import lint_repo

        assert not [
            finding
            for finding in lint_repo(("R6",), with_baseline=False)
            if not finding.suppressed
        ]


class TestR7Layering:
    def test_direct_subsystem_import_flagged(self):
        found = failing(
            "from ..datasets import PasswordDumpGenerator\n",
            "cli/main.py",
        )
        assert rule_ids(found) == {"R7"}
        assert "repro.datasets" in found[0].message

    def test_absolute_import_flagged(self):
        found = failing(
            "import repro.pipeline\n"
            "from repro.analysis import section5_statistics\n",
            "cli/main.py",
        )
        assert [f.line for f in found] == [1, 2]
        assert rule_ids(found) == {"R7"}

    def test_bare_repro_import_flagged(self):
        found = failing("import repro\n", "cli/main.py")
        assert rule_ids(found) == {"R7"}

    def test_ops_and_intra_cli_imports_pass(self):
        assert not failing(
            "import argparse\n"
            "import sys\n"
            "from ..ops import execute\n"
            "from repro.ops import RunContext\n"
            "from .main import build_parser\n",
            "cli/__init__.py",
        )

    def test_scoped_to_cli_modules(self):
        source = "from ..datasets import PasswordDumpGenerator\n"
        assert not failing(source, "ops/catalog.py")
        assert not failing(source, "analysis/x.py")

    def test_relative_grandparent_import_flagged(self):
        found = failing(
            "from .. import errors\n", "cli/main.py"
        )
        assert rule_ids(found) == {"R7"}
        assert "repro.errors" in found[0].message

    def test_package_is_r7_clean(self):
        from repro.staticcheck import lint_repo

        assert not [
            finding
            for finding in lint_repo(("R7",), with_baseline=False)
            if not finding.suppressed
        ]


class TestSuppression:
    SOURCE = (
        "import random\n"
        "random.random()  # repro: noqa[R2] fixture-only justification\n"
    )

    def test_noqa_marks_suppressed_with_justification(self):
        findings = lint(self.SOURCE, "datasets/x.py")
        assert len(findings) == 1
        finding = findings[0]
        assert finding.suppressed
        assert finding.justification == "fixture-only justification"

    def test_noqa_for_other_rule_does_not_suppress(self):
        findings = lint(
            "import random\nrandom.random()  # repro: noqa[R3]\n",
            "datasets/x.py",
        )
        assert not findings[0].suppressed

    def test_multi_rule_noqa(self):
        findings = lint(
            'import random\nx = random.random()  '
            '# repro: noqa[R2, R3] both\n',
            "datasets/x.py",
        )
        assert findings[0].suppressed


class TestBaseline:
    def _suppressed(self, path="src/repro/datasets/x.py"):
        return Finding(
            rule_id="R2",
            path=path,
            line=3,
            message="m",
            suppressed=True,
            justification="why",
        )

    def test_registered_suppression_no_drift(self):
        entry = BaselineEntry(
            "R2", "src/repro/datasets/x.py", "why"
        )
        assert baseline_drift([self._suppressed()], [entry]) == []

    def test_unregistered_suppression_drifts(self):
        drift = baseline_drift([self._suppressed()], [])
        assert [f.rule_id for f in drift] == ["R0"]
        assert "not registered" in drift[0].message

    def test_stale_entry_drifts(self):
        entry = BaselineEntry(
            "R2", "src/repro/datasets/gone.py", "obsolete"
        )
        drift = baseline_drift([], [entry])
        assert [f.rule_id for f in drift] == ["R0"]
        assert "stale" in drift[0].message


class TestReporters:
    def _findings(self):
        return LintEngine(default_registry()).lint_source(
            "import random\nrandom.random()\n"
            "random.choice([1])  # repro: noqa[R2] demo\n",
            "datasets/x.py",
        )

    def test_json_one_object_per_finding(self):
        findings = self._findings()
        lines = render_json(findings).splitlines()
        assert len(lines) == len(findings) == 2
        for line, finding in zip(lines, findings):
            record = json.loads(line)
            assert record["rule"] == "R2"
            assert record["path"] == "datasets/x.py"
            assert isinstance(record["line"], int)
            assert record["message"]
            assert set(record) == {
                "rule",
                "path",
                "line",
                "message",
                "suppressed",
                "justification",
            }

    def test_text_report_and_summary(self):
        findings = self._findings()
        text = render_text(findings)
        assert "datasets/x.py:2: [R2]" in text
        assert summarize(findings) == (
            "2 finding(s): 1 failing, 1 suppressed"
        )


class TestCLI:
    def test_lint_clean_repo_exits_zero(self, capsys):
        from repro.cli import main

        assert main(["lint"]) == 0
        assert "0 failing" in capsys.readouterr().out

    def test_lint_json_format(self, capsys):
        from repro.cli import main

        assert main(["lint", "--format", "json"]) == 0

    def test_lint_select(self, capsys):
        from repro.cli import main

        assert main(["lint", "--select", "R2,R3"]) == 0

    def test_lint_select_unknown_rule_exits_one(self, capsys):
        from repro.cli import main

        # R42 does not exist (R9 does, since the worker-safety rule).
        assert main(["lint", "--select", "R42"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "R42" in err

    def test_verify_includes_lint_gate(self, capsys):
        from repro.cli import main

        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        assert "SC: static policy lint" in out

    def _violating_tree(self, tmp_path):
        (tmp_path / "datasets").mkdir()
        (tmp_path / "datasets" / "bad.py").write_text(
            "import random\nrandom.random()\n"
        )
        return tmp_path

    def test_lint_path_violating_fixture_exits_one(
        self, capsys, tmp_path
    ):
        from repro.cli import main

        self._violating_tree(tmp_path)
        assert main(["lint", "--path", str(tmp_path)]) == 1
        assert "[R2]" in capsys.readouterr().out

    def test_lint_path_json_schema(self, capsys, tmp_path):
        from repro.cli import main

        self._violating_tree(tmp_path)
        code = main(
            ["lint", "--path", str(tmp_path), "--format", "json"]
        )
        assert code == 1
        record = json.loads(capsys.readouterr().out.splitlines()[0])
        assert record["rule"] == "R2"
        assert record["path"].endswith("datasets/bad.py")
        assert record["line"] == 2
        assert record["message"]

    def test_lint_path_select_excludes_rule(self, capsys, tmp_path):
        from repro.cli import main

        self._violating_tree(tmp_path)
        assert (
            main(["lint", "--path", str(tmp_path), "--select", "R3"])
            == 0
        )
