"""Tests for the tamper-evident audit trail, metrics and tracing.

The contract under test (see ``docs/observability.md``):

* a hash-chained audit log whose verifier *localizes* the first
  corrupted record and names the kind of tampering;
* truncation detectable through the out-of-band length / tail-digest
  anchors, since a pure hash chain cannot see a clean prefix cut;
* metrics and tracing that cost near-nothing when disabled (the
  default observer), with shared null singletons;
* the process-wide :class:`Observer` switch installing and
  restoring cleanly;
* an end-to-end run: pipeline + REB simulation writing a JSONL log
  that ``repro-ethics audit verify`` accepts, and rejects with a
  localization after a single flipped byte.
"""

from __future__ import annotations

import dataclasses
import json
import timeit

import pytest

from repro.cli.main import main as cli_main
from repro.errors import SafeguardError
from repro.observability import (
    GENESIS_DIGEST,
    NULL_METRICS,
    NULL_TRACER,
    AuditTrail,
    MetricsRegistry,
    Observer,
    Tracer,
    audit_event,
    get_observer,
    load_events,
    metrics,
    observed,
    set_observer,
    tracer,
    verify_events,
    verify_jsonl,
)


def _chain(count: int = 6) -> AuditTrail:
    trail = AuditTrail()
    for index in range(count):
        trail.event("storage", "seal", subject=f"res-{index}", size=index)
    return trail


class TestChain:
    def test_intact_chain_verifies(self):
        trail = _chain()
        verification = trail.verify()
        assert verification.ok
        assert verification.length == 6
        assert verification.tail_digest == trail.tail_digest
        assert verification.error_index is None
        assert "intact" in verification.describe()

    def test_genesis_anchor(self):
        trail = _chain(1)
        assert trail.tail(1)[0].previous_digest == GENESIS_DIGEST

    def test_bit_flip_localized_in_place(self):
        events = list(_chain().tail(6))
        tampered = dataclasses.replace(
            events[3], detail={"size": 9999}
        )  # stored digest kept: content no longer matches it
        events[3] = tampered
        verification = verify_events(events)
        assert not verification.ok
        assert verification.error_index == 3
        assert "altered in place" in verification.reason

    def test_resealed_splice_localized(self):
        events = list(_chain().tail(6))
        forged = dataclasses.replace(
            events[2],
            detail={"size": 9999},
            previous_digest="f" * 64,
            digest="",
        ).sealed()  # recomputed digest, wrong predecessor link
        events[2] = forged
        verification = verify_events(events)
        assert not verification.ok
        assert verification.error_index == 2
        assert "spliced" in verification.reason

    def test_removal_breaks_sequence(self):
        events = list(_chain().tail(6))
        del events[2]
        verification = verify_events(events)
        assert not verification.ok
        assert verification.error_index == 2
        assert "removed, inserted or reordered" in verification.reason

    def test_reorder_breaks_sequence(self):
        events = list(_chain().tail(6))
        events[1], events[4] = events[4], events[1]
        verification = verify_events(events)
        assert not verification.ok
        assert verification.error_index == 1

    def test_truncation_caught_by_anchors(self):
        trail = _chain()
        full = trail.verify()
        truncated = list(trail.tail(6))[:4]
        # A clean prefix verifies on its own ...
        assert verify_events(truncated).ok
        # ... but not against the out-of-band anchors.
        by_length = verify_events(truncated, expected_length=full.length)
        assert not by_length.ok and "truncated" in by_length.reason
        by_tail = verify_events(
            truncated, expected_tail_digest=full.tail_digest
        )
        assert not by_tail.ok and "truncated" in by_tail.reason


class TestJsonlLog:
    def _write_log(self, path) -> None:
        with AuditTrail(path) as trail:
            for index in range(5):
                trail.event("access", "grant", subject=f"p-{index}")

    def test_round_trip(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        self._write_log(path)
        events = load_events(path)
        assert [e.sequence for e in events] == [0, 1, 2, 3, 4]
        assert verify_jsonl(path).ok

    def test_json_breaking_flip_localized(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        self._write_log(path)
        lines = path.read_text().splitlines()
        lines[2] = lines[2][:-1] + "]"  # no longer parses
        path.write_text("\n".join(lines) + "\n")
        verification = verify_jsonl(path)
        assert not verification.ok
        assert verification.error_index == 2
        assert "valid JSON" in verification.reason

    def test_json_preserving_flip_localized(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        self._write_log(path)
        lines = path.read_text().splitlines()
        record = json.loads(lines[3])
        record["subject"] = "p-999"  # digest left as recorded
        lines[3] = json.dumps(record)
        path.write_text("\n".join(lines) + "\n")
        verification = verify_jsonl(path)
        assert not verification.ok
        assert verification.error_index == 3
        assert "altered in place" in verification.reason

    def test_unreadable_log_raises(self, tmp_path):
        with pytest.raises(SafeguardError):
            load_events(tmp_path / "missing.jsonl")


class TestMetrics:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("records").inc(3)
        registry.counter("records").inc()
        registry.gauge("cache").set_max(5)
        registry.gauge("cache").set_max(2)  # keeps the max
        histogram = registry.histogram("seconds")
        histogram.observe(1.0)
        histogram.observe(3.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["records"] == 4
        assert snapshot["gauges"]["cache"] == 5
        assert snapshot["histograms"]["seconds"]["count"] == 2
        assert snapshot["histograms"]["seconds"]["total"] == 4.0
        assert registry.histogram("seconds").mean == 2.0

    def test_counter_rejects_negative(self):
        with pytest.raises(SafeguardError):
            MetricsRegistry().counter("x").inc(-1)

    def test_merge_semantics(self):
        ours = MetricsRegistry()
        ours.counter("records").inc(10)
        ours.gauge("cache").set_max(3)
        ours.histogram("seconds").observe(1.0)
        theirs = MetricsRegistry()
        theirs.counter("records").inc(5)
        theirs.gauge("cache").set_max(7)
        theirs.histogram("seconds").observe(5.0)
        ours.merge(theirs.snapshot())
        snapshot = ours.snapshot()
        assert snapshot["counters"]["records"] == 15  # counters add
        assert snapshot["gauges"]["cache"] == 7  # gauges take the max
        merged = snapshot["histograms"]["seconds"]
        assert merged["count"] == 2
        assert merged["min"] == 1.0 and merged["max"] == 5.0

    def test_null_registry_is_shared_and_inert(self):
        assert NULL_METRICS.counter("a") is NULL_METRICS.counter("b")
        assert NULL_METRICS.gauge("a") is NULL_METRICS.gauge("b")
        assert (
            NULL_METRICS.histogram("a") is NULL_METRICS.histogram("b")
        )
        NULL_METRICS.counter("a").inc(100)
        assert NULL_METRICS.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        assert not NULL_METRICS.enabled


class TestTracing:
    def test_spans_feed_metrics(self):
        registry = MetricsRegistry()
        active = Tracer(registry)
        with active.span("stage.seal"):
            with active.span("stage.seal.inner"):
                pass
        summary = active.summary()
        assert summary["stage.seal"]["count"] == 1
        assert summary["stage.seal.inner"]["count"] == 1
        records = {r.name: r for r in active.finished}
        assert records["stage.seal"].depth == 0
        assert records["stage.seal.inner"].depth == 1
        snapshot = registry.snapshot()
        assert snapshot["histograms"]["span.stage.seal.seconds"][
            "count"
        ] == 1

    def test_null_tracer_shared_singleton(self):
        span_a = NULL_TRACER.span("a")
        assert span_a is NULL_TRACER.span("b")
        with span_a:
            pass
        assert NULL_TRACER.summary() == {}


class TestObserverSwitch:
    def test_default_observer_disabled(self):
        observer = get_observer()
        assert not observer.enabled
        assert observer.trail is None
        assert metrics() is NULL_METRICS
        assert tracer() is NULL_TRACER
        audit_event("storage", "seal", size=1)  # must be a no-op

    def test_observed_installs_and_restores(self):
        before = get_observer()
        with observed(Observer.recording()) as observer:
            assert get_observer() is observer
            audit_event("storage", "seal", size=1)
            assert len(observer.trail) == 1
            assert observer.trail.verify().ok
        assert get_observer() is before

    def test_set_observer_returns_previous(self):
        before = get_observer()
        recording = Observer.recording()
        previous = set_observer(recording)
        try:
            assert previous is before
            assert get_observer() is recording
        finally:
            set_observer(before)

    def test_instrumented_safeguards_emit(self):
        from repro.safeguards.retention import DataInventory, Sensitivity

        with observed(Observer.recording()) as observer:
            inventory = DataInventory()
            inventory.acquire(
                "dump-1", "booter dump", Sensitivity.TOXIC, today=0
            )
            inventory.sweep(today=10_000)
        actions = [e.action for e in observer.trail.tail(10)]
        assert "acquired" in actions
        assert "expired" in actions
        assert "destroyed" in actions
        assert observer.trail.verify().ok

    def test_disabled_overhead_is_nanoscale(self):
        # ~170 ns measured; the budget is ~30x that so the assertion
        # documents the order of magnitude without being flaky.
        per_call = (
            timeit.timeit(
                lambda: audit_event("storage", "seal", size=1),
                number=200_000,
            )
            / 200_000
        )
        assert per_call < 5e-6, f"disabled audit_event {per_call:.2e}s"


class TestCliEndToEnd:
    def _run_pipeline(self, log_path, capsys) -> dict:
        status = cli_main(
            [
                "pipeline",
                "--users",
                "20",
                "--days",
                "5",
                "--audit-log",
                str(log_path),
            ]
        )
        output = capsys.readouterr().out
        assert status == 0
        return json.loads(output)

    def test_pipeline_audit_log_verifies(self, tmp_path, capsys):
        log_path = tmp_path / "audit.jsonl"
        payload = self._run_pipeline(log_path, capsys)
        observability = payload["observability"]
        assert observability["chain_intact"] is True
        assert observability["audit_events"] == len(
            load_events(log_path)
        )
        assert cli_main(["audit", "verify", str(log_path)]) == 0
        capsys.readouterr()

    def test_flipped_byte_fails_cli_verify(self, tmp_path, capsys):
        log_path = tmp_path / "audit.jsonl"
        self._run_pipeline(log_path, capsys)
        lines = log_path.read_text().splitlines()
        record = json.loads(lines[0])
        record["action"] = "run-startled"
        lines[0] = json.dumps(record)
        log_path.write_text("\n".join(lines) + "\n")
        assert cli_main(["audit", "verify", str(log_path)]) == 1
        output = capsys.readouterr().out
        assert "#0" in output or "0" in output
        assert "altered in place" in output

    def test_anchor_flags_truncation(self, tmp_path, capsys):
        log_path = tmp_path / "audit.jsonl"
        payload = self._run_pipeline(log_path, capsys)
        expected = payload["observability"]["audit_events"]
        lines = log_path.read_text().splitlines()
        log_path.write_text("\n".join(lines[:-1]) + "\n")
        assert verify_jsonl(log_path).ok  # chain alone cannot tell
        status = cli_main(
            [
                "audit",
                "verify",
                str(log_path),
                "--expect-length",
                str(expected),
            ]
        )
        capsys.readouterr()
        assert status == 1

    def test_simulate_reb_audit_log(self, tmp_path, capsys):
        log_path = tmp_path / "reb.jsonl"
        status = cli_main(
            ["simulate-reb", "--seed", "3", "--audit-log", str(log_path)]
        )
        capsys.readouterr()
        assert status == 0
        events = load_events(log_path)
        assert verify_jsonl(log_path).ok
        categories = {event.category for event in events}
        assert "reb" in categories
        actions = {event.action for event in events}
        assert {"triaged", "decision"} <= actions

    def test_audit_tail_and_report(self, tmp_path, capsys):
        log_path = tmp_path / "audit.jsonl"
        self._run_pipeline(log_path, capsys)
        assert cli_main(["audit", "tail", str(log_path)]) == 0
        tail_output = capsys.readouterr().out
        assert "pipeline/run-finished" in tail_output
        assert (
            cli_main(["audit", "report", str(log_path), "--json"]) == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["intact"] is True
        assert report["categories"]["pipeline"] >= 2

    def test_audit_verify_missing_file_errors(self, tmp_path, capsys):
        status = cli_main(
            ["audit", "verify", str(tmp_path / "missing.jsonl")]
        )
        captured = capsys.readouterr()
        assert status == 1
        assert "error" in captured.err


class TestDeterminism:
    def test_same_seed_same_chain(self, tmp_path, capsys):
        digests = []
        for name in ("a.jsonl", "b.jsonl"):
            path = tmp_path / name
            status = cli_main(
                [
                    "pipeline",
                    "--users",
                    "20",
                    "--days",
                    "5",
                    "--seed",
                    "11",
                    "--audit-log",
                    str(path),
                ]
            )
            capsys.readouterr()
            assert status == 0
            digests.append(verify_jsonl(path).tail_digest)
        assert digests[0] == digests[1]
