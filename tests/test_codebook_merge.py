"""Tests for multi-coder codebook merging and the dict round-trip."""

from __future__ import annotations

import pytest

from repro.codebook import (
    CellValue,
    Code,
    Codebook,
    Dimension,
    DimensionKind,
    codebook_from_dict,
    codebook_to_dict,
    example_coder_variant,
    merge_codebooks,
    paper_codebook,
)
from repro.errors import CodebookError


def _closed(dim_id, *, name=None, allowed=None, description=""):
    return Dimension(
        id=dim_id,
        name=name or dim_id,
        group="ethical",
        kind=DimensionKind.CLOSED,
        allowed=tuple(
            allowed or (CellValue.DISCUSSED, CellValue.NOT_DISCUSSED)
        ),
        description=description,
    )


def _open(dim_id, members):
    return Dimension(
        id=dim_id,
        name=dim_id,
        group="codes",
        kind=DimensionKind.OPEN,
        members=tuple(members),
    )


class TestMergeUnion:
    def test_disjoint_dimensions_concatenate(self):
        a = Codebook("a", [_closed("one")])
        b = Codebook("b", [_closed("two")])
        result = merge_codebooks((a, b))
        assert result.codebook.dimension_ids == ("one", "two")
        assert result.conflicts == ()
        assert result.strategy == "union"
        assert result.sources == ("a", "b")

    def test_member_union_keeps_first_order(self):
        ss = Code(id="ss", abbrev="SS", name="Secure storage")
        p = Code(id="p", abbrev="P", name="Privacy")
        ce = Code(id="ce", abbrev="CE", name="Chilling effects")
        a = Codebook("a", [_open("safeguards", [ss, p])])
        b = Codebook("b", [_open("safeguards", [ce, p])])
        merged = merge_codebooks((a, b)).codebook
        assert [c.id for c in merged["safeguards"].members] == [
            "ss",
            "p",
            "ce",
        ]

    def test_attribute_conflict_first_wins_and_recorded(self):
        a = Codebook("alice", [_closed("justice", name="Justice")])
        b = Codebook("bob", [_closed("justice", name="Fairness")])
        result = merge_codebooks((a, b))
        assert result.codebook["justice"].name == "Justice"
        (conflict,) = result.conflicts
        assert conflict.dimension_id == "justice"
        assert conflict.field == "name"
        assert conflict.values == {
            "alice": "Justice",
            "bob": "Fairness",
        }
        assert "alice" in conflict.resolution
        assert "justice.name" in conflict.describe()

    def test_member_attribute_conflict_recorded(self):
        a = Codebook(
            "a",
            [_open("s", [Code(id="x", abbrev="X", name="Xray")])],
        )
        b = Codebook(
            "b",
            [_open("s", [Code(id="x", abbrev="X", name="Xenon")])],
        )
        result = merge_codebooks((a, b))
        (conflict,) = result.conflicts
        assert conflict.field == "member:x/name"
        assert result.codebook["s"].members[0].name == "Xray"

    def test_allowed_values_union(self):
        a = Codebook(
            "a", [_closed("d", allowed=(CellValue.DISCUSSED,))]
        )
        b = Codebook(
            "b",
            [
                _closed(
                    "d",
                    allowed=(
                        CellValue.DISCUSSED,
                        CellValue.NOT_DISCUSSED,
                    ),
                )
            ],
        )
        result = merge_codebooks((a, b))
        assert result.codebook["d"].allowed == (
            CellValue.DISCUSSED,
            CellValue.NOT_DISCUSSED,
        )
        (conflict,) = result.conflicts
        assert conflict.field == "allowed"

    def test_kind_conflict_keeps_first(self):
        a = Codebook("a", [_closed("d")])
        b = Codebook(
            "b",
            [_open("d", [Code(id="x", abbrev="X", name="X")])],
        )
        result = merge_codebooks((a, b))
        assert result.codebook["d"].kind == DimensionKind.CLOSED
        assert any(c.field == "kind" for c in result.conflicts)


class TestMergeIntersection:
    def test_drops_unshared_dimension_with_record(self):
        a = Codebook("a", [_closed("one"), _closed("two")])
        b = Codebook("b", [_closed("one")])
        result = merge_codebooks((a, b), strategy="intersection")
        assert result.codebook.dimension_ids == ("one",)
        (conflict,) = result.conflicts
        assert conflict.dimension_id == "two"
        assert conflict.field == "dimension"

    def test_drops_unshared_members_with_record(self):
        ss = Code(id="ss", abbrev="SS", name="Secure storage")
        p = Code(id="p", abbrev="P", name="Privacy")
        ce = Code(id="ce", abbrev="CE", name="Chilling effects")
        a = Codebook("a", [_open("s", [ss, p])])
        b = Codebook("b", [_open("s", [p, ce])])
        result = merge_codebooks((a, b), strategy="intersection")
        assert [c.id for c in result.codebook["s"].members] == ["p"]
        (conflict,) = result.conflicts
        assert conflict.field == "members"
        # Both sides' exclusives appear in the drop record.
        assert "ss" in conflict.resolution
        assert "ce" in conflict.resolution

    def test_empty_member_intersection_drops_dimension(self):
        a = Codebook(
            "a",
            [_open("s", [Code(id="x", abbrev="X", name="X")])],
        )
        b = Codebook(
            "b",
            [_open("s", [Code(id="y", abbrev="Y", name="Y")])],
        )
        result = merge_codebooks((a, b), strategy="intersection")
        assert len(result.codebook) == 0
        assert any(
            c.field == "dimension" and "no shared member codes"
            in c.resolution
            for c in result.conflicts
        )


class TestMergeValidation:
    def test_unknown_strategy(self):
        with pytest.raises(CodebookError):
            merge_codebooks(
                (paper_codebook(),), strategy="majority"
            )

    def test_needs_codebooks(self):
        with pytest.raises(CodebookError):
            merge_codebooks(())

    def test_duplicate_names_rejected(self):
        with pytest.raises(CodebookError):
            merge_codebooks((paper_codebook(), paper_codebook()))


class TestDeterminism:
    def test_merge_is_reproducible(self):
        first = merge_codebooks(
            (paper_codebook(), example_coder_variant())
        )
        second = merge_codebooks(
            (paper_codebook(), example_coder_variant())
        )
        assert codebook_to_dict(first.codebook) == codebook_to_dict(
            second.codebook
        )
        assert first.conflicts == second.conflicts

    def test_worked_example_scenario(self):
        result = merge_codebooks(
            (paper_codebook(), example_coder_variant())
        )
        harms = result.codebook["harms"]
        assert any(c.abbrev == "CE" for c in harms.members)
        fields = sorted(c.field for c in result.conflicts)
        assert fields == [
            "description",
            "member:secure-storage/name",
        ]
        # First codebook (the paper) wins both conflicts.
        assert (
            result.codebook["safeguards"].code("SS").name
            == "Secure Storage"
        )


class TestDictRoundTrip:
    def test_paper_codebook_round_trips(self):
        book = paper_codebook()
        rebuilt = codebook_from_dict(codebook_to_dict(book))
        assert rebuilt.name == book.name
        assert rebuilt.dimension_ids == book.dimension_ids
        for dim in book:
            other = rebuilt[dim.id]
            assert other.allowed == dim.allowed
            assert other.members == dim.members
            assert other.description == dim.description

    def test_malformed_spec_rejected(self):
        with pytest.raises(CodebookError):
            codebook_from_dict({"name": "x"})
        with pytest.raises(CodebookError):
            codebook_from_dict(
                {
                    "name": "x",
                    "dimensions": [{"id": "d", "allowed": ["bogus"]}],
                }
            )
