"""Tests for the streaming safeguard pipeline (repro.pipeline).

The load-bearing property is determinism: the pipeline's output must
be a pure function of (stage specs, input records) — invariant under
worker count, chunk size and run repetition — because that is what
lets a parallel safeguard pass over a leaked dataset be audited
against a serial one byte for byte.
"""

from __future__ import annotations

import hashlib
import json
import time

import pytest

from repro.anonymization import IPAnonymizer, TextScrubber
from repro.cli.main import main
from repro.datasets import BooterDatabaseGenerator, PasswordDumpGenerator
from repro.errors import AnonymizationError, DatasetError, SafeguardError
from repro.pipeline import (
    AnonymizeIPsSpec,
    PseudonymizeSpec,
    SafeguardPipeline,
    ScrubTextSpec,
    SealSpec,
    default_stages,
)
from repro.safeguards.storage import SecureContainer
from repro.staticcheck import LintEngine, default_registry

ANON_KEY = hashlib.sha256(b"test-anon-key").digest()
PSEUDO_KEY = hashlib.sha256(b"test-pseudo-key").digest()
PASSPHRASE = "test-pipeline-passphrase"


def booter_source(seed: int = 11, users: int = 90, days: int = 30):
    return BooterDatabaseGenerator(seed).iter_records(
        chunk_size=256, users=users, days=days
    )


def all_stages():
    return default_stages(
        anonymize_key=ANON_KEY,
        pseudonymize_key=PSEUDO_KEY,
        seal_passphrase=PASSPHRASE,
    )


def fingerprint(result) -> str:
    payload = json.dumps(result.records, sort_keys=True).encode()
    for blob in result.artifacts:
        payload += blob
    return hashlib.sha256(payload).hexdigest()


class TestParallelEqualsSerial:
    """Parallel output must be byte-identical to serial."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_all_stages_workers(self, workers):
        serial = SafeguardPipeline(
            all_stages(), workers=1, chunk_size=128
        ).run(booter_source())
        parallel = SafeguardPipeline(
            all_stages(), workers=workers, chunk_size=128
        ).run(booter_source())
        assert parallel.records == serial.records
        assert parallel.artifacts == serial.artifacts

    @pytest.mark.parametrize(
        "spec",
        [
            AnonymizeIPsSpec(key=ANON_KEY),
            PseudonymizeSpec(key=PSEUDO_KEY),
            ScrubTextSpec(),
            SealSpec(passphrase=PASSPHRASE),
        ],
        ids=["anonymize", "pseudonymize", "scrub", "seal"],
    )
    def test_each_stage_alone(self, spec):
        serial = SafeguardPipeline(
            (spec,), workers=1, chunk_size=100
        ).run(booter_source())
        parallel = SafeguardPipeline(
            (spec,), workers=2, chunk_size=100
        ).run(booter_source())
        assert fingerprint(parallel) == fingerprint(serial)

    def test_chunk_size_invariance(self):
        small = SafeguardPipeline(
            all_stages(), workers=1, chunk_size=33
        ).run(booter_source())
        large = SafeguardPipeline(
            all_stages(), workers=1, chunk_size=4096
        ).run(booter_source())
        # Chunk size moves records between sealed containers, so
        # artifacts differ — but the record stream must not.
        assert small.records == large.records

    def test_two_runs_same_seed_and_key_identical(self):
        first = SafeguardPipeline(
            all_stages(), workers=2, chunk_size=64
        ).run(booter_source())
        second = SafeguardPipeline(
            all_stages(), workers=2, chunk_size=64
        ).run(booter_source())
        assert fingerprint(first) == fingerprint(second)

    def test_passwords_dataset_round_trip(self):
        def source():
            return PasswordDumpGenerator(5).iter_records(
                chunk_size=64, users=150
            )

        serial = SafeguardPipeline(
            all_stages(), workers=1, chunk_size=64
        ).run(source())
        parallel = SafeguardPipeline(
            all_stages(), workers=2, chunk_size=64
        ).run(source())
        assert fingerprint(parallel) == fingerprint(serial)


class TestStages:
    def test_anonymize_rewrites_ip_fields_prefix_preserving(self):
        records = [
            {"target_ip": "198.51.100.7"},
            {"target_ip": "198.51.100.250"},
            {"note": "no ip here"},
        ]
        result = SafeguardPipeline(
            (AnonymizeIPsSpec(key=ANON_KEY),), chunk_size=10
        ).run(iter(records))
        a, b = (r["target_ip"] for r in result.records[:2])
        assert a != "198.51.100.7" and b != "198.51.100.250"
        # Same /24 in, same /24 out (prefix preservation).
        assert IPAnonymizer.shared_prefix_length(a, b) >= 24
        assert result.records[2] == {"note": "no ip here"}
        reference = IPAnonymizer(ANON_KEY).anonymize("198.51.100.7")
        assert a == reference

    def test_pseudonymize_email_and_username(self):
        records = [{"email": "alex@example.com", "username": "alex"}]
        result = SafeguardPipeline(
            (PseudonymizeSpec(key=PSEUDO_KEY),), chunk_size=10
        ).run(iter(records))
        record = result.records[0]
        assert "alex" not in record["email"]
        assert record["email"].endswith("@example.invalid")
        assert record["username"] != "alex"

    def test_scrub_redacts_text_fields(self):
        records = [
            {"text": "contact me at 203.0.113.9 thanks"},
            {"text": "all clean"},
        ]
        result = SafeguardPipeline(
            (ScrubTextSpec(),), chunk_size=10
        ).run(iter(records))
        assert "[redacted-ipv4]" in result.records[0]["text"]
        assert result.records[1]["text"] == "all clean"
        stage = result.metrics["stages"][0]
        assert stage["redactions"] == 1

    def test_seal_artifacts_open_to_chunk_json(self):
        records = [{"user_id": i, "note": "n"} for i in range(7)]
        result = SafeguardPipeline(
            (SealSpec(passphrase=PASSPHRASE),), chunk_size=3
        ).run(iter(records))
        assert len(result.artifacts) == 3  # ceil(7 / 3)
        container = SecureContainer(PASSPHRASE)
        opened = [
            json.loads(container.open(blob))
            for blob in result.artifacts
        ]
        assert [r for chunk in opened for r in chunk] == records

    def test_seal_is_content_deterministic(self):
        records = [{"user_id": 1}]
        spec = SealSpec(passphrase=PASSPHRASE)
        first = SafeguardPipeline((spec,), chunk_size=5).run(
            iter(records)
        )
        second = SafeguardPipeline((spec,), chunk_size=5).run(
            iter([dict(r) for r in records])
        )
        assert first.artifacts == second.artifacts

    def test_validation_errors(self):
        with pytest.raises(SafeguardError):
            SafeguardPipeline(())
        with pytest.raises(SafeguardError):
            SafeguardPipeline(all_stages(), workers=0)
        with pytest.raises(SafeguardError):
            SafeguardPipeline(all_stages(), chunk_size=0)
        with pytest.raises(SafeguardError):
            default_stages(
                anonymize_key=ANON_KEY,
                pseudonymize_key=PSEUDO_KEY,
                seal_passphrase=PASSPHRASE,
                names=("anonymize", "teleport"),
            )


class TestBoundedCache:
    def test_eviction_counted_and_size_bounded(self):
        anonymizer = IPAnonymizer(ANON_KEY, cache_size=256)
        # One digest entry per byte-aligned prefix: spread addresses
        # over many /16s and /24s so unique prefixes exceed the cap.
        addresses = [
            f"203.{i}.{j}.{j + 1}" for i in range(40) for j in range(10)
        ]
        anonymizer.anonymize_many(addresses)
        stats = anonymizer.cache_info()
        assert stats.size <= 256
        assert stats.evictions > 0
        assert stats.misses > 0
        assert 0.0 <= stats.hit_rate <= 1.0

    def test_small_cache_output_identical_to_large(self):
        addresses = [
            f"203.{i}.{j}.{j + 1}" for i in range(40) for j in range(10)
        ]
        small = IPAnonymizer(ANON_KEY, cache_size=256)
        large = IPAnonymizer(ANON_KEY)
        assert small.anonymize_many(addresses) == large.anonymize_many(
            addresses
        )

    def test_cache_stats_surface_in_pipeline_metrics(self):
        result = SafeguardPipeline(
            (AnonymizeIPsSpec(key=ANON_KEY),), chunk_size=64
        ).run(booter_source())
        stage = result.metrics["stages"][0]
        assert stage["cache_misses"] > 0
        assert stage["cache_maxsize"] > 0
        assert stage["addresses"] > 0

    def test_cache_size_validated(self):
        with pytest.raises(AnonymizationError):
            IPAnonymizer(ANON_KEY, cache_size=10)

    def test_cache_clear_resets(self):
        anonymizer = IPAnonymizer(ANON_KEY)
        anonymizer.anonymize("203.0.113.5")
        anonymizer.cache_clear()
        stats = anonymizer.cache_info()
        assert (stats.hits, stats.misses, stats.size) == (0, 0, 0)


class TestScrubberClassification:
    """Satellite: deterministic digit-run classification."""

    def test_luhn_valid_card_is_card_not_phone(self):
        result = TextScrubber().scrub("pay 4111111111111111 now")
        assert [m.kind for m in result.matches] == ["card"]

    def test_card_inside_phone_shaped_run_claimed_once_as_card(self):
        result = TextScrubber().scrub("ref 12 4111111111111111")
        kinds = [m.kind for m in result.matches]
        assert kinds.count("card") == 1
        assert "phone" not in kinds

    def test_phone_shaped_non_luhn_is_phone(self):
        result = TextScrubber().scrub("call 020 7946 0000 today")
        assert [m.kind for m in result.matches] == ["phone"]

    def test_ipv4_inside_digit_run_recovered(self):
        result = TextScrubber().scrub("55 203.0.113.9")
        kinds = [m.kind for m in result.matches]
        assert "ipv4" in kinds

    def test_classification_stable_across_runs(self):
        text = "id 4111111111111111 or 020 7946 0000 or 203.0.113.9"
        first = TextScrubber().scrub(text)
        second = TextScrubber().scrub(text)
        assert first == second


class TestStreamingGenerators:
    def test_booter_stream_matches_generate(self):
        database = BooterDatabaseGenerator(21).generate(
            users=50, days=20
        )
        flat = [
            record
            for chunk in BooterDatabaseGenerator(21).iter_records(
                chunk_size=17, users=50, days=20
            )
            for record in chunk
        ]
        streamed_attacks = [
            {k: v for k, v in r.items() if k != "_table"}
            for r in flat
            if r["_table"] == "attacks"
        ]
        assert streamed_attacks == database.to_records()["attacks"]

    def test_chunk_size_only_batches(self):
        def flatten(chunk_size):
            return [
                record
                for chunk in PasswordDumpGenerator(8).iter_records(
                    chunk_size=chunk_size, users=40
                )
                for record in chunk
            ]

        assert flatten(7) == flatten(1000)

    def test_base_class_signals_no_streaming(self):
        from repro.datasets.common import SeededGenerator

        with pytest.raises(DatasetError):
            list(SeededGenerator(0).iter_records())

    def test_chunk_size_validated(self):
        with pytest.raises(DatasetError):
            list(
                PasswordDumpGenerator(0).iter_records(
                    chunk_size=0, users=5
                )
            )


class TestPerfSmoke:
    """Tier-1 regression canary with a very generous budget."""

    def test_pipeline_small_dump_within_budget(self):
        started = time.perf_counter()
        result = SafeguardPipeline(
            all_stages(), workers=1, chunk_size=512
        ).run(booter_source(seed=2, users=300, days=60))
        elapsed = time.perf_counter() - started
        assert result.metrics["records"] > 1500
        # Serial full-stack runs in well under a second on any
        # hardware this repo targets; 20s catches order-of-magnitude
        # regressions without flaking on loaded CI boxes.
        assert elapsed < 20.0

    def test_batch_anonymization_within_budget(self):
        anonymizer = IPAnonymizer(ANON_KEY)
        addresses = [
            f"{a}.{b}.{c}.{d}"
            for a in (100, 101)
            for b in range(10)
            for c in range(10)
            for d in range(1, 26)
        ]
        started = time.perf_counter()
        mapped = anonymizer.anonymize_many(addresses)
        elapsed = time.perf_counter() - started
        assert len(set(mapped)) == len(set(addresses))
        assert elapsed < 10.0


class TestPipelineCLI:
    def test_pipeline_subcommand_prints_metrics(self, capsys):
        assert (
            main(
                [
                    "pipeline",
                    "--users", "60",
                    "--days", "20",
                    "--workers", "2",
                    "--chunk-size", "128",
                ]
            )
            == 0
        )
        metrics = json.loads(capsys.readouterr().out)
        assert metrics["workers"] == 2
        assert metrics["chunk_size"] == 128
        names = [stage["name"] for stage in metrics["stages"]]
        assert names == ["anonymize", "pseudonymize", "scrub", "seal"]

    def test_pipeline_stage_selection(self, capsys):
        assert (
            main(
                [
                    "pipeline",
                    "--dataset", "passwords",
                    "--users", "50",
                    "--stages", "pseudonymize,scrub",
                ]
            )
            == 0
        )
        metrics = json.loads(capsys.readouterr().out)
        names = [stage["name"] for stage in metrics["stages"]]
        assert names == ["pseudonymize", "scrub"]


class TestR2PipelineScope:
    """R2 now polices pipeline/ — noqa-free for the worker pool."""

    def lint(self, source, relpath):
        engine = LintEngine(default_registry().select(["R2"]))
        return engine.lint_source(source, relpath)

    def test_clock_read_in_pipeline_flagged(self):
        findings = self.lint(
            "import time\ndef f():\n    return time.time()\n",
            "pipeline/core.py",
        )
        assert [f.rule_id for f in findings] == ["R2"]

    def test_concurrent_futures_and_perf_counter_allowed(self):
        findings = self.lint(
            "import time\n"
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def f(jobs):\n"
            "    start = time.perf_counter()\n"
            "    with ProcessPoolExecutor(2) as pool:\n"
            "        list(pool.map(abs, jobs))\n"
            "    return time.perf_counter() - start\n",
            "pipeline/core.py",
        )
        assert findings == []

    def test_shipped_pipeline_package_lints_clean(self):
        from repro.staticcheck import lint_repo, unsuppressed

        findings = [
            finding
            for finding in unsuppressed(lint_repo(("R2",)))
            if "pipeline" in str(finding.path)
        ]
        assert findings == []
