"""Self-lint gate: the repro package passes its own policy linter.

This is the operational safeguard the subsystem exists for: every
tier-1 test run lints ``src/repro`` with the full rule set and fails
on any unsuppressed finding or baseline drift, so violations of the
paper's safeguards cannot land silently.
"""

from __future__ import annotations

from repro.staticcheck import (
    BASELINE,
    lint_repo,
    package_root,
    render_text,
    unsuppressed,
)


def test_package_lint_is_clean():
    findings = lint_repo()
    failing = unsuppressed(findings)
    assert not failing, "\n" + render_text(failing)


def test_every_suppression_is_baselined():
    findings = lint_repo(with_baseline=False)
    suppressed = [f for f in findings if f.suppressed]
    registered = {(e.rule_id, e.path) for e in BASELINE}
    unregistered = [
        f
        for f in suppressed
        if (f.rule_id, f.path) not in registered
    ]
    assert not unregistered, "\n" + render_text(unregistered)


def test_lint_covers_the_whole_package():
    # Guard against the walker silently skipping files: the package
    # has grown past 100 modules and every one must be parsed.
    assert len(list(package_root().rglob("*.py"))) >= 100
