"""Unit tests for the REB queue simulation."""

from __future__ import annotations

import pytest

from repro.errors import REBError
from repro.reb import (
    TriggerPolicy,
    ictr_board,
    medical_style_board,
    simulate_reb_year,
)


class TestSimulation:
    def test_deterministic(self):
        a = simulate_reb_year(
            ictr_board(), TriggerPolicy.RISK_BASED, seed=7
        )
        b = simulate_reb_year(
            ictr_board(), TriggerPolicy.RISK_BASED, seed=7
        )
        assert a == b

    def test_validation(self):
        with pytest.raises(REBError):
            simulate_reb_year(
                ictr_board(),
                TriggerPolicy.RISK_BASED,
                submissions_per_week=0,
            )
        with pytest.raises(REBError):
            simulate_reb_year(
                ictr_board(), TriggerPolicy.RISK_BASED, weeks=0
            )

    def test_conservation(self):
        result = simulate_reb_year(
            ictr_board(), TriggerPolicy.RISK_BASED, seed=3
        )
        assert result.reviewed + result.exempted == result.submissions
        assert sum(result.decisions.values()) == result.submissions

    def test_risk_based_reviews_more_than_human_subjects(self):
        broad = simulate_reb_year(
            ictr_board(), TriggerPolicy.RISK_BASED, seed=5
        )
        narrow = simulate_reb_year(
            ictr_board(), TriggerPolicy.HUMAN_SUBJECTS, seed=5
        )
        assert broad.reviewed > narrow.reviewed
        assert broad.exempted < narrow.exempted

    def test_medical_board_queues_explode(self):
        # The §2 claim quantified: a slow board turns the same load
        # into months-to-years of waiting.
        fast = simulate_reb_year(
            ictr_board(), TriggerPolicy.RISK_BASED, seed=9
        )
        slow = simulate_reb_year(
            medical_style_board(), TriggerPolicy.RISK_BASED, seed=9
        )
        assert slow.mean_total_days > 5 * fast.mean_total_days
        assert slow.max_backlog >= fast.max_backlog

    def test_capacity_reduces_waiting(self):
        tight = simulate_reb_year(
            ictr_board(),
            TriggerPolicy.RISK_BASED,
            concurrent_reviews=1,
            seed=2,
        )
        ample = simulate_reb_year(
            ictr_board(),
            TriggerPolicy.RISK_BASED,
            concurrent_reviews=16,
            seed=2,
        )
        assert ample.mean_queue_days < tight.mean_queue_days

    def test_medical_board_refers_everything(self):
        result = simulate_reb_year(
            medical_style_board(), TriggerPolicy.RISK_BASED, seed=1
        )
        assert result.decisions.get("referred", 0) == result.reviewed

    def test_queue_days_nonnegative(self):
        result = simulate_reb_year(
            ictr_board(), TriggerPolicy.RISK_BASED, seed=4
        )
        assert result.mean_queue_days >= 0
        assert result.mean_total_days >= result.mean_queue_days

    def test_describe(self):
        result = simulate_reb_year(
            ictr_board(), TriggerPolicy.RISK_BASED, seed=1
        )
        assert "submissions" in result.describe()
