"""Unit tests for the corpus model and the Table 1 transcription."""

from __future__ import annotations

import pytest

from repro.codebook import CellValue, paper_codebook
from repro.corpus import (
    CaseStudyEntry,
    Category,
    Corpus,
    DataOrigin,
    TABLE1_FOOTNOTES,
    table1_corpus,
    table1_entries,
)
from repro.errors import CorpusError, UnknownEntryError


class TestCaseStudyEntry:
    def test_bad_slug_rejected(self):
        with pytest.raises(CorpusError):
            CaseStudyEntry(
                id="Bad Id", category=Category.MALWARE,
                source_label="x", reference=1, year=2015,
            )

    def test_bad_category_rejected(self):
        with pytest.raises(CorpusError):
            CaseStudyEntry(
                id="x", category="Nope", source_label="x",
                reference=1, year=2015,
            )

    def test_bad_origin_rejected(self):
        with pytest.raises(CorpusError):
            CaseStudyEntry(
                id="x", category=Category.MALWARE, source_label="x",
                reference=1, year=2015, origin="magic",
            )

    def test_bad_footnote_rejected(self):
        with pytest.raises(CorpusError):
            CaseStudyEntry(
                id="x", category=Category.MALWARE, source_label="x",
                reference=1, year=2015, footnotes=("z",),
            )

    def test_roundtrip_dict(self, corpus):
        entry = corpus["patreon"]
        clone = CaseStudyEntry.from_dict(entry.to_dict())
        assert clone == entry


class TestCorpusRegistry:
    def test_duplicate_ids_rejected(self):
        codebook = paper_codebook()
        entry = table1_entries()[0]
        with pytest.raises(CorpusError):
            Corpus(codebook, [entry, entry])

    def test_unknown_entry(self, corpus):
        with pytest.raises(UnknownEntryError):
            corpus["missing-entry"]

    def test_json_roundtrip(self, corpus):
        text = corpus.to_json()
        clone = Corpus.from_json(paper_codebook(), text)
        assert clone.entry_ids == corpus.entry_ids
        for entry_id in corpus.entry_ids:
            assert clone[entry_id] == corpus[entry_id]

    def test_from_json_rejects_garbage(self):
        with pytest.raises(CorpusError):
            Corpus.from_json(paper_codebook(), "{not json")

    def test_from_json_rejects_non_list(self):
        with pytest.raises(CorpusError):
            Corpus.from_json(paper_codebook(), "{}")


class TestTable1Shape:
    """Structural facts about the transcribed Table 1."""

    def test_thirty_rows(self, corpus):
        assert len(corpus) == 30

    def test_twenty_eight_papers(self, corpus):
        assert len(corpus.papers()) == 28

    def test_category_sizes(self, corpus):
        sizes = {
            cat: len(corpus.by_category(cat)) for cat in Category.ORDER
        }
        assert sizes == {
            Category.MALWARE: 8,
            Category.PASSWORDS: 5,
            Category.LEAKED_DATABASES: 8,
            Category.CLASSIFIED: 7,
            Category.FINANCIAL: 2,
        }

    def test_rows_in_category_order(self, corpus):
        seen = [e.category for e in corpus]
        order = [c for i, c in enumerate(seen) if i == 0 or seen[i - 1] != c]
        assert order == list(Category.ORDER)

    def test_non_papers_are_web_sources(self, corpus):
        non_papers = [e for e in corpus if not e.is_paper]
        assert {e.reference for e in non_papers} == {106, 18}

    def test_non_peer_reviewed_have_footnote_a(self, corpus):
        for entry in corpus:
            assert entry.peer_reviewed == ("a" not in entry.footnotes)

    def test_two_rows_did_not_use_data(self, corpus):
        unused = [e for e in corpus if not e.used_data]
        assert {e.reference for e in unused} == {27, 85}
        for entry in unused:
            assert entry.reb_status is CellValue.NOT_RELEVANT

    def test_footnote_legend_complete(self):
        assert set(TABLE1_FOOTNOTES) == set("abcde")

    def test_references_unique(self, corpus):
        refs = [e.reference for e in corpus]
        assert len(set(refs)) == len(refs)

    def test_all_computer_misuse_applicable(self, corpus):
        # Every dataset of illicit origin in the table implicates
        # computer misuse in its collection.
        for entry in corpus:
            assert (
                entry.values["computer-misuse"] is CellValue.APPLICABLE
            )

    def test_years_in_plausible_range(self, corpus):
        for entry in corpus:
            assert 2009 <= entry.year <= 2017


class TestTable1Coding:
    """Spot-checks of individual cells against the paper's table."""

    def test_att_row(self, corpus):
        entry = corpus.by_reference(106)
        assert entry.codes("harms") == ("I", "PA", "SI", "RH")
        assert entry.discussed("identification-of-stakeholders")
        assert entry.discussed("identify-harms")
        assert not entry.discussed("public-interest")
        assert entry.discussed("fight-malicious-use")

    def test_patreon_declined_no_additional_harm(self, corpus):
        entry = corpus["patreon"]
        assert entry.values["no-additional-harm"] is CellValue.DECLINED
        assert not entry.used_data
        assert entry.codes("harms") == ("SI", "RH")
        assert entry.codes("benefits") == ("U", "AT")

    def test_rfc7624_nsa_footnote(self, corpus):
        entry = corpus["snowden-rfc7624"]
        assert entry.discussed("fight-malicious-use")
        assert "NSA" in entry.cell_notes["fight-malicious-use"]

    def test_weir_full_safeguards(self, corpus):
        entry = corpus.by_reference(121)
        assert entry.codes("safeguards") == ("SS", "P", "CS")
        assert entry.discussed("necessary-data")

    def test_exemption_reasons_recorded(self, corpus):
        assert (
            "no human subjects"
            in corpus["udp-ddos-thomas"].exemption_reason
        )
        assert (
            "personally identifiable"
            in corpus["booters-karami-stress"].exemption_reason
        )

    def test_manning_rows_all_negative_ethics(self, corpus):
        for entry_id in ("manning-berger", "manning-talarico"):
            entry = corpus[entry_id]
            for dim in (
                "identification-of-stakeholders",
                "identify-harms",
                "safeguards-discussed",
                "justice",
                "public-interest",
                "ethics-section",
            ):
                assert not entry.discussed(dim), (entry_id, dim)

    def test_manning_excludes_copyright(self, corpus):
        # US government works carry no copyright (§4.5.2).
        entry = corpus["manning-berger"]
        assert "copyright" not in entry.legal_issues

    def test_snowden_includes_copyright(self, corpus):
        # GCHQ material is Crown copyright.
        entry = corpus["snowden-landau"]
        assert "copyright" in entry.legal_issues

    def test_dittrich_menlo_discusses_everything(self, corpus):
        entry = corpus["carna-menlo"]
        for dim in (
            "identification-of-stakeholders",
            "identify-harms",
            "safeguards-discussed",
            "justice",
            "public-interest",
        ):
            assert entry.discussed(dim)

    def test_legal_bullet_counts(self, corpus):
        counts = {e.id: len(e.legal_issues) for e in corpus}
        assert counts["att-ipad"] == 2
        assert counts["carna-caida"] == 1
        assert counts["underground-forums-motoyama"] == 5
        assert counts["carding-forums-yip"] == 4
        assert counts["snowden-landau"] == 5
        assert counts["manning-berger"] == 4
        assert counts["panama-omartian"] == 4

    def test_provenance_on_reconstructed_bullets(self, corpus):
        # Every multi-bullet reconstruction records its reasoning.
        for entry_id in (
            "att-ipad",
            "underground-forums-motoyama",
            "panama-omartian",
            "manning-berger",
            "snowden-landau",
        ):
            assert "legal" in corpus[entry_id].provenance

    def test_by_year_query(self, corpus):
        assert {e.id for e in corpus.by_year(2013)} >= {
            "exploit-kits",
            "carna-caida",
            "carna-telescope",
            "carding-forums-yip",
            "twbooter-karami",
        }

    def test_discussing_query(self, corpus):
        justice = corpus.discussing("justice")
        assert corpus["guess-again-kelley"] in justice
        assert corpus["att-ipad"] not in justice

    def test_with_code_validates_abbrev(self, corpus):
        from repro.errors import UnknownCodeError

        with pytest.raises(UnknownCodeError):
            corpus.with_code("safeguards", "ZZ")

    def test_origins_assigned(self, corpus):
        assert (
            corpus["att-ipad"].origin
            == DataOrigin.VULNERABILITY_EXPLOITATION
        )
        assert (
            corpus["snowden-landau"].origin
            == DataOrigin.UNAUTHORIZED_LEAK
        )
        for entry in corpus:
            assert entry.origin in DataOrigin.ALL

    def test_every_entry_has_summary(self, corpus):
        for entry in corpus:
            assert len(entry.summary) > 40, entry.id
