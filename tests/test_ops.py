"""Unit tests for the repro.ops service kernel (spec, cache, kernel)."""

from __future__ import annotations

import pytest

from repro.errors import (
    BatchError,
    OperationError,
    SafeguardError,
    StaticCheckError,
)
from repro.ops import (
    Arg,
    Operation,
    OperationRegistry,
    OpResponse,
    ResultCache,
    RunContext,
    build_request,
    cache_key,
    default_registry,
    describe_failure,
    emit_json,
    emit_jsonl,
    execute,
    failure_table,
)


def _noop(request, ctx):
    return OpResponse(payload={}, text="")


def _operation(**kwargs) -> Operation:
    defaults = dict(name="demo", help="demo op", handler=_noop)
    defaults.update(kwargs)
    return Operation(**defaults)


class TestSerializers:
    def test_emit_json_is_sorted_and_indented(self):
        assert emit_json({"b": 1, "a": 2}) == (
            '{\n  "a": 2,\n  "b": 1\n}'
        )

    def test_emit_jsonl_is_compact_and_sorted(self):
        assert emit_jsonl({"b": 1, "a": [2, 3]}) == (
            '{"a":[2,3],"b":1}'
        )


class TestArg:
    def test_dest_strips_flag_prefix(self):
        assert Arg("--chunk-size", kind=int).dest == "chunk_size"
        assert Arg("entry_id").dest == "entry_id"
        assert Arg("entry_id").positional

    def test_coerce_validates_json_types(self):
        arg = Arg("--workers", kind=int, default=1)
        assert arg.coerce(4) == 4
        with pytest.raises(OperationError):
            arg.coerce("4")
        with pytest.raises(OperationError):
            arg.coerce(True)

    def test_coerce_enforces_choices(self):
        arg = Arg(
            "--format", choices=("text", "json"), default="text"
        )
        assert arg.coerce("json") == "json"
        with pytest.raises(OperationError):
            arg.coerce("yaml")


class TestBuildRequest:
    def test_defaults_fill_missing_values(self):
        operation = _operation(
            args=(
                Arg("--seed", kind=int, default=7),
                Arg("--verbose", flag=True),
            )
        )
        request = build_request(operation, {})
        assert request == {"seed": 7, "verbose": False}

    def test_unknown_keys_rejected(self):
        operation = _operation(args=(Arg("--seed", kind=int),))
        with pytest.raises(OperationError) as excinfo:
            build_request(operation, {"sed": 3})
        assert "sed" in str(excinfo.value)

    def test_missing_required_rejected(self):
        operation = _operation(
            args=(Arg("entry_id", required=True),)
        )
        with pytest.raises(OperationError):
            build_request(operation, {})
        assert build_request(
            operation, {"entry_id": "x"}
        ) == {"entry_id": "x"}


class TestRegistry:
    def test_default_registry_contents(self):
        registry = default_registry()
        names = set(registry.names)
        assert {
            "table1",
            "stats",
            "verify",
            "lint",
            "report",
            "pipeline",
            "batch",
            "audit.verify",
            "audit.tail",
            "audit.report",
            "obs.export",
            "obs.profile",
            "obs.top",
            "report.render",
            "table.latex",
            "codebook.merge",
            "agreement.fuzzy",
        } <= names
        assert len(registry) >= 24

    def test_unknown_operation_names_known_ones(self):
        with pytest.raises(OperationError) as excinfo:
            default_registry().get("tabel1")
        message = str(excinfo.value)
        assert "tabel1" in message
        assert "table1" in message

    def test_duplicate_registration_rejected(self):
        registry = OperationRegistry()
        registry.register(_operation())
        with pytest.raises(OperationError):
            registry.register(_operation())

    def test_group_help_known(self):
        registry = default_registry()
        assert registry.group_help("audit")
        assert registry.group_help("obs")

    def test_pure_operations_are_deterministic(self):
        for operation in default_registry():
            if operation.pure:
                assert operation.deterministic, operation.name


class TestResultCache:
    def test_key_depends_on_op_request_and_digest(self):
        base = cache_key("table1", {"format": "text"}, "d1")
        assert base == cache_key(
            "table1", {"format": "text"}, "d1"
        )
        assert base != cache_key(
            "table1", {"format": "csv"}, "d1"
        )
        assert base != cache_key(
            "stats", {"format": "text"}, "d1"
        )
        assert base != cache_key(
            "table1", {"format": "text"}, "d2"
        )

    def test_hit_miss_accounting(self):
        cache = ResultCache()
        response = OpResponse(payload={"x": 1}, text="x\n")
        assert cache.get("k") is None
        cache.put("k", response)
        assert cache.get("k") is response
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1

    def test_fifo_eviction(self):
        cache = ResultCache(maxsize=2)
        first = OpResponse(payload={}, text="1")
        cache.put("a", first)
        cache.put("b", OpResponse(payload={}, text="2"))
        cache.put("c", OpResponse(payload={}, text="3"))
        assert cache.get("a") is None
        assert cache.get("b") is not None
        assert cache.get("c") is not None


class TestFailureTable:
    def test_operation_errors_map_to_usage(self):
        assert describe_failure(OperationError("bad"))[1] == 2
        assert describe_failure(BatchError("bad"))[1] == 2

    def test_domain_errors_map_to_failure(self):
        assert describe_failure(SafeguardError("nope")) == (
            "nope",
            1,
        )
        assert describe_failure(StaticCheckError("drift"))[1] == 1

    def test_table_is_exhaustive_over_repro_errors(self):
        import inspect

        from repro import errors

        covered = {row[0] for row in failure_table()}
        for _, cls in inspect.getmembers(errors, inspect.isclass):
            if issubclass(cls, errors.ReproError):
                assert any(
                    issubclass(cls, base) for base in covered
                ), cls


class TestExecute:
    def test_execute_by_name_and_by_operation(self):
        by_name = execute("stats")
        operation = default_registry().get("stats")
        by_operation = execute(operation)
        assert by_name.text == by_operation.text
        assert "ethics sections: 12/28" in by_name.text

    def test_pure_operation_served_from_cache(self):
        ctx = RunContext(cache=ResultCache())
        first = execute("table1", {"format": "csv"}, context=ctx)
        second = execute("table1", {"format": "csv"}, context=ctx)
        assert second is first
        stats = ctx.cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_request_variants_cache_separately(self):
        ctx = RunContext(cache=ResultCache())
        text = execute("table1", {"format": "text"}, context=ctx)
        csv = execute("table1", {"format": "csv"}, context=ctx)
        assert text.text != csv.text
        assert ctx.cache.stats()["entries"] == 2

    def test_no_cache_context_still_executes(self):
        response = execute(
            "table1", {"format": "text"}, context=RunContext()
        )
        assert "Malware & exploitation" in response.text

    def test_unknown_argument_rejected(self):
        with pytest.raises(OperationError):
            execute("table1", {"fmt": "text"})


class TestRunContext:
    def test_corpus_is_memoized(self):
        ctx = RunContext()
        assert ctx.corpus() is ctx.corpus()

    def test_digest_is_stable_across_contexts(self):
        assert (
            RunContext().corpus_digest()
            == RunContext().corpus_digest()
        )
