"""Unit tests for controlled sharing: AUPs, vetting, agreements."""

from __future__ import annotations

import pytest

from repro.errors import SafeguardError
from repro.safeguards import (
    AcceptableUsePolicy,
    SharingMode,
    SharingRegistry,
    VettingProcess,
    VettingStatus,
)


def aup(**overrides) -> AcceptableUsePolicy:
    defaults = dict(
        id="aup-booter-1",
        dataset_description="Synthetic booter database dump",
        permitted_purposes=(
            "academic research into DDoS-for-hire services",
        ),
        citation_url="https://example.org/aup/booter-1",
    )
    defaults.update(overrides)
    return AcceptableUsePolicy(**defaults)


class TestAcceptableUsePolicy:
    def test_requires_purposes(self):
        with pytest.raises(SafeguardError):
            aup(permitted_purposes=())

    def test_citable(self):
        assert aup().citable
        assert not aup(citation_url="").citable

    def test_render_contains_all_sections(self):
        text = aup().render_text()
        assert "Permitted purposes" in text
        assert "Prohibited" in text
        assert "Required safeguards" in text
        assert "Cite as" in text

    def test_default_prohibitions_cover_deanonymisation(self):
        assert any("deanonymise" in p for p in aup().prohibited)


class TestVettingProcess:
    def test_full_verification(self):
        vetting = VettingProcess()
        vetting.apply("dr-jones", "Example University")
        for check in VettingProcess.REQUIRED_CHECKS:
            vetting.record_check("dr-jones", check, True)
        assert vetting.is_verified("dr-jones")
        assert vetting.status("dr-jones") is VettingStatus.VERIFIED

    def test_any_failed_check_rejects(self):
        vetting = VettingProcess()
        vetting.apply("dr-evil", "Volcano Lair")
        vetting.record_check(
            "dr-evil", "affiliation-confirmed", False
        )
        assert vetting.status("dr-evil") is VettingStatus.REJECTED
        assert not vetting.is_verified("dr-evil")

    def test_partial_checks_stay_pending(self):
        vetting = VettingProcess()
        vetting.apply("dr-jones", "Example University")
        vetting.record_check(
            "dr-jones", "affiliation-confirmed", True
        )
        assert vetting.status("dr-jones") is VettingStatus.PENDING

    def test_unknown_check(self):
        vetting = VettingProcess()
        vetting.apply("x", "Y")
        with pytest.raises(SafeguardError):
            vetting.record_check("x", "vibes", True)

    def test_duplicate_application(self):
        vetting = VettingProcess()
        vetting.apply("x", "Y")
        with pytest.raises(SafeguardError):
            vetting.apply("x", "Y")

    def test_unknown_researcher(self):
        with pytest.raises(SafeguardError):
            VettingProcess().status("ghost")


class TestSharingRegistry:
    def _registry_with_verified(self) -> SharingRegistry:
        registry = SharingRegistry()
        registry.publish_policy(aup())
        registry.vetting.apply("dr-jones", "Example University")
        for check in VettingProcess.REQUIRED_CHECKS:
            registry.vetting.record_check("dr-jones", check, True)
        return registry

    def test_unverified_cannot_sign(self):
        registry = SharingRegistry()
        registry.publish_policy(aup())
        with pytest.raises(SafeguardError):
            registry.sign(
                "stranger",
                "aup-booter-1",
                SharingMode.FULL_UNDER_AGREEMENT,
                today=0,
            )

    def test_verified_signs_and_accesses(self):
        registry = self._registry_with_verified()
        agreement = registry.sign(
            "dr-jones",
            "aup-booter-1",
            SharingMode.PARTIAL_ANONYMISED,
            today=0,
            duration_days=30,
        )
        assert agreement.active(10)
        assert registry.may_access("dr-jones", "aup-booter-1", 10)

    def test_agreement_expires(self):
        registry = self._registry_with_verified()
        registry.sign(
            "dr-jones",
            "aup-booter-1",
            SharingMode.FULL_UNDER_AGREEMENT,
            today=0,
            duration_days=30,
        )
        assert not registry.may_access("dr-jones", "aup-booter-1", 31)
        assert not registry.active_agreements(31)

    def test_unknown_policy(self):
        registry = self._registry_with_verified()
        with pytest.raises(SafeguardError):
            registry.sign(
                "dr-jones",
                "ghost-policy",
                SharingMode.FULL_UNDER_AGREEMENT,
                today=0,
            )

    def test_duplicate_policy_rejected(self):
        registry = SharingRegistry()
        registry.publish_policy(aup())
        with pytest.raises(SafeguardError):
            registry.publish_policy(aup())

    def test_agreement_must_expire_after_signing(self):
        registry = self._registry_with_verified()
        with pytest.raises(SafeguardError):
            registry.sign(
                "dr-jones",
                "aup-booter-1",
                SharingMode.FULL_UNDER_AGREEMENT,
                today=10,
                duration_days=0,
            )
