"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro import paper_bibliography, paper_codebook, table1_corpus


@pytest.fixture(scope="session")
def codebook():
    return paper_codebook()


@pytest.fixture(scope="session")
def corpus():
    return table1_corpus()


@pytest.fixture(scope="session")
def bibliography():
    return paper_bibliography()
