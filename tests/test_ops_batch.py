"""Unit tests for the JSONL batch executor and its CLI surface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import BatchError
from repro.ops import BatchExecutor, load_requests

REQUEST_LINES = [
    {"op": "stats"},
    {"op": "table1", "args": {"format": "csv"}},
    {"op": "legend"},
    {"op": "table1", "args": {"format": "csv"}},
    {"op": "evidence", "args": {"entry_id": "patreon"}},
    {"op": "intervals"},
]


@pytest.fixture
def requests_file(tmp_path):
    path = tmp_path / "requests.jsonl"
    path.write_text(
        "".join(json.dumps(line) + "\n" for line in REQUEST_LINES),
        encoding="utf-8",
    )
    return path


class TestLoadRequests:
    def test_parses_and_indexes(self, requests_file):
        requests = load_requests(requests_file)
        assert [r.index for r in requests] == list(range(6))
        assert requests[1].op == "table1"
        assert requests[1].args == {"format": "csv"}
        assert requests[0].args == {}

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_text('{"op": "stats"}\n\n{"op": "legend"}\n')
        assert [r.op for r in load_requests(path)] == [
            "stats",
            "legend",
        ]

    def test_missing_file(self, tmp_path):
        with pytest.raises(BatchError) as excinfo:
            load_requests(tmp_path / "absent.jsonl")
        assert "cannot read batch file" in str(excinfo.value)

    @pytest.mark.parametrize(
        "line, fragment",
        [
            ("not json", "invalid JSON"),
            ('["op"]', "'op' string"),
            ('{"args": {}}', "'op' string"),
            ('{"op": "stats", "args": []}', "must be an object"),
            ('{"op": "stats", "extra": 1}', "unknown request keys"),
        ],
    )
    def test_malformed_lines_name_position(
        self, tmp_path, line, fragment
    ):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"op": "stats"}\n' + line + "\n")
        with pytest.raises(BatchError) as excinfo:
            load_requests(path)
        message = str(excinfo.value)
        assert ":2:" in message
        assert fragment in message


class TestBatchExecutor:
    def test_rejects_zero_workers(self):
        with pytest.raises(BatchError):
            BatchExecutor(workers=0)

    def test_serial_run_lines_and_summary(self, requests_file):
        result = BatchExecutor(workers=1).run(
            load_requests(requests_file)
        )
        assert len(result.lines) == 6
        assert all(line["ok"] for line in result.lines)
        assert [line["index"] for line in result.lines] == list(
            range(6)
        )
        assert result.summary["requests"] == 6
        assert result.summary["failed"] == 0
        assert result.summary["cache"]["enabled"]
        # The repeated table1 csv request is a content-address hit.
        assert result.summary["cache"]["hits"] >= 1

    def test_failed_request_does_not_abort(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_text(
            '{"op": "stats"}\n'
            '{"op": "evidence", "args": {"entry_id": "ghost"}}\n'
            '{"op": "legend"}\n'
        )
        result = BatchExecutor().run(load_requests(path))
        assert [line["ok"] for line in result.lines] == [
            True,
            False,
            True,
        ]
        failed = result.lines[1]
        assert failed["error_type"] == "UnknownEntryError"
        assert "ghost" in failed["error"]
        assert result.summary["failed"] == 1

    def test_nested_batch_rejected(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_text(
            '{"op": "batch", "args": {"requests": "x"}}\n'
        )
        result = BatchExecutor().run(load_requests(path))
        assert not result.lines[0]["ok"]
        assert "not batchable" in result.lines[0]["error"]

    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_output_matches_serial(
        self, requests_file, workers
    ):
        requests = load_requests(requests_file)
        serial = BatchExecutor(workers=1).run(requests)
        parallel = BatchExecutor(workers=workers).run(requests)
        assert parallel.text() == serial.text()
        assert parallel.lines == serial.lines


def _events(path):
    from repro.observability.log import load_events

    return load_events(path)


def _comparable(events):
    """Audit-event content with the worker count masked out."""
    rows = []
    for event in events:
        detail = {
            k: v
            for k, v in event.detail.items()
            if k != "workers"
        }
        rows.append(
            (event.category, event.action, event.subject, detail)
        )
    return rows


class TestBatchCLI:
    def test_stdout_is_jsonl_transcript(
        self, requests_file, capsys
    ):
        assert main(["batch", str(requests_file)]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 6
        first = json.loads(lines[0])
        assert first["op"] == "stats"
        assert "ethics sections: 12/28" in first["output"]

    def test_exit_one_when_any_request_fails(
        self, tmp_path, capsys
    ):
        path = tmp_path / "r.jsonl"
        path.write_text(
            '{"op": "evidence", "args": {"entry_id": "ghost"}}\n'
        )
        assert main(["batch", str(path)]) == 1
        line = json.loads(capsys.readouterr().out)
        assert line["ok"] is False

    def test_output_matches_serial_subcommands(
        self, requests_file, capsys
    ):
        """Each batch line's output is the subcommand's stdout."""
        main(["batch", str(requests_file), "--no-cache"])
        batch_lines = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
        ]
        argv_forms = [
            ["stats"],
            ["table1", "--format", "csv"],
            ["legend"],
            ["table1", "--format", "csv"],
            ["evidence", "patreon"],
            ["intervals"],
        ]
        for line, argv in zip(batch_lines, argv_forms):
            assert main(argv) == line["exit_code"]
            assert capsys.readouterr().out == line["output"]

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_audit_chain_verifies_for_any_worker_count(
        self, requests_file, tmp_path, workers, capsys
    ):
        from repro.observability.log import verify_jsonl

        log = tmp_path / f"audit-{workers}.jsonl"
        assert (
            main(
                [
                    "batch",
                    str(requests_file),
                    "--workers",
                    str(workers),
                    "--audit-log",
                    str(log),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert verify_jsonl(log).ok
        events = _events(log)
        actions = [event.action for event in events]
        assert actions[0] == "batch-started"
        assert actions[-1] == "batch-finished"
        assert actions.count("request-started") == 6
        assert actions.count("request-completed") == 6

    def test_audit_content_invariant_under_workers(
        self, requests_file, tmp_path, capsys
    ):
        logs = {}
        for workers in (1, 4):
            log = tmp_path / f"audit-{workers}.jsonl"
            main(
                [
                    "batch",
                    str(requests_file),
                    "--workers",
                    str(workers),
                    "--audit-log",
                    str(log),
                ]
            )
            logs[workers] = _comparable(_events(log))
        capsys.readouterr()
        assert logs[1] == logs[4]

    def test_audit_content_invariant_under_warm_chunked_dispatch(
        self, requests_file, tmp_path, capsys
    ):
        """Cache-aware dispatch may not change the audit chain.

        The warm pool serves coordinator-cache hits without touching
        a worker and ships the rest in chunks — the chain content
        must still match a serial run event for event, including on
        a second batch where every request is a coordinator hit.
        """
        from repro.ops import shutdown_warm_pools

        shutdown_warm_pools()
        try:
            serial_log = tmp_path / "audit-serial.jsonl"
            main(
                [
                    "batch",
                    str(requests_file),
                    "--audit-log",
                    str(serial_log),
                ]
            )
            expected = _comparable(_events(serial_log))
            for attempt in ("first", "second"):
                log = tmp_path / f"audit-warm-{attempt}.jsonl"
                assert (
                    main(
                        [
                            "batch",
                            str(requests_file),
                            "--workers",
                            "2",
                            "--warm",
                            "--chunk-size",
                            "2",
                            "--audit-log",
                            str(log),
                        ]
                    )
                    == 0
                )
                assert _comparable(_events(log)) == expected
        finally:
            shutdown_warm_pools()
        capsys.readouterr()
