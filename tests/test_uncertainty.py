"""Unit and property tests for the uncertainty analysis."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    compare_proportions,
    required_sample_size,
    section5_intervals,
    wilson_interval,
)
from repro.errors import AnalysisError


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(12, 28)
        assert low < 12 / 28 < high

    def test_known_value(self):
        # Wilson 95% for 12/28 ~ (0.264, 0.609).
        low, high = wilson_interval(12, 28)
        assert low == pytest.approx(0.264, abs=0.005)
        assert high == pytest.approx(0.609, abs=0.005)

    def test_extremes_bounded(self):
        low, high = wilson_interval(0, 30)
        assert low == 0.0
        assert high > 0.0
        low, high = wilson_interval(30, 30)
        assert high == 1.0
        assert low < 1.0

    def test_validation(self):
        with pytest.raises(AnalysisError):
            wilson_interval(1, 0)
        with pytest.raises(AnalysisError):
            wilson_interval(5, 3)

    @given(
        total=st.integers(1, 500),
        data=st.data(),
    )
    def test_interval_properties(self, total, data):
        successes = data.draw(st.integers(0, total))
        low, high = wilson_interval(successes, total)
        assert 0.0 <= low <= successes / total <= high <= 1.0

    @given(total=st.integers(2, 300))
    def test_narrower_with_more_data(self, total):
        low_small, high_small = wilson_interval(total // 2, total)
        low_big, high_big = wilson_interval(
            (total * 10) // 2, total * 10
        )
        assert (high_big - low_big) < (high_small - low_small)


class TestSampleSize:
    def test_classic_385(self):
        # The textbook n for ±5% at p=0.5.
        assert required_sample_size(margin=0.05) == 385

    def test_smaller_margin_needs_more(self):
        assert required_sample_size(
            margin=0.02
        ) > required_sample_size(margin=0.05)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            required_sample_size(margin=0.0)
        with pytest.raises(AnalysisError):
            required_sample_size(margin=0.05, expected=1.5)

    def test_quantifies_the_papers_caution(self):
        # §5.5: "we would need a large representative sample" — at
        # n=28 the achievable margin is far above ±5%.
        needed = required_sample_size(margin=0.05)
        assert needed > 10 * 28


class TestCompareProportions:
    def test_identical_proportions_p_one(self):
        assert compare_proportions(5, 10, 10, 20) == pytest.approx(
            1.0
        )

    def test_extreme_difference_significant(self):
        p = compare_proportions(20, 20, 0, 20)
        assert p < 0.001

    def test_small_samples_rarely_significant(self):
        # The paper's point: apparent between-category differences at
        # these sizes are not statistically supportable.
        p = compare_proportions(5, 5, 3, 8)  # 100% vs 37.5%
        assert p > 0.05

    def test_validation(self):
        with pytest.raises(AnalysisError):
            compare_proportions(5, 0, 1, 2)


class TestSection5Intervals:
    def test_headline_estimates(self, corpus):
        estimates = {
            e.name: e for e in section5_intervals(corpus)
        }
        ethics = estimates["ethics sections"]
        assert ethics.successes == 12
        assert ethics.total == 28
        cs = estimates["controlled sharing"]
        assert cs.successes == 4

    def test_intervals_are_wide_at_n28(self, corpus):
        # The margin on the headline proportion exceeds ±15 points —
        # quantitative support for the paper's refusal to claim
        # trends.
        estimates = {
            e.name: e for e in section5_intervals(corpus)
        }
        assert estimates["ethics sections"].margin > 0.15

    def test_describe(self, corpus):
        text = section5_intervals(corpus)[0].describe()
        assert "95% CI" in text
