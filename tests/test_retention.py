"""Unit tests for retention policies and the data inventory."""

from __future__ import annotations

import pytest

from repro.errors import SafeguardError
from repro.safeguards import (
    DataInventory,
    RetentionPolicy,
    Sensitivity,
)


class TestRetentionPolicy:
    def test_defaults_ordered_by_hazard(self):
        policy = RetentionPolicy()
        assert policy.limit_for(Sensitivity.DERIVED) is None
        toxic = policy.limit_for(Sensitivity.TOXIC)
        identifiable = policy.limit_for(Sensitivity.IDENTIFIABLE)
        assert toxic < identifiable

    def test_unknown_class(self):
        with pytest.raises(SafeguardError):
            RetentionPolicy(limits={"radioactive": 10})

    def test_non_positive_limit(self):
        with pytest.raises(SafeguardError):
            RetentionPolicy(limits={Sensitivity.TOXIC: 0})

    def test_missing_class_lookup(self):
        policy = RetentionPolicy(limits={Sensitivity.TOXIC: 10})
        with pytest.raises(SafeguardError):
            policy.limit_for(Sensitivity.DERIVED)


class TestDataInventory:
    def test_acquire_and_destroy(self):
        inventory = DataInventory()
        inventory.acquire("dump", "booter db", Sensitivity.TOXIC, 0)
        assert len(inventory.active()) == 1
        inventory.destroy("dump", 10)
        assert not inventory.active()

    def test_duplicate_acquire(self):
        inventory = DataInventory()
        inventory.acquire("dump", "x", Sensitivity.DERIVED, 0)
        with pytest.raises(SafeguardError):
            inventory.acquire("dump", "x", Sensitivity.DERIVED, 1)

    def test_double_destroy(self):
        inventory = DataInventory()
        inventory.acquire("dump", "x", Sensitivity.DERIVED, 0)
        inventory.destroy("dump", 1)
        with pytest.raises(SafeguardError):
            inventory.destroy("dump", 2)

    def test_destroy_before_acquire_rejected(self):
        inventory = DataInventory()
        inventory.acquire("dump", "x", Sensitivity.DERIVED, 10)
        with pytest.raises(SafeguardError):
            inventory.destroy("dump", 5)

    def test_due_for_destruction(self):
        inventory = DataInventory()
        inventory.acquire("toxic", "malware", Sensitivity.TOXIC, 0)
        inventory.acquire(
            "derived", "metrics", Sensitivity.DERIVED, 0
        )
        due = inventory.due_for_destruction(180)
        assert [h.id for h in due] == ["toxic"]

    def test_derived_never_due(self):
        inventory = DataInventory()
        inventory.acquire("derived", "metrics", Sensitivity.DERIVED, 0)
        assert not inventory.due_for_destruction(100_000)

    def test_overdue_vs_due(self):
        inventory = DataInventory()
        inventory.acquire("toxic", "malware", Sensitivity.TOXIC, 0)
        assert inventory.due_for_destruction(180)
        assert not inventory.overdue(180)  # exactly at limit
        assert inventory.overdue(181)
        assert not inventory.compliant(181)

    def test_compliance_restored_by_destruction(self):
        inventory = DataInventory()
        inventory.acquire("toxic", "malware", Sensitivity.TOXIC, 0)
        inventory.destroy("toxic", 100)
        assert inventory.compliant(500)

    def test_unknown_holding(self):
        with pytest.raises(SafeguardError):
            DataInventory()["ghost"]

    def test_report_renders(self):
        inventory = DataInventory()
        inventory.acquire("toxic", "malware", Sensitivity.TOXIC, 0)
        report = inventory.report(200)
        assert "Due for destruction" in report
