"""Unit tests for access control and the hash-chained audit log."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import AccessDeniedError, SafeguardError
from repro.safeguards import AccessController, Action, AuditLog, Grant


class TestGrant:
    def test_unknown_action(self):
        with pytest.raises(SafeguardError):
            Grant(
                principal="a",
                resource="r",
                actions=frozenset({"frobnicate"}),
            )

    def test_needs_principal(self):
        with pytest.raises(SafeguardError):
            Grant(
                principal="", resource="r",
                actions=frozenset({Action.READ}),
            )


class TestAccessController:
    def test_owner_always_allowed(self):
        controller = AccessController("alice")
        controller.check("alice", Action.DELETE, "dump")

    def test_denied_without_grant(self):
        controller = AccessController("alice")
        with pytest.raises(AccessDeniedError):
            controller.check("bob", Action.READ, "dump")

    def test_grant_then_allowed(self):
        controller = AccessController("alice")
        controller.grant("alice", "bob", "dump", {Action.READ})
        controller.check("bob", Action.READ, "dump")
        with pytest.raises(AccessDeniedError):
            controller.check("bob", Action.EXPORT, "dump")

    def test_grants_are_per_resource(self):
        controller = AccessController("alice")
        controller.grant("alice", "bob", "dump-a", {Action.READ})
        with pytest.raises(AccessDeniedError):
            controller.check("bob", Action.READ, "dump-b")

    def test_non_owner_cannot_grant(self):
        controller = AccessController("alice")
        with pytest.raises(AccessDeniedError):
            controller.grant("bob", "carol", "dump", {Action.READ})

    def test_delegated_granting(self):
        controller = AccessController("alice")
        controller.grant("alice", "bob", "dump", {Action.GRANT})
        controller.grant("bob", "carol", "dump", {Action.READ})
        assert controller.can("carol", Action.READ, "dump")

    def test_revoke(self):
        controller = AccessController("alice")
        controller.grant("alice", "bob", "dump", {Action.READ})
        assert controller.revoke("bob", "dump") == 1
        assert not controller.can("bob", Action.READ, "dump")

    def test_unknown_action_rejected(self):
        controller = AccessController("alice")
        with pytest.raises(SafeguardError):
            controller.check("alice", "frobnicate", "dump")

    def test_every_attempt_logged(self):
        controller = AccessController("alice")
        controller.check("alice", Action.READ, "dump")
        with pytest.raises(AccessDeniedError):
            controller.check("eve", Action.READ, "dump")
        assert len(controller.audit) == 2
        assert len(controller.audit.denials()) == 1

    def test_owner_required(self):
        with pytest.raises(SafeguardError):
            AccessController("")


class TestAuditLog:
    def test_chain_verifies(self):
        log = AuditLog()
        for index in range(5):
            log.append("alice", Action.READ, f"r{index}", True)
        assert log.verify_chain()

    def test_tampering_breaks_chain(self):
        log = AuditLog()
        log.append("alice", Action.READ, "dump", True)
        log.append("bob", Action.READ, "dump", False)
        record = log._records[0]
        log._records[0] = dataclasses.replace(record, allowed=False)
        assert not log.verify_chain()

    def test_removal_breaks_chain(self):
        log = AuditLog()
        for index in range(3):
            log.append("alice", Action.READ, f"r{index}", True)
        del log._records[1]
        assert not log.verify_chain()

    def test_by_principal(self):
        log = AuditLog()
        log.append("alice", Action.READ, "dump", True)
        log.append("bob", Action.READ, "dump", True)
        assert len(log.by_principal("alice")) == 1
