"""Unit tests for the human-rights baseline."""

from __future__ import annotations

import pytest

from repro.errors import EthicsModelError
from repro.ethics import (
    RIGHTS,
    RightsContext,
    rights_at_risk,
)


class TestRightsInventory:
    def test_paper_list_complete(self):
        names = {right.id for right in RIGHTS}
        assert names == {
            "life",
            "no-arbitrary-arrest",
            "fair-trial",
            "presumption-of-innocence",
            "privacy",
            "property",
        }

    def test_udhr_articles_plausible(self):
        for right in RIGHTS:
            assert 1 <= right.udhr_article <= 30


class TestRightsAtRisk:
    def test_benign_context_no_risks(self):
        assert rights_at_risk(RightsContext()) == ()

    def test_philippines_example(self):
        # Identified drug-market participants + extra-judicial
        # violence → the right to life is at risk (§2).
        risks = rights_at_risk(
            RightsContext(
                identifies_individuals=True,
                implies_criminality=True,
                extrajudicial_violence_risk=True,
            )
        )
        assert any(r.right.id == "life" for r in risks)
        life = next(r for r in risks if r.right.id == "life")
        assert "Philippines" in life.mechanism

    def test_identification_is_the_gateway(self):
        # Without identification, criminality alone risks nothing.
        risks = rights_at_risk(
            RightsContext(
                implies_criminality=True,
                extrajudicial_violence_risk=True,
                reaches_law_enforcement=True,
            )
        )
        assert risks == ()

    def test_law_enforcement_route(self):
        risks = rights_at_risk(
            RightsContext(
                identifies_individuals=True,
                implies_criminality=True,
                reaches_law_enforcement=True,
            )
        )
        ids = {r.right.id for r in risks}
        assert "no-arbitrary-arrest" in ids
        assert "fair-trial" in ids
        assert "presumption-of-innocence" in ids
        assert "life" not in ids

    def test_privacy_without_criminality(self):
        risks = rights_at_risk(
            RightsContext(
                identifies_individuals=True,
                contains_private_life=True,
            )
        )
        assert {r.right.id for r in risks} == {"privacy"}

    def test_property_route(self):
        risks = rights_at_risk(
            RightsContext(
                identifies_individuals=True,
                triggers_asset_action=True,
            )
        )
        assert {r.right.id for r in risks} == {"property"}

    def test_mechanisms_are_explanatory(self):
        risks = rights_at_risk(
            RightsContext(
                identifies_individuals=True,
                implies_criminality=True,
                reaches_law_enforcement=True,
                contains_private_life=True,
                extrajudicial_violence_risk=True,
                triggers_asset_action=True,
            )
        )
        assert len(risks) == 6
        assert all(len(r.mechanism) > 30 for r in risks)

    def test_type_checked(self):
        with pytest.raises(EthicsModelError):
            rights_at_risk({"identifies_individuals": True})
