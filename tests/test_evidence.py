"""Unit tests for the per-entry evidence (§4 grounding quotes)."""

from __future__ import annotations

import pytest

from repro.corpus import (
    EVIDENCE,
    Evidence,
    evidence_for,
    extended_corpus,
    verify_evidence_coverage,
)
from repro.errors import CorpusError


class TestEvidenceRecords:
    def test_full_coverage_of_table1(self, corpus):
        assert verify_evidence_coverage(corpus) == ()

    def test_every_record_cites_section4(self):
        for evidence in EVIDENCE.values():
            assert evidence.section.startswith("4.")

    def test_quotes_are_substantive(self):
        for evidence in EVIDENCE.values():
            assert all(len(quote) > 30 for quote in evidence.quotes)

    def test_quotes_required(self):
        with pytest.raises(CorpusError):
            Evidence(entry_id="x", section="4.1", quotes=())

    def test_lookup(self):
        evidence = evidence_for("udp-ddos-thomas")
        assert any(
            "no other ground truth" in quote
            for quote in evidence.quotes
        )

    def test_unknown_lookup(self):
        with pytest.raises(CorpusError):
            evidence_for("ghost-entry")

    def test_extensions_exempt_from_coverage(self):
        missing = verify_evidence_coverage(extended_corpus())
        assert missing == ()

    def test_evidence_matches_coding_spotchecks(self, corpus):
        # The quotes should support the coding they ground.
        patreon = evidence_for("patreon")
        assert any(
            "unethical to do so" in quote for quote in patreon.quotes
        )
        assert not corpus["patreon"].used_data

        exempt = evidence_for("booters-karami-stress")
        assert any(
            "REB exemption" in quote for quote in exempt.quotes
        )
        assert corpus["booters-karami-stress"].exemption_reason

    def test_evidence_ids_exist_in_corpus(self, corpus):
        for entry_id in EVIDENCE:
            assert entry_id in corpus
