"""Unit tests for the §5.1 justification critiques."""

from __future__ import annotations

import pytest

from repro.errors import EthicsModelError
from repro.ethics import (
    JUSTIFICATION_IDS,
    JustificationFacts,
    evaluate_all_justifications,
    evaluate_justification,
)


class TestDispatch:
    def test_unknown_justification(self):
        with pytest.raises(EthicsModelError):
            evaluate_justification("vibes", JustificationFacts())

    def test_evaluate_all_covers_every_id(self):
        verdicts = evaluate_all_justifications(JustificationFacts())
        assert tuple(v.justification_id for v in verdicts) == (
            JUSTIFICATION_IDS
        )


class TestNotTheFirst:
    def test_never_acceptable_alone(self):
        verdict = evaluate_justification(
            "not-the-first",
            JustificationFacts(prior_published_use=True),
        )
        assert not verdict.acceptable
        assert verdict.weight == "weak"

    def test_different_use_breaks_it(self):
        verdict = evaluate_justification(
            "not-the-first",
            JustificationFacts(
                prior_published_use=True,
                use_differs_from_prior=True,
            ),
        )
        assert verdict.weight == "none"
        assert "different" in verdict.critique

    def test_no_prior_use(self):
        verdict = evaluate_justification(
            "not-the-first", JustificationFacts()
        )
        assert verdict.weight == "none"


class TestPublicData:
    def test_not_public_fails(self):
        verdict = evaluate_justification(
            "public-data", JustificationFacts(data_public=False)
        )
        assert verdict.weight == "none"

    def test_new_techniques_break_it(self):
        verdict = evaluate_justification(
            "public-data",
            JustificationFacts(
                data_public=True, applies_new_techniques=True
            ),
        )
        assert not verdict.acceptable
        assert "deanonymisation" in verdict.critique

    def test_public_alone_is_weak(self):
        verdict = evaluate_justification(
            "public-data", JustificationFacts(data_public=True)
        )
        assert not verdict.acceptable
        assert verdict.weight == "weak"


class TestNoAdditionalHarm:
    def test_inherent_harm_blocks(self):
        verdict = evaluate_justification(
            "no-additional-harm",
            JustificationFacts(use_is_inherent_harm=True),
        )
        assert verdict.weight == "none"

    def test_requires_secure_handling(self):
        verdict = evaluate_justification(
            "no-additional-harm",
            JustificationFacts(
                no_persons_identified=True, secure_handling=False
            ),
        )
        assert not verdict.acceptable
        assert any("securely" in c for c in verdict.conditions)

    def test_holds_with_conditions(self):
        verdict = evaluate_justification(
            "no-additional-harm",
            JustificationFacts(
                no_persons_identified=True, secure_handling=True
            ),
        )
        assert verdict.acceptable
        assert verdict.weight == "supporting"


class TestFightMaliciousUse:
    def test_needs_real_adversaries(self):
        verdict = evaluate_justification(
            "fight-malicious-use", JustificationFacts()
        )
        assert verdict.weight == "none"

    def test_greater_harm_blocks(self):
        verdict = evaluate_justification(
            "fight-malicious-use",
            JustificationFacts(
                adversaries_use_data=True,
                defence_creates_greater_harm=True,
            ),
        )
        assert not verdict.acceptable

    def test_defensible_case(self):
        verdict = evaluate_justification(
            "fight-malicious-use",
            JustificationFacts(adversaries_use_data=True),
        )
        assert verdict.acceptable


class TestNecessaryData:
    def test_alternative_source_blocks(self):
        # The Patreon lesson: scraping sufficed.
        verdict = evaluate_justification(
            "necessary-data",
            JustificationFacts(no_alternative_source=False),
        )
        assert verdict.weight == "none"
        assert "Patreon" in verdict.critique

    def test_needs_public_interest(self):
        verdict = evaluate_justification(
            "necessary-data",
            JustificationFacts(no_alternative_source=True),
        )
        assert not verdict.acceptable

    def test_strong_when_complete(self):
        verdict = evaluate_justification(
            "necessary-data",
            JustificationFacts(
                no_alternative_source=True,
                public_interest_case=True,
            ),
        )
        assert verdict.acceptable
        assert verdict.weight == "strong"
