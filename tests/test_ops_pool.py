"""Tests for the warm worker pool and cache-aware batch dispatch.

Covers the contracts the warm-pool subsystem adds on top of the
batch executor: transcript byte-identity at any worker count with
warm pools and chunked submission (including the all-cache-hit
second run), the shared-cache protocol (a pure result computed by
one worker is a coordinator hit for an identical later request),
aggregated cache statistics, fail-fast validation that never spawns
a worker for an invalid batch, and the graceful-degradation path —
a crashed worker maps to :class:`~repro.errors.BatchError` naming
the failing request, and the pool rebuilds lazily on next use.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.errors import BatchError
from repro.ops import (
    BatchExecutor,
    ResultCache,
    auto_chunk_size,
    load_requests,
    shutdown_warm_pools,
    warm_pool,
)
from repro.ops.pool import WarmPool
from repro.ops.spec import OpResponse

REQUEST_LINES = [
    {"op": "stats"},
    {"op": "table1", "args": {"format": "csv"}},
    {"op": "legend"},
    {"op": "table1", "args": {"format": "csv"}},
    {"op": "evidence", "args": {"entry_id": "patreon"}},
    {"op": "intervals"},
]


@pytest.fixture
def requests_file(tmp_path):
    path = tmp_path / "requests.jsonl"
    path.write_text(
        "".join(json.dumps(line) + "\n" for line in REQUEST_LINES),
        encoding="utf-8",
    )
    return path


@pytest.fixture(autouse=True)
def isolated_warm_pools():
    """Every test starts and ends with no live warm pools."""
    shutdown_warm_pools()
    yield
    shutdown_warm_pools()


class TestAutoChunkSize:
    def test_targets_four_chunks_per_worker(self):
        assert auto_chunk_size(32, 4) == 2
        assert auto_chunk_size(64, 4) == 4

    def test_small_batches_keep_chunks_of_one(self):
        assert auto_chunk_size(3, 4) == 1
        assert auto_chunk_size(0, 4) == 1

    def test_huge_batches_hit_the_ceiling(self):
        assert auto_chunk_size(100_000, 2) == 32

    def test_never_below_one(self):
        assert auto_chunk_size(1, 16) == 1


class TestValidation:
    def test_rejects_zero_chunk_size(self):
        with pytest.raises(BatchError):
            BatchExecutor(workers=2, chunk_size=0)

    def test_rejects_zero_workers_on_pool(self):
        with pytest.raises(BatchError):
            WarmPool(0)


class TestResultCacheProtocol:
    def _response(self, text: str) -> OpResponse:
        return OpResponse(payload={"value": text}, text=text)

    def test_peek_and_contains_do_not_count(self):
        cache = ResultCache()
        cache.put("k", self._response("v"))
        assert "k" in cache
        assert cache.peek("k").text == "v"
        assert cache.peek("absent") is None
        assert "absent" not in cache
        assert cache.hits == 0
        assert cache.misses == 0

    def test_export_merge_round_trip(self):
        source = ResultCache()
        source.put("a", self._response("A"))
        source.put("b", self._response("B"))
        target = ResultCache()
        assert target.merge(source.export()) == 2
        assert target.peek("a").text == "A"
        assert target.peek("b").text == "B"
        assert target.hits == 0 and target.misses == 0

    def test_merge_keeps_existing_entries(self):
        target = ResultCache()
        target.put("a", self._response("original"))
        merged = target.merge([("a", self._response("other"))])
        assert merged == 0
        assert target.peek("a").text == "original"


class TestWarmChunkedTranscripts:
    @pytest.mark.parametrize(
        "workers, chunk_size", [(2, 1), (2, 3), (4, None)]
    )
    def test_byte_identical_and_no_cold_start_on_second_run(
        self, requests_file, workers, chunk_size
    ):
        requests = load_requests(requests_file)
        serial = BatchExecutor(workers=1).run(requests)
        executor = BatchExecutor(
            workers=workers, warm=True, chunk_size=chunk_size
        )
        first = executor.run(requests)
        assert first.text() == serial.text()
        # Second run on the same pool: everything is served from the
        # persistent coordinator cache, and the transcript must not
        # change — the all-hit dispatch plan is still byte-identical.
        second = executor.run(requests)
        assert second.text() == serial.text()
        assert second.summary["cache"]["workers"] == {
            "hits": 0,
            "misses": 0,
        }

    def test_chunked_no_cache_matches_serial(self, requests_file):
        requests = load_requests(requests_file)
        serial = BatchExecutor(workers=1, use_cache=False).run(
            requests
        )
        chunked = BatchExecutor(
            workers=2, use_cache=False, warm=True, chunk_size=2
        ).run(requests)
        assert chunked.text() == serial.text()
        assert chunked.summary["cache"]["enabled"] is False
        assert "hits" not in chunked.summary["cache"]


class TestSharedCache:
    def test_worker_result_becomes_coordinator_hit(self, tmp_path):
        """Worker A's pure result serves worker B's identical request.

        With one request per chunk and two workers, the first
        ``table1`` computes in a worker; the duplicate later in the
        file must be served by the coordinator from the merged
        shared cache, never re-dispatched.
        """
        path = tmp_path / "r.jsonl"
        path.write_text(
            '{"op": "table1", "args": {"format": "csv"}}\n'
            '{"op": "stats"}\n'
            '{"op": "table1", "args": {"format": "csv"}}\n'
        )
        result = BatchExecutor(
            workers=2, warm=True, chunk_size=1
        ).run(load_requests(path))
        cache = result.summary["cache"]
        assert cache["scope"] == "shared-warm"
        assert cache["workers"]["misses"] == 2  # table1 + stats
        assert cache["coordinator"]["hits"] == 1  # the duplicate
        assert cache["hits"] == 1
        assert cache["misses"] == 2

    def test_parallel_stats_match_serial_totals(self, requests_file):
        """Satellite fix: parallel batches report cache stats again."""
        requests = load_requests(requests_file)
        serial = BatchExecutor(workers=1).run(requests)
        parallel = BatchExecutor(workers=2, warm=True).run(requests)
        assert (
            parallel.summary["cache"]["hits"]
            == serial.summary["cache"]["hits"]
        )
        assert (
            parallel.summary["cache"]["misses"]
            == serial.summary["cache"]["misses"]
        )

    def test_second_batch_served_without_pool_traffic(
        self, requests_file
    ):
        requests = load_requests(requests_file)
        executor = BatchExecutor(workers=2, warm=True)
        executor.run(requests)
        second = executor.run(requests)
        cache = second.summary["cache"]
        assert cache["workers"] == {"hits": 0, "misses": 0}
        assert cache["coordinator"]["hits"] > 0
        assert second.summary["ok"] == len(requests)

    def test_warm_serial_reuses_cache_across_runs(
        self, requests_file
    ):
        requests = load_requests(requests_file)
        executor = BatchExecutor(workers=1, warm=True)
        first = executor.run(requests)
        second = executor.run(requests)
        assert first.summary["cache"]["scope"] == "warm"
        assert second.summary["cache"]["misses"] == 0
        assert second.summary["cache"]["hits"] == len(requests)
        assert second.text() == first.text()


class TestFailFastValidation:
    def test_invalid_batch_never_spawns_a_worker(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_text(
            '{"op": "no-such-op"}\n{"op": "batch", "args": {}}\n'
        )
        result = BatchExecutor(workers=4, warm=True).run(
            load_requests(path)
        )
        assert [line["ok"] for line in result.lines] == [
            False,
            False,
        ]
        assert "unknown operation" in result.lines[0]["error"]
        assert "not batchable" in result.lines[1]["error"]
        # The pool object exists, but no executor was ever built.
        assert warm_pool(4, True).live is False

    def test_mixed_batch_fails_invalid_lines_in_place(
        self, tmp_path
    ):
        path = tmp_path / "r.jsonl"
        path.write_text(
            '{"op": "stats"}\n'
            '{"op": "no-such-op"}\n'
            '{"op": "legend"}\n'
        )
        result = BatchExecutor(workers=2, warm=True).run(
            load_requests(path)
        )
        assert [line["ok"] for line in result.lines] == [
            True,
            False,
            True,
        ]
        serial = BatchExecutor(workers=1).run(load_requests(path))
        assert result.text() == serial.text()


def _crash_worker(chunk, telemetry, use_cache):
    """A worker entry that dies without cleanup (test double)."""
    os._exit(13)


_FORK_ONLY = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="the crash double reaches workers via fork inheritance",
)


@_FORK_ONLY
class TestWorkerLoss:
    def test_crash_maps_to_batch_error_with_request_index(
        self, requests_file, monkeypatch
    ):
        from repro.ops import pool as pool_module

        monkeypatch.setattr(
            pool_module, "_execute_chunk", _crash_worker
        )
        executor = BatchExecutor(workers=2, chunk_size=2)
        with pytest.raises(BatchError) as excinfo:
            executor.run(load_requests(requests_file))
        message = str(excinfo.value)
        assert "worker process lost" in message
        assert "requests 0-1" in message
        assert "rebuild" in message

    def test_pool_rebuilds_lazily_after_loss(
        self, requests_file, monkeypatch
    ):
        from repro.ops import pool as pool_module

        requests = load_requests(requests_file)
        serial = BatchExecutor(workers=1).run(requests)
        monkeypatch.setattr(
            pool_module, "_execute_chunk", _crash_worker
        )
        executor = BatchExecutor(
            workers=2, warm=True, use_cache=False
        )
        with pytest.raises(BatchError):
            executor.run(requests)
        pool = warm_pool(2, False)
        assert pool.live is False
        assert pool.rebuilds == 1
        monkeypatch.undo()
        # Next use rebuilds the executor transparently.
        recovered = executor.run(requests)
        assert recovered.text() == serial.text()
        assert pool.live is True

    def test_worker_loss_emits_audit_event(
        self, requests_file, monkeypatch, tmp_path
    ):
        from repro.observability import Observer, observed
        from repro.ops import pool as pool_module

        monkeypatch.setattr(
            pool_module, "_execute_chunk", _crash_worker
        )
        log = tmp_path / "audit.jsonl"
        observer = Observer.recording(log)
        executor = BatchExecutor(workers=2, use_cache=False)
        with observed(observer):
            with pytest.raises(BatchError):
                executor.run(load_requests(requests_file))
        observer.trail.close()
        from repro.observability import load_events

        actions = [event.action for event in load_events(log)]
        assert "worker-lost" in actions


class TestStaticcheckOverPool:
    def test_r8_r9_stay_clean_over_pool_submission_sites(self):
        """The interprocedural rules pass over the new subsystem."""
        from repro.staticcheck import lint_repo, unsuppressed

        findings = unsuppressed(
            lint_repo(select=("R8", "R9"), incremental=False)
        )
        assert not findings, findings

    def test_r9_audits_the_pool_module(self):
        """The submission sites are actually visible to R9.

        Guards against the rule silently losing sight of the pool:
        the module must bind a tracked executor name and submit a
        module-level callable through it.
        """
        import ast
        import inspect

        from repro.ops import pool as pool_module
        from repro.staticcheck.rules_workers import (
            WorkerSafetyRule,
        )

        tree = ast.parse(inspect.getsource(pool_module))
        submits = [
            node
            for node in ast.walk(tree)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "submit"
        ]
        assert submits, "pool module no longer submits work?"
        for call in submits:
            target = call.args[0]
            assert isinstance(target, ast.Name)
            assert target.id == "_execute_chunk"
        assert WorkerSafetyRule().id == "R9"


class TestStreamingLoadRequests:
    def test_streams_large_files(self, tmp_path):
        path = tmp_path / "big.jsonl"
        with path.open("w", encoding="utf-8") as stream:
            for _ in range(5000):
                stream.write('{"op": "stats"}\n')
        requests = load_requests(path)
        assert len(requests) == 5000
        assert requests[4999].index == 4999

    def test_line_numbers_survive_streaming(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_text('{"op": "stats"}\n\nnot json\n')
        with pytest.raises(BatchError) as excinfo:
            load_requests(path)
        assert ":3:" in str(excinfo.value)
