"""Unit tests for the shared helper utilities."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro._util import (
    clamp,
    ensure_unique,
    oxford_join,
    percent,
    slugify,
    stable_sorted,
    wrap_text,
)


class TestSlugify:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("Computer Misuse", "computer-misuse"),
            ("  Anthropology & Transparency ", "anthropology-transparency"),
            ("REB approval", "reb-approval"),
            ("already-a-slug", "already-a-slug"),
            ("Ünïcödé Náme", "unicode-name"),
        ],
    )
    def test_examples(self, text, expected):
        assert slugify(text) == expected

    @given(st.text(max_size=60))
    def test_idempotent(self, text):
        once = slugify(text)
        assert slugify(once) == once

    @given(st.text(max_size=60))
    def test_output_alphabet(self, text):
        slug = slugify(text)
        assert all(c.isascii() and (c.isalnum() or c == "-") for c in slug)


class TestEnsureUnique:
    def test_passes_unique(self):
        assert ensure_unique([1, 2, 3]) == [1, 2, 3]

    def test_raises_on_duplicate(self):
        with pytest.raises(ValueError, match="duplicate widget"):
            ensure_unique([1, 1], "widget")


class TestWrapText:
    def test_respects_width(self):
        lines = wrap_text("a " * 50, width=20)
        assert all(len(line) <= 20 for line in lines)

    def test_indent_applied_and_counted(self):
        lines = wrap_text("word " * 20, width=20, indent="  ")
        assert all(line.startswith("  ") for line in lines)
        assert all(len(line) <= 20 for line in lines)

    def test_long_word_on_own_line(self):
        lines = wrap_text("short " + "x" * 40, width=20)
        assert "x" * 40 in lines

    def test_empty_text(self):
        assert wrap_text("", width=20) == [""]

    def test_width_must_exceed_indent(self):
        with pytest.raises(ValueError):
            wrap_text("x", width=2, indent="    ")

    @given(st.text(alphabet="abc def", max_size=200))
    def test_content_preserved(self, text):
        lines = wrap_text(text, width=15)
        assert " ".join(" ".join(lines).split()) == " ".join(
            text.split()
        )


class TestOxfordJoin:
    @pytest.mark.parametrize(
        "parts,expected",
        [
            ([], ""),
            (["a"], "a"),
            (["a", "b"], "a and b"),
            (["a", "b", "c"], "a, b, and c"),
        ],
    )
    def test_examples(self, parts, expected):
        assert oxford_join(parts) == expected

    def test_conjunction(self):
        assert oxford_join(["a", "b", "c"], conjunction="or") == (
            "a, b, or c"
        )

    def test_empty_parts_dropped(self):
        assert oxford_join(["a", "", "b"]) == "a and b"


class TestNumericHelpers:
    def test_percent(self):
        assert percent(1, 4) == 25.0
        assert percent(3, 0) == 0.0

    def test_clamp(self):
        assert clamp(5, 0, 3) == 3
        assert clamp(-1, 0, 3) == 0
        assert clamp(2, 0, 3) == 2

    def test_clamp_bad_bounds(self):
        with pytest.raises(ValueError):
            clamp(1, 3, 0)

    def test_stable_sorted_none_last(self):
        items = ["b", None, "a"]
        result = stable_sorted(items, key=lambda x: x)
        assert result == ["a", "b", None]

    def test_stable_sorted_plain(self):
        assert stable_sorted([3, 1, 2]) == [1, 2, 3]
