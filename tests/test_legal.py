"""Unit tests for jurisdictions, statutes and the legal rules engine."""

from __future__ import annotations

import pytest

from repro.corpus import DataOrigin
from repro.errors import LegalModelError
from repro.legal import (
    DataProfile,
    GERMANY,
    JurisdictionSet,
    RiskLevel,
    UK,
    US,
    analyze_legal,
    relevant_jurisdictions,
    statute_by_id,
    statutes_for,
)


class TestJurisdictions:
    def test_from_codes(self):
        jset = JurisdictionSet.from_codes(["uk", "US"])
        assert set(jset.codes) == {"UK", "US"}

    def test_unknown_code(self):
        with pytest.raises(LegalModelError):
            JurisdictionSet.from_codes(["ZZ"])

    def test_empty_rejected(self):
        with pytest.raises(LegalModelError):
            JurisdictionSet([])

    def test_germany_treats_ips_as_personal(self):
        assert GERMANY.ip_addresses_personal
        assert not US.ip_addresses_personal

    def test_uk_terrorism_reporting_duty(self):
        assert UK.must_report_terrorism
        assert not US.must_report_terrorism

    def test_relevant_jurisdictions_unknown_fallback(self):
        jset = relevant_jurisdictions(
            researcher_locations=("UK",),
            subject_locations=("BR",),
        )
        assert "UK" in jset
        assert "XX" in jset  # Brazil falls back to generic

    def test_set_queries(self):
        jset = JurisdictionSet.from_codes(["UK", "US"])
        assert jset.any_gdpr()
        assert jset.any_ip_personal()
        assert jset.any_terrorism_reporting_duty()


class TestStatutes:
    def test_lookup_by_id(self):
        cma = statute_by_id("uk-cma-1990")
        assert cma.issue == "computer-misuse"

    def test_unknown_id(self):
        with pytest.raises(LegalModelError):
            statute_by_id("nope")

    def test_statutes_for_issue_and_jurisdiction(self):
        uk_cm = statutes_for("computer-misuse", "UK")
        assert any(s.id == "uk-cma-1990" for s in uk_cm)
        assert not any(s.id == "us-cfaa" for s in uk_cm)

    def test_eu_statutes_apply_to_members(self):
        de_privacy = statutes_for("data-privacy", "DE")
        assert any(s.id == "eu-gdpr" for s in de_privacy)

    def test_generic_statutes_apply_everywhere(self):
        us_copyright = statutes_for("copyright", "US")
        assert any(s.id == "generic-copyright" for s in us_copyright)

    def test_unknown_issue(self):
        with pytest.raises(LegalModelError):
            statutes_for("jaywalking")

    def test_gdpr_has_research_exemption(self):
        assert statute_by_id("eu-gdpr").research_exemption

    def test_indecent_images_no_exemption(self):
        for statute in statutes_for("indecent-images"):
            assert not statute.research_exemption


class TestRulesEngine:
    def _analyze(self, profile, codes=("US",), **kwargs):
        return analyze_legal(
            profile, JurisdictionSet.from_codes(codes), **kwargs
        )

    def test_researcher_intrusion_severe(self):
        report = self._analyze(
            DataProfile(collected_by_researcher_intrusion=True)
        )
        assert report.overall_risk == RiskLevel.SEVERE
        assert "computer-misuse" in report.applicable_issues()

    def test_unintended_disclosure_no_misuse(self):
        report = self._analyze(
            DataProfile(origin=DataOrigin.UNINTENDED_DISCLOSURE)
        )
        assert "computer-misuse" not in report.applicable_issues()

    def test_us_government_work_no_copyright(self):
        report = self._analyze(
            DataProfile(
                copyrighted_material=True, us_government_work=True
            )
        )
        assert "copyright" not in report.applicable_issues()

    def test_ip_addresses_jurisdiction_dependent(self):
        profile = DataProfile(contains_ip_addresses=True)
        us_report = self._analyze(profile, ("US",))
        de_report = self._analyze(profile, ("DE",))
        assert "data-privacy" not in us_report.applicable_issues()
        assert "data-privacy" in de_report.applicable_issues()

    def test_research_exemption_lowers_privacy_risk(self):
        profile = DataProfile(contains_email_addresses=True)
        de = self._analyze(profile, ("DE",)).findings_for(
            "data-privacy"
        )
        us = self._analyze(profile, ("US",)).findings_for(
            "data-privacy"
        )
        de_risk = [f.risk for f in de if f.applicable][0]
        us_risk = [f.risk for f in us if f.applicable][0]
        assert RiskLevel.ORDER.index(de_risk) < RiskLevel.ORDER.index(
            us_risk
        )

    def test_deanonymization_raises_privacy_risk(self):
        profile = DataProfile(
            contains_email_addresses=True, plans_deanonymization=True
        )
        report = self._analyze(profile)
        finding = [
            f
            for f in report.findings_for("data-privacy")
            if f.applicable
        ][0]
        assert finding.risk == RiskLevel.HIGH

    def test_terrorism_reporting_duty_in_uk(self):
        profile = DataProfile(terrorism_related=True)
        uk_finding = [
            f
            for f in self._analyze(profile, ("UK",)).findings_for(
                "terrorism"
            )
            if f.applicable
        ][0]
        assert uk_finding.risk == RiskLevel.HIGH
        assert any("report" in m for m in uk_finding.mitigations)

    def test_indecent_images_always_severe(self):
        report = self._analyze(
            DataProfile(may_contain_indecent_images=True)
        )
        assert report.overall_risk == RiskLevel.SEVERE

    def test_classified_high(self):
        report = self._analyze(DataProfile(classified=True))
        finding = [
            f
            for f in report.findings_for("national-security")
            if f.applicable
        ][0]
        assert finding.risk == RiskLevel.HIGH

    def test_state_sensitive_low(self):
        report = self._analyze(DataProfile(state_sensitive=True))
        finding = [
            f
            for f in report.findings_for("national-security")
            if f.applicable
        ][0]
        assert finding.risk == RiskLevel.LOW

    def test_contracts(self):
        report = self._analyze(
            DataProfile(violates_terms_of_service=True)
        )
        assert "contracts" in report.applicable_issues()

    def test_reb_approval_adds_defence(self):
        profile = DataProfile()
        report = self._analyze(profile, reb_approved=True)
        misuse = report.findings_for("computer-misuse")[0]
        assert any("REB" in d for d in misuse.defences)

    def test_paid_offenders_high_risk(self):
        report = self._analyze(DataProfile(paid_offenders=True))
        assert report.overall_risk == RiskLevel.HIGH

    def test_lawful_with_safeguards_property(self):
        benign = self._analyze(DataProfile())
        toxic = self._analyze(
            DataProfile(may_contain_indecent_images=True)
        )
        assert benign.lawful_with_safeguards
        assert not toxic.lawful_with_safeguards

    def test_invalid_origin_rejected(self):
        with pytest.raises(LegalModelError):
            DataProfile(origin="found-on-bus")

    def test_describe_renders(self):
        report = self._analyze(
            DataProfile(contains_email_addresses=True)
        )
        text = report.describe()
        assert "Overall legal risk" in text
