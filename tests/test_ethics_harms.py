"""Unit and property tests for harm/benefit instances."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import EthicsModelError
from repro.ethics import BenefitInstance, HarmInstance, Likelihood, Severity


def harm(**kwargs) -> HarmInstance:
    defaults = dict(
        description="re-exposure of leaked credentials",
        kind="SI",
        stakeholder_id="data-subjects",
        likelihood=0.5,
        severity=0.5,
    )
    defaults.update(kwargs)
    return HarmInstance(**defaults)


class TestScales:
    def test_likelihood_words(self):
        assert Likelihood.parse("likely") == 0.8
        assert Likelihood.parse("RARE") == 0.05

    def test_severity_words(self):
        assert Severity.parse("major") == 0.8

    def test_unknown_words(self):
        with pytest.raises(EthicsModelError):
            Likelihood.parse("probably")
        with pytest.raises(EthicsModelError):
            Severity.parse("bad")

    def test_out_of_range(self):
        with pytest.raises(EthicsModelError):
            Likelihood.parse(1.5)
        with pytest.raises(EthicsModelError):
            Severity.parse(-0.1)


class TestHarmInstance:
    def test_unknown_kind(self):
        with pytest.raises(EthicsModelError):
            harm(kind="XX")

    def test_accepts_word_scales(self):
        instance = harm(likelihood="possible", severity="major")
        assert instance.raw_risk == pytest.approx(0.5 * 0.8)

    def test_empty_description(self):
        with pytest.raises(EthicsModelError):
            harm(description="")

    def test_residual_risk_with_mitigation(self):
        instance = harm(likelihood=0.8, severity=0.5, mitigation=0.5)
        assert instance.residual_risk == pytest.approx(0.8 * 0.5 * 0.5)

    def test_mitigations_compose_multiplicatively(self):
        instance = harm(mitigation=0.5).mitigated(0.5)
        assert instance.mitigation == pytest.approx(0.75)

    def test_bad_mitigation(self):
        with pytest.raises(EthicsModelError):
            harm(mitigation=1.5)
        with pytest.raises(EthicsModelError):
            harm().mitigated(-0.1)

    @given(
        likelihood=st.floats(0.01, 1.0),
        severity=st.floats(0.01, 1.0),
        mitigation=st.floats(0.0, 1.0),
    )
    def test_residual_never_exceeds_raw(
        self, likelihood, severity, mitigation
    ):
        instance = harm(
            likelihood=likelihood,
            severity=severity,
            mitigation=mitigation,
        )
        assert instance.residual_risk <= instance.raw_risk + 1e-12

    @given(
        first=st.floats(0.0, 1.0),
        second=st.floats(0.0, 1.0),
    )
    def test_composition_order_independent(self, first, second):
        base = harm()
        one_way = base.mitigated(first).mitigated(second)
        other_way = base.mitigated(second).mitigated(first)
        assert one_way.mitigation == pytest.approx(
            other_way.mitigation
        )


class TestBenefitInstance:
    def test_unknown_kind(self):
        with pytest.raises(EthicsModelError):
            BenefitInstance(
                description="x",
                kind="ZZ",
                beneficiary="society",
                magnitude=0.5,
            )

    def test_expected_value(self):
        benefit = BenefitInstance(
            description="better password policies",
            kind="DM",
            beneficiary="society",
            magnitude=0.6,
            likelihood=0.5,
        )
        assert benefit.expected_value == pytest.approx(0.3)

    def test_magnitude_bounds(self):
        with pytest.raises(EthicsModelError):
            BenefitInstance(
                description="x",
                kind="R",
                beneficiary="society",
                magnitude=1.2,
            )

    def test_empty_description(self):
        with pytest.raises(EthicsModelError):
            BenefitInstance(
                description="",
                kind="R",
                beneficiary="society",
                magnitude=0.5,
            )
