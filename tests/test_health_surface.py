"""The operational health surface: flight recorder, windows, SLOs.

Pins down the acceptance properties of the health subsystem:

* bucket-estimated percentiles land within one bucket bound of the
  exact nearest-rank percentile on deterministic synthetic workloads;
* window merges are order-stable (commutative aggregates);
* incident-bundle *bodies* are byte-identical across batch worker
  counts 1, 2 and 4, and so is the ``obs slo`` verdict over the
  resulting audit chains;
* a data-only SLO spec change flips ``obs slo`` from exit 0 to
  exit 1 without touching a line of code;
* ``WarmPool.health`` reports liveness/readiness and the probe
  round-trip, and the atexit shutdown hook is opt-out.
"""

from __future__ import annotations

import bisect
import json
import math
import multiprocessing
import os
import random

import pytest

from repro.cli.main import main
from repro.errors import (
    BatchError,
    OperationError,
    SafeguardError,
)
from repro.observability import (
    BUCKET_BOUNDS,
    FlightRecorder,
    Histogram,
    Observer,
    RequestSample,
    SloSpec,
    WindowSeries,
    evaluate_slo,
    load_bundle_text,
    load_events,
    observed,
    verify_bundle_text,
    windows_from_events,
)
from repro.ops import BatchExecutor, load_requests

REQUEST_LINES = [
    {"op": "stats"},
    {"op": "no-such-op"},
    {"op": "table1", "args": {"format": "csv"}},
    {"op": "legend"},
    {"op": "no-such-op"},
    {"op": "table1", "args": {"format": "csv"}},
    {"op": "intervals"},
]


@pytest.fixture
def requests_file(tmp_path):
    path = tmp_path / "requests.jsonl"
    path.write_text(
        "".join(json.dumps(line) + "\n" for line in REQUEST_LINES),
        encoding="utf-8",
    )
    return path


def _exact_percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile over the raw values."""
    ranked = sorted(values)
    rank = max(1, math.ceil(q * len(ranked) - 1e-9))
    return ranked[rank - 1]


def _covering_bound(value: float) -> float:
    """The histogram bucket upper bound that covers *value*."""
    position = bisect.bisect_left(BUCKET_BOUNDS, value)
    assert position < len(BUCKET_BOUNDS)
    return BUCKET_BOUNDS[position]


class TestHistogramQuantile:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("q", [0.5, 0.99])
    def test_estimate_within_one_bucket_of_exact(self, seed, q):
        rng = random.Random(seed)
        values = [
            rng.choice([1, 3, 7, 20, 90]) * 10.0 ** rng.randint(-5, 0)
            for _ in range(500)
        ]
        histogram = Histogram()
        for value in values:
            histogram.observe(value)
        exact = _exact_percentile(values, q)
        estimate = histogram.quantile(q)
        # The estimate is the upper bound of the bucket holding the
        # exact nearest-rank observation: never below the truth and
        # within one bucket bound of it.
        assert estimate == _covering_bound(exact)
        assert estimate >= exact

    def test_monotone_workload(self):
        histogram = Histogram()
        values = [(index + 1) / 1000 for index in range(200)]
        for value in values:
            histogram.observe(value)
        for q in (0.5, 0.9, 0.99):
            exact = _exact_percentile(values, q)
            assert histogram.quantile(q) == _covering_bound(exact)

    def test_overflow_reports_exact_maximum(self):
        histogram = Histogram()
        top = BUCKET_BOUNDS[-1]
        for value in (top * 2, top * 3, top * 5):
            histogram.observe(value)
        assert histogram.quantile(0.99) == top * 5

    def test_empty_and_invalid(self):
        histogram = Histogram()
        assert histogram.quantile(0.5) is None
        histogram.observe(1.0)
        with pytest.raises(SafeguardError):
            histogram.quantile(0.0)
        with pytest.raises(SafeguardError):
            histogram.quantile(1.5)

    def test_float_rank_drift(self):
        # 0.7 * 10 == 7.000000000000001 in binary floats; the rank
        # must still be 7, not 8.
        histogram = Histogram()
        for value in [0.0005] * 7 + [500.0] * 3:
            histogram.observe(value)
        assert histogram.quantile(0.7) == _covering_bound(0.0005)


def _sample_stream(seed: int, count: int) -> list[RequestSample]:
    rng = random.Random(seed)
    return [
        RequestSample(
            ok=rng.random() > 0.2,
            latency=rng.choice([0.0005, 0.004, 0.02, 0.3]),
            queue_depth=rng.randint(0, 6),
            busy_workers=rng.randint(1, 4),
            workers=4,
            cache=rng.choice(["hit", "miss", None]),
        )
        for _ in range(count)
    ]


class TestWindowMerge:
    def test_merge_is_order_stable(self):
        left = WindowSeries(window_size=10)
        right = WindowSeries(window_size=10)
        left.observe_many(_sample_stream(1, 37))
        right.observe_many(_sample_stream(2, 23))
        forward = WindowSeries(window_size=10)
        forward.observe_many(_sample_stream(1, 37))
        forward.merge(right)
        backward = WindowSeries(window_size=10)
        backward.observe_many(_sample_stream(2, 23))
        backward.merge(left)
        assert forward.to_dict() == backward.to_dict()
        assert forward.total == 60

    def test_window_merge_commutes(self):
        streams = (_sample_stream(3, 10), _sample_stream(4, 10))
        windows = []
        for stream in streams:
            series = WindowSeries(window_size=10)
            series.observe_many(stream)
            windows.append(series.windows()[0])
        ab = WindowSeries(window_size=10)
        ab.observe_many(streams[0])
        ab.windows()[0].merge(windows[1])
        ba = WindowSeries(window_size=10)
        ba.observe_many(streams[1])
        ba.windows()[0].merge(windows[0])
        assert (
            ab.windows()[0].measurements()
            == ba.windows()[0].measurements()
        )

    def test_mismatched_window_sizes_rejected(self):
        left = WindowSeries(window_size=10)
        right = WindowSeries(window_size=20)
        with pytest.raises(SafeguardError) as excinfo:
            left.merge(right)
        assert "window sizes" in str(excinfo.value)

    def test_unseen_series_report_none(self):
        series = WindowSeries(window_size=5)
        series.observe_many(
            RequestSample(ok=True) for _ in range(5)
        )
        measurements = series.windows()[0].measurements()
        assert measurements["error_rate"] == 0.0
        assert measurements["latency_p99_seconds"] is None
        assert measurements["cache_hit_rate"] is None
        assert measurements["queue_depth_max"] is None
        assert measurements["worker_utilization"] is None


class TestSloSpec:
    def test_valid_spec_round_trips(self):
        spec = SloSpec.from_dict(
            {
                "name": "ops",
                "window": 10,
                "objectives": [
                    {
                        "id": "errors",
                        "metric": "error_rate",
                        "threshold": 0.1,
                    },
                    {
                        "id": "burn",
                        "metric": "error_budget_burn",
                        "threshold": 1.0,
                        "budget": 0.05,
                        "windows": 3,
                    },
                ],
            }
        )
        assert spec.window_size == 10
        assert spec.objectives[1].budget == 0.05

    @pytest.mark.parametrize(
        "body, fragment",
        [
            ({"objectives": []}, "non-empty array"),
            (
                {"objectives": [{"id": "x"}], "bogus": 1},
                "unknown keys",
            ),
            (
                {
                    "objectives": [
                        {
                            "id": "x",
                            "metric": "made_up",
                            "threshold": 1,
                        }
                    ]
                },
                "metric",
            ),
            (
                {
                    "objectives": [
                        {
                            "id": "x",
                            "metric": "error_budget_burn",
                            "threshold": 1,
                        }
                    ]
                },
                "budget",
            ),
            (
                {
                    "objectives": [
                        {
                            "id": "x",
                            "metric": "error_rate",
                            "threshold": 0.1,
                        },
                        {
                            "id": "x",
                            "metric": "error_rate",
                            "threshold": 0.2,
                        },
                    ]
                },
                "duplicate",
            ),
        ],
    )
    def test_invalid_specs_rejected(self, body, fragment):
        with pytest.raises(OperationError) as excinfo:
            SloSpec.from_dict(body)
        assert "invalid SLO spec" in str(excinfo.value)
        assert fragment in str(excinfo.value)


class TestSloEvaluation:
    def _series(self, outcomes: list[bool]) -> WindowSeries:
        series = WindowSeries(window_size=5)
        series.observe_many(
            RequestSample(ok=outcome) for outcome in outcomes
        )
        return series

    def test_breach_on_worst_window(self):
        outcomes = [True] * 5 + [True, False, False, True, True]
        spec = SloSpec.from_dict(
            {
                "window": 5,
                "objectives": [
                    {
                        "id": "errors",
                        "metric": "error_rate",
                        "threshold": 0.2,
                    }
                ],
            }
        )
        report = evaluate_slo(spec, self._series(outcomes))
        (result,) = report.results
        assert result["status"] == "breached"
        assert result["measured"] == 0.4
        assert result["window"] == 1
        assert report.exit_code == 1

    def test_error_budget_burn_rolls_windows(self):
        outcomes = ([True] * 4 + [False]) * 3  # 20% per window
        spec = SloSpec.from_dict(
            {
                "window": 5,
                "objectives": [
                    {
                        "id": "burn",
                        "metric": "error_budget_burn",
                        "threshold": 1.0,
                        "budget": 0.25,
                        "windows": 3,
                    }
                ],
            }
        )
        report = evaluate_slo(spec, self._series(outcomes))
        (result,) = report.results
        # 0.2 error rate against a 0.25 budget burns at 0.8x.
        assert result["measured"] == 0.8
        assert result["status"] == "ok"

    def test_no_data_does_not_gate(self):
        spec = SloSpec.from_dict(
            {
                "window": 5,
                "objectives": [
                    {
                        "id": "p99",
                        "metric": "latency_p99_seconds",
                        "threshold": 0.5,
                    }
                ],
            }
        )
        report = evaluate_slo(spec, self._series([True] * 5))
        (result,) = report.results
        assert result["status"] == "no-data"
        assert report.ok
        assert report.exit_code == 0


class TestFlightRecorder:
    def test_ring_is_bounded_and_honest_about_drops(self):
        recorder = FlightRecorder(capacity=4)
        for index in range(9):
            recorder.record_metric("tick", index)
        assert len(recorder) == 4
        assert recorder.dropped == 5
        assert [f["value"] for f in recorder.frames] == [5, 6, 7, 8]

    def test_run_scope_detail_projected_out(self):
        recorder = FlightRecorder(capacity=8)
        recorder.record_event(
            "ops",
            "batch-started",
            "",
            {"requests": 3, "workers": 4},
        )
        (frame,) = recorder.frames
        assert frame["detail"] == {"requests": 3}

    def test_incident_dump_verifies(self, tmp_path):
        recorder = FlightRecorder(capacity=8, dump_dir=tmp_path)
        recorder.record_event("ops", "request-failed", "x", {})
        recorder.record_span("stage.anonymize", 1)
        recorder.record_metric("ops.batch.failed", 1)
        bundle = recorder.incident(
            "unit-test", reason="because", extra=7
        )
        path = tmp_path / "incident-000-unit-test.jsonl"
        text = path.read_text(encoding="utf-8")
        verification = verify_bundle_text(text)
        assert verification.ok
        assert verification.length == 3
        header, records, envelope = load_bundle_text(text)
        assert header["kind"] == "unit-test"
        assert header["deltas"] == {"ops.batch.failed": 1}
        assert envelope["reason"] == "because"
        assert envelope["context"]["extra"] == 7
        assert bundle.digest() == verify_digest(text)

    def test_tampered_bundle_localized(self, tmp_path):
        recorder = FlightRecorder(capacity=8, dump_dir=tmp_path)
        for index in range(3):
            recorder.record_metric("tick", index)
        recorder.incident("unit-test")
        path = tmp_path / "incident-000-unit-test.jsonl"
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[2] = lines[2].replace('"value":1', '"value":9')
        verification = verify_bundle_text(
            "\n".join(lines) + "\n"
        )
        assert not verification.ok
        assert verification.error_index == 1

    def test_structurally_damaged_bundle_rejected(self):
        with pytest.raises(SafeguardError):
            load_bundle_text("not json\n")
        with pytest.raises(SafeguardError):
            load_bundle_text('{"not": "a bundle"}\n')


def verify_digest(text: str) -> str:
    """Recompute a bundle's body digest from its dumped text."""
    import hashlib

    body_lines = []
    for line in text.splitlines():
        if "envelope" in json.loads(line):
            break
        body_lines.append(line)
    body = "\n".join(body_lines) + "\n"
    return hashlib.blake2b(
        body.encode("utf-8"), digest_size=32
    ).hexdigest()


class TestIncidentByteIdentity:
    """The acceptance gate: bundles invariant across worker counts."""

    def _run(self, requests_file, tmp_path, workers):
        flight = tmp_path / f"flight-{workers}"
        log = tmp_path / f"audit-{workers}.jsonl"
        code = main(
            [
                "batch",
                str(requests_file),
                "--workers",
                str(workers),
                "--audit-log",
                str(log),
                "--flight-dir",
                str(flight),
            ]
        )
        assert code == 1  # two no-such-op requests fail
        (bundle_path,) = sorted(flight.iterdir())
        assert bundle_path.name == (
            "incident-000-batch-degraded.jsonl"
        )
        return bundle_path.read_text(encoding="utf-8"), log

    def test_bundle_bodies_identical_for_1_2_4_workers(
        self, requests_file, tmp_path, capsys
    ):
        bodies = {}
        logs = {}
        for workers in (1, 2, 4):
            text, log = self._run(
                requests_file, tmp_path, workers
            )
            capsys.readouterr()
            verification = verify_bundle_text(text)
            assert verification.ok
            header, records, _ = load_bundle_text(text)
            body_lines = text.splitlines()[: 1 + len(records)]
            bodies[workers] = "\n".join(body_lines)
            logs[workers] = log
            assert header["plan"]["requests"] == len(REQUEST_LINES)
        assert bodies[1] == bodies[2] == bodies[4]
        # The chain-derived window series is invariant too.
        series = [
            windows_from_events(load_events(logs[w]), 3).to_dict()
            for w in (1, 2, 4)
        ]
        assert series[0] == series[1] == series[2]

    def test_slo_verdict_bytes_identical_across_workers(
        self, requests_file, tmp_path, capsys
    ):
        spec = tmp_path / "slo.json"
        spec.write_text(
            json.dumps(
                {
                    "name": "batch",
                    "window": 4,
                    "objectives": [
                        {
                            "id": "errors",
                            "metric": "error_rate",
                            "threshold": 0.6,
                        }
                    ],
                }
            ),
            encoding="utf-8",
        )
        outputs = set()
        codes = set()
        for workers in (1, 2, 4):
            _, log = self._run(requests_file, tmp_path, workers)
            capsys.readouterr()
            codes.add(main(["obs", "slo", str(spec), str(log)]))
            outputs.add(capsys.readouterr().out)
        assert codes == {0}
        assert len(outputs) == 1

    def test_data_only_spec_change_flips_verdict(
        self, requests_file, tmp_path, capsys
    ):
        _, log = self._run(requests_file, tmp_path, 2)
        capsys.readouterr()
        spec = tmp_path / "slo.json"
        body = {
            "name": "batch",
            "window": 4,
            "objectives": [
                {
                    "id": "errors",
                    "metric": "error_rate",
                    "threshold": 0.6,
                }
            ],
        }
        spec.write_text(json.dumps(body), encoding="utf-8")
        assert main(["obs", "slo", str(spec), str(log)]) == 0
        # Tighten the threshold below the observed error rate: the
        # same chain now fails, with no code change anywhere.
        body["objectives"][0]["threshold"] = 0.1
        spec.write_text(json.dumps(body), encoding="utf-8")
        assert main(["obs", "slo", str(spec), str(log)]) == 1
        out = capsys.readouterr().out
        assert "verdict: fail" in out

    def test_incident_subcommand_verifies_dump(
        self, requests_file, tmp_path, capsys
    ):
        text, _ = self._run(requests_file, tmp_path, 2)
        bundle_path = (
            tmp_path / "flight-2" / "incident-000-batch-degraded.jsonl"
        )
        capsys.readouterr()
        assert (
            main(["obs", "incident", str(bundle_path), "--tail", "3"])
            == 0
        )
        out = capsys.readouterr().out
        assert "incident #0: batch-degraded" in out
        assert "chain intact" in out
        assert "batch-finished" in out


def _crash_worker(chunk, telemetry, use_cache):
    """A worker entry that dies without cleanup (test double)."""
    os._exit(13)


_FORK_ONLY = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="the crash double reaches workers via fork inheritance",
)


@_FORK_ONLY
class TestWorkerLostIncident:
    def test_worker_loss_dumps_one_incident(
        self, requests_file, monkeypatch, tmp_path
    ):
        from repro.ops import pool as pool_module

        monkeypatch.setattr(
            pool_module, "_execute_chunk", _crash_worker
        )
        dump_dir = tmp_path / "flight"
        recorder = FlightRecorder(capacity=32, dump_dir=dump_dir)
        executor = BatchExecutor(workers=2, use_cache=False)
        with observed(Observer(flight=recorder)):
            with pytest.raises(BatchError):
                executor.run(load_requests(requests_file))
        # The pool dumped worker-lost; the executor must not pile a
        # second batch-error bundle onto the same fault.
        assert [b.kind for b in recorder.incidents] == [
            "worker-lost"
        ]
        (path,) = dump_dir.iterdir()
        assert path.name == "incident-000-worker-lost.jsonl"
        text = path.read_text(encoding="utf-8")
        assert verify_bundle_text(text).ok
        _, records, envelope = load_bundle_text(text)
        assert any(
            record["frame"].get("action") == "worker-lost"
            for record in records
        )
        assert "BrokenProcessPool" in envelope["reason"]


class TestWarmPoolHealth:
    def test_health_report_shape(self):
        from repro.ops.pool import WarmPool

        pool = WarmPool(2, use_cache=True)
        try:
            report = pool.health()
            assert report["workers"] == 2
            assert report["live"] is False
            assert report["rebuilds"] == 0
            assert report["context_warm"] is False
            assert report["cache"]["enabled"] is True
            assert report["cache"]["entries"] == 0
            assert "probe" not in report
        finally:
            pool.shutdown()

    def test_probe_round_trip(self):
        from repro.ops.pool import WarmPool

        pool = WarmPool(2, use_cache=False)
        try:
            report = pool.health(probe=True)
            assert report["live"] is True
            assert report["probe"] == {
                "ok": True,
                "round_trips": 2,
            }
            assert report["cache"] == {"enabled": False}
        finally:
            pool.shutdown()

    def test_health_subcommand(self, capsys):
        from repro.ops.pool import shutdown_warm_pools

        try:
            assert main(["obs", "health", "--probe"]) == 0
            out = capsys.readouterr().out
            assert "probe: ok (1 round trip(s))" in out
            assert "live: True" in out
        finally:
            shutdown_warm_pools()


class TestAtexitShutdown:
    def test_toggle_returns_previous_state(self):
        from repro.ops.pool import set_atexit_shutdown

        previous = set_atexit_shutdown(False)
        try:
            assert previous is True
            assert set_atexit_shutdown(False) is False
        finally:
            set_atexit_shutdown(True)

    def test_disabled_hook_leaves_pools_alone(self):
        from repro.ops import pool as pool_module
        from repro.ops.pool import (
            active_pools,
            set_atexit_shutdown,
            shutdown_warm_pools,
            warm_pool,
        )

        try:
            pool = warm_pool(1, False)
            assert pool in active_pools()
            set_atexit_shutdown(False)
            pool_module._atexit_shutdown()
            assert pool in active_pools()
            set_atexit_shutdown(True)
            pool_module._atexit_shutdown()
            assert active_pools() == ()
        finally:
            set_atexit_shutdown(True)
            shutdown_warm_pools()

    def test_hook_registered_lazily(self):
        from repro.ops import pool as pool_module
        from repro.ops.pool import (
            shutdown_warm_pools,
            warm_pool,
        )

        try:
            warm_pool(1, False)
            assert pool_module._ATEXIT["registered"] is True
        finally:
            shutdown_warm_pools()
