"""Golden-output tests for the staticcheck reporters.

The text and JSONL formats are consumed by CI diffs and the baseline
tooling, so their exact shape is a contract: these tests pin it for a
fixed finding set that includes suppressed findings (with
justifications) and findings produced under a multi-rule
``# repro: noqa[R1,R3]`` comment.
"""

from __future__ import annotations

import json

from repro.staticcheck import (
    Finding,
    LintEngine,
    default_registry,
    render_json,
    render_text,
    summarize,
)

#: A fixed, already-sorted finding set covering every field state.
FINDINGS = [
    Finding(
        rule_id="R2",
        path="src/repro/analysis/calc.py",
        line=7,
        message="nondeterministic call time.time()",
    ),
    Finding(
        rule_id="R3",
        path="src/repro/datasets/gen.py",
        line=12,
        message="globally-routable IPv4 literal '203.0.114.9'",
        suppressed=True,
        justification="counterexample in a docstring",
    ),
    Finding(
        rule_id="R9",
        path="src/repro/pipeline/core.py",
        line=41,
        message="a lambda cannot be pickled",
    ),
]

GOLDEN_TEXT = """\
src/repro/analysis/calc.py:7: [R2] nondeterministic call time.time()
src/repro/datasets/gen.py:12: [R3] globally-routable IPv4 literal '203.0.114.9' (suppressed)
src/repro/pipeline/core.py:41: [R9] a lambda cannot be pickled
3 finding(s): 2 failing, 1 suppressed"""

GOLDEN_JSON = """\
{"justification": "", "line": 7, "message": "nondeterministic call time.time()", "path": "src/repro/analysis/calc.py", "rule": "R2", "suppressed": false}
{"justification": "counterexample in a docstring", "line": 12, "message": "globally-routable IPv4 literal '203.0.114.9'", "path": "src/repro/datasets/gen.py", "rule": "R3", "suppressed": true}
{"justification": "", "line": 41, "message": "a lambda cannot be pickled", "path": "src/repro/pipeline/core.py", "rule": "R9", "suppressed": false}"""


class TestGoldenOutput:
    def test_text_reporter(self):
        assert render_text(FINDINGS) == GOLDEN_TEXT

    def test_json_reporter(self):
        assert render_json(FINDINGS) == GOLDEN_JSON

    def test_json_is_one_object_per_line(self):
        for line in render_json(FINDINGS).splitlines():
            payload = json.loads(line)
            assert set(payload) == {
                "rule",
                "path",
                "line",
                "message",
                "suppressed",
                "justification",
            }

    def test_empty_set(self):
        assert render_text([]) == "0 finding(s): 0 failing, 0 suppressed"
        assert render_json([]) == ""

    def test_summarize_counts(self):
        assert summarize(FINDINGS) == (
            "3 finding(s): 2 failing, 1 suppressed"
        )


class TestMultiRuleSuppression:
    SOURCE = (
        "import random\n"
        "addr = '8.8.8.8'\n"
        "draw = random.random()"
        "  # repro: noqa[R2,R3] fixture for both rules\n"
    )

    def findings(self):
        engine = LintEngine(default_registry().select(["R2", "R3"]))
        return engine.lint_source(self.SOURCE, "datasets/x.py")

    def test_noqa_covers_both_rules_on_its_line(self):
        found = self.findings()
        by_rule = {f.rule_id: f for f in found}
        # R3 fires on line 2 (no noqa there) and stays failing; R2
        # fires on the noqa line and is suppressed with the shared
        # justification.
        assert not by_rule["R3"].suppressed
        assert by_rule["R2"].suppressed
        assert (
            by_rule["R2"].justification
            == "fixture for both rules"
        )

    def test_suppression_state_round_trips_to_json(self):
        for line in render_json(self.findings()).splitlines():
            payload = json.loads(line)
            if payload["rule"] == "R2":
                assert payload["suppressed"] is True
                assert (
                    payload["justification"]
                    == "fixture for both rules"
                )
            else:
                assert payload["suppressed"] is False

    def test_text_marks_suppressed_line(self):
        text = render_text(self.findings())
        assert "(suppressed)" in text
        assert "1 suppressed" in text
