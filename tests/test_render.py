"""Tests for the deterministic report surface.

Covers the static HTML report and the booktabs LaTeX renderer:
structure, self-containedness, byte-for-byte determinism (repeat
runs, the result cache, and batch execution at several worker
counts with identical audit-chain content), balanced LaTeX
environments, and golden-file comparisons with a readable diff on
mismatch.
"""

from __future__ import annotations

import dataclasses
import difflib
import json
import re
from pathlib import Path

import pytest

from repro.cli import main
from repro.ops import ResultCache, RunContext, default_registry, execute
from repro.render import build_report_model, render_html_report
from repro.render.html import _COUNT_LABELS, _SCALAR_LABELS
from repro.tables import build_table1_layout, render_latex_booktabs

GOLDEN_DIR = Path(__file__).parent / "golden"


def _render_op(name: str, values: dict | None = None) -> str:
    context = RunContext(cache=ResultCache())
    registry = default_registry()
    operation = registry.get(name)
    return execute(operation, values or {}, context=context).text


def _assert_matches_golden(rendered: str, filename: str) -> None:
    """Compare against the checked-in bytes; diff on mismatch."""
    golden = (GOLDEN_DIR / filename).read_text(encoding="utf-8")
    if rendered != golden:
        diff = "\n".join(
            difflib.unified_diff(
                golden.splitlines(),
                rendered.splitlines(),
                fromfile=f"golden/{filename}",
                tofile="rendered",
                lineterm="",
            )
        )
        pytest.fail(
            f"rendered output drifted from golden/{filename}; if the "
            f"change is intentional, regenerate the golden file:\n"
            f"{diff}"
        )


class TestReportModel:
    def test_categories_cover_every_entry(self, corpus):
        model = build_report_model(corpus, digest="d" * 32)
        assert sum(c.entries for c in model.categories) == len(corpus)
        assert [c.category for c in model.categories] == [
            "Malware & exploitation",
            "Password dumps",
            "Leaked databases",
            "Classified materials",
            "Financial data",
        ]

    def test_digest_and_checks(self, corpus):
        model = build_report_model(corpus, digest="abc123")
        assert model.corpus_digest == "abc123"
        assert all(check.ok for check in model.checks)
        assert model.statistics.ethics_sections == 12

    def test_breakdown_aggregates(self, corpus):
        model = build_report_model(corpus)
        passwords = next(
            c
            for c in model.categories
            if c.category == "Password dumps"
        )
        assert passwords.entries == len(
            corpus.by_category("Password dumps")
        )
        assert passwords.papers <= passwords.entries
        assert set(passwords.entry_ids) <= set(corpus.entry_ids)
        assert all(
            count > 0 for count in passwords.safeguard_counts.values()
        )

    def test_every_statistic_is_labelled(self, corpus):
        """New §5 statistics cannot silently drop out of the report."""
        model = build_report_model(corpus)
        field_names = {
            field.name
            for field in dataclasses.fields(model.statistics)
        }
        assert field_names == set(_SCALAR_LABELS) | set(_COUNT_LABELS)


class TestHtmlReport:
    def test_self_contained_document(self, corpus):
        model = build_report_model(corpus, digest="f" * 32)
        html = render_html_report(model)
        assert html.startswith("<!DOCTYPE html>")
        assert html.endswith("</html>\n")
        # Self-contained: no scripts, no external fetches.
        assert "<script" not in html
        assert "http://" not in html and "https://" not in html
        assert 'src="' not in html and 'href="' not in html

    def test_embeds_table1_stats_and_digest(self, corpus):
        digest = "0123456789abcdef0123456789abcdef"
        html = render_html_report(
            build_report_model(corpus, digest=digest)
        )
        assert digest in html
        # Table 1 rows and the legend arrive via the shared layout.
        assert "AT&amp;T database" in html
        assert "Legend:" in html
        # Every scalar statistic label and count table is present.
        for label in _SCALAR_LABELS.values():
            assert label.replace("§", "§") in html
        for title in _COUNT_LABELS.values():
            assert title in html
        assert "Per-category breakdown" in html

    def test_render_twice_is_byte_identical(self, corpus):
        model = build_report_model(corpus, digest="e" * 32)
        assert render_html_report(model) == render_html_report(model)

    def test_op_matches_golden(self):
        _assert_matches_golden(
            _render_op("report.render"), "table1-report.html"
        )

    def test_op_repeat_runs_identical(self):
        assert _render_op("report.render") == _render_op(
            "report.render"
        )


class TestLatexBooktabs:
    def test_matches_golden(self):
        _assert_matches_golden(
            _render_op("table.latex"), "table1-booktabs.tex"
        )

    def test_balanced_environments(self, corpus):
        tex = render_latex_booktabs(build_table1_layout(corpus))
        begins = re.findall(r"\\begin\{(\w+\*?)\}", tex)
        ends = re.findall(r"\\end\{(\w+\*?)\}", tex)
        assert begins, "no environments found"
        assert sorted(begins) == sorted(ends)
        # Properly nested, not merely balanced.
        stack: list[str] = []
        for kind, name in re.findall(
            r"\\(begin|end)\{(\w+\*?)\}", tex
        ):
            if kind == "begin":
                stack.append(name)
            else:
                assert stack and stack.pop() == name
        assert not stack

    def test_booktabs_rules_and_spanners(self, corpus):
        tex = render_latex_booktabs(build_table1_layout(corpus))
        assert tex.count(r"\toprule") == 1
        assert tex.count(r"\midrule") == 1
        assert tex.count(r"\bottomrule") == 1
        assert r"\hline" not in tex
        assert r"\cmidrule(lr)" in tex
        assert r"\multicolumn" in tex
        # One \addlinespace between each pair of adjacent categories.
        layout = build_table1_layout(corpus)
        assert tex.count(r"\addlinespace") == (
            len(layout.category_spans()) - 1
        )

    def test_braces_balanced(self, corpus):
        tex = render_latex_booktabs(build_table1_layout(corpus))
        assert tex.count("{") == tex.count("}")

    def test_plain_style_has_no_booktabs(self):
        tex = _render_op("table.latex", {"style": "plain"})
        assert r"\toprule" not in tex
        assert r"\hline" in tex

    def test_table1_format_dispatch_matches(self, corpus):
        assert _render_op(
            "table1", {"format": "latex-booktabs"}
        ) == _render_op("table.latex", {"style": "booktabs"})


def _events(path):
    from repro.observability.log import load_events

    return load_events(path)


def _comparable(events):
    """Audit-event content with the worker count masked out."""
    rows = []
    for event in events:
        detail = {
            k: v for k, v in event.detail.items() if k != "workers"
        }
        rows.append(
            (event.category, event.action, event.subject, detail)
        )
    return rows


class TestBatchDeterminism:
    """The report surface through the batch executor."""

    @pytest.fixture
    def requests_file(self, tmp_path):
        path = tmp_path / "render.jsonl"
        path.write_text(
            '{"op": "report.render"}\n'
            '{"op": "table.latex"}\n'
            '{"op": "report.render"}\n'
            '{"op": "agreement.fuzzy"}\n'
            '{"op": "codebook.merge"}\n',
            encoding="utf-8",
        )
        return path

    def test_byte_identical_across_worker_counts(
        self, requests_file, tmp_path, capsys
    ):
        transcripts: dict[int, str] = {}
        chains: dict[int, list] = {}
        for workers in (1, 2, 4):
            log = tmp_path / f"audit-{workers}.jsonl"
            assert (
                main(
                    [
                        "batch",
                        str(requests_file),
                        "--workers",
                        str(workers),
                        "--audit-log",
                        str(log),
                    ]
                )
                == 0
            )
            transcripts[workers] = capsys.readouterr().out
            chains[workers] = _comparable(_events(log))
        assert transcripts[1] == transcripts[2] == transcripts[4]
        assert chains[1] == chains[2] == chains[4]

    def test_batch_output_matches_direct_render(
        self, requests_file, capsys
    ):
        main(["batch", str(requests_file)])
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
        ]
        assert lines[0]["output"] == _render_op("report.render")
        assert lines[0]["output"] == lines[2]["output"]
        assert lines[1]["output"] == _render_op("table.latex")

    def test_result_cache_serves_report(self):
        context = RunContext(cache=ResultCache())
        operation = default_registry().get("report.render")
        first = execute(operation, {}, context=context)
        second = execute(operation, {}, context=context)
        assert first.text == second.text
        assert context.cache.stats()["hits"] >= 1
