"""Unit and property tests for the anonymization primitives."""

from __future__ import annotations

import ipaddress

import pytest
from hypothesis import given, settings, strategies as st

from repro.anonymization import (
    IPAnonymizer,
    Pseudonymizer,
    TextScrubber,
    TokenMapper,
    dimensionality_profile,
    generalize,
    kanonymity,
    luhn_valid,
    uniqueness_rate,
)
from repro.errors import AnonymizationError

KEY = b"0123456789abcdef"

ip_strategy = st.integers(0, 2**32 - 1).map(
    lambda n: str(ipaddress.IPv4Address(n))
)


class TestIPAnonymizer:
    def test_key_length_enforced(self):
        with pytest.raises(AnonymizationError):
            IPAnonymizer(b"short")

    def test_invalid_address(self):
        with pytest.raises(AnonymizationError):
            IPAnonymizer(KEY).anonymize("999.1.2.3")

    def test_deterministic_per_key(self):
        first = IPAnonymizer(KEY)
        second = IPAnonymizer(KEY)
        assert first.anonymize("198.51.100.7") == second.anonymize(
            "198.51.100.7"
        )

    def test_different_keys_differ(self):
        a = IPAnonymizer(KEY).anonymize("198.51.100.7")
        b = IPAnonymizer(b"another-16-byte-k").anonymize(
            "198.51.100.7"
        )
        assert a != b

    def test_ipv6_supported(self):
        result = IPAnonymizer(KEY).anonymize("2001:db8::1")
        assert ipaddress.ip_address(result).version == 6

    def test_version_mismatch_comparison(self):
        with pytest.raises(AnonymizationError):
            IPAnonymizer.shared_prefix_length("1.2.3.4", "2001:db8::1")

    @settings(max_examples=60, deadline=None)
    @given(a=ip_strategy, b=ip_strategy)
    def test_prefix_preservation_property(self, a, b):
        # The defining property: shared prefix length is preserved
        # exactly under the mapping.
        anonymizer = IPAnonymizer(KEY)
        original = IPAnonymizer.shared_prefix_length(a, b)
        mapped = IPAnonymizer.shared_prefix_length(
            anonymizer.anonymize(a), anonymizer.anonymize(b)
        )
        assert mapped == original

    @settings(max_examples=60, deadline=None)
    @given(a=ip_strategy, b=ip_strategy)
    def test_injective_property(self, a, b):
        anonymizer = IPAnonymizer(KEY)
        if a != b:
            assert anonymizer.anonymize(a) != anonymizer.anonymize(b)

    def test_many(self):
        anonymizer = IPAnonymizer(KEY)
        out = anonymizer.anonymize_many(["192.0.2.1", "192.0.2.2"])
        assert len(out) == 2


class TestPseudonymizer:
    def test_stable(self):
        p = Pseudonymizer(KEY)
        assert p.pseudonym("alice") == p.pseudonym("alice")

    def test_domain_separation(self):
        p = Pseudonymizer(KEY)
        assert p.pseudonym("alice", "email") != p.pseudonym(
            "alice", "user"
        )

    def test_email_keep_domain(self):
        p = Pseudonymizer(KEY)
        out = p.email("alice@example.com", keep_domain=True)
        assert out.endswith("@example.com")
        assert "alice" not in out

    def test_email_hidden_domain(self):
        out = Pseudonymizer(KEY).email("alice@example.com")
        assert out.endswith("@example.invalid")

    def test_not_an_email(self):
        with pytest.raises(AnonymizationError):
            Pseudonymizer(KEY).email("not-an-email")

    def test_short_key_rejected(self):
        with pytest.raises(AnonymizationError):
            Pseudonymizer(b"short")

    def test_digest_bytes_bounds(self):
        with pytest.raises(AnonymizationError):
            Pseudonymizer(KEY, digest_bytes=2)

    def test_empty_identifier(self):
        with pytest.raises(AnonymizationError):
            Pseudonymizer(KEY).pseudonym("")


class TestTokenMapper:
    def test_consistent_and_sequential(self):
        mapper = TokenMapper()
        assert mapper.token("h4xx0r") == "user-1"
        assert mapper.token("other") == "user-2"
        assert mapper.token("h4xx0r") == "user-1"
        assert len(mapper) == 2

    def test_escrow_roundtrip(self):
        mapper = TokenMapper(prefix="vendor")
        mapper.token("darkseller")
        escrow = mapper.export_escrow()
        assert escrow == {"vendor-1": "darkseller"}

    def test_empty_prefix(self):
        with pytest.raises(AnonymizationError):
            TokenMapper(prefix="")


class TestScrubber:
    def test_scrubs_all_kinds(self):
        text = (
            "user bob@example.com from 203.0.113.9 paid with "
            "4111-1111-1111-1111, call +44 20 7946 0958"
        )
        result = TextScrubber().scrub(text)
        assert result.count("email") == 1
        assert result.count("ipv4") == 1
        assert result.count("card") == 1
        assert result.count("phone") == 1
        assert "bob@example.com" not in result.text

    def test_luhn_rejects_random_digit_runs(self):
        assert luhn_valid("4111111111111111")
        assert not luhn_valid("4111111111111112")
        result = TextScrubber(kinds=("card",)).scrub(
            "order id 1234 5678 9012 3456 here"
        )
        assert result.count("card") == 0

    def test_clean_text_untouched(self):
        text = "nothing sensitive here"
        result = TextScrubber().scrub(text)
        assert result.clean
        assert result.text == text

    def test_custom_replacer(self):
        scrubber = TextScrubber(
            replacer=lambda kind, original: f"<{kind}>"
        )
        result = scrubber.scrub("mail me: a@b.example")
        assert "<email>" in result.text

    def test_match_positions_recorded(self):
        result = TextScrubber().scrub("ip 198.51.100.1 end")
        match = result.matches[0]
        assert match.original == "198.51.100.1"
        assert match.start == 3

    def test_ipv6_found(self):
        result = TextScrubber().scrub("src 2001:db8::dead:beef port")
        assert result.count("ipv6") == 1


class TestKAnonymity:
    RECORDS = [
        {"age": 34, "zip": "CB1", "site": "a"},
        {"age": 34, "zip": "CB1", "site": "b"},
        {"age": 34, "zip": "CB2", "site": "a"},
        {"age": 55, "zip": "CB2", "site": "a"},
    ]

    def test_kanonymity(self):
        assert kanonymity(self.RECORDS, ["age"]) == 1
        assert kanonymity(self.RECORDS, ["zip"]) == 2

    def test_uniqueness_rate(self):
        rate = uniqueness_rate(self.RECORDS, ["age", "zip"], k=2)
        assert rate == pytest.approx(0.5)

    def test_missing_column(self):
        with pytest.raises(AnonymizationError):
            kanonymity(self.RECORDS, ["missing"])

    def test_empty_inputs(self):
        with pytest.raises(AnonymizationError):
            kanonymity([], ["age"])
        with pytest.raises(AnonymizationError):
            kanonymity(self.RECORDS, [])

    def test_dimensionality_profile_monotone(self):
        profile = dimensionality_profile(
            self.RECORDS, ["zip", "age", "site"]
        )
        ks = [k for _, k, _ in profile]
        uniq = [u for _, _, u in profile]
        assert ks == sorted(ks, reverse=True)
        assert uniq == sorted(uniq)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 3),
                st.integers(0, 3),
                st.integers(0, 3),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_curse_of_dimensionality_property(self, rows):
        # Adding quasi-identifiers never increases k and never
        # decreases uniqueness (Aggarwal's observation).
        records = [
            {"a": a, "b": b, "c": c} for a, b, c in rows
        ]
        profile = dimensionality_profile(records, ["a", "b", "c"])
        ks = [k for _, k, _ in profile]
        uniq = [u for _, _, u in profile]
        assert all(x >= y for x, y in zip(ks, ks[1:]))
        assert all(x <= y for x, y in zip(uniq, uniq[1:]))

    def test_generalize_improves_k(self):
        result = generalize(
            self.RECORDS,
            ["age", "zip"],
            "age",
            coarsen=lambda age: age // 10 * 10,
        )
        assert result.k_after >= result.k_before
        assert 0.0 <= result.information_loss <= 1.0

    def test_generalize_unknown_column(self):
        with pytest.raises(AnonymizationError):
            generalize(
                self.RECORDS, ["age"], "zip", coarsen=lambda v: v
            )
