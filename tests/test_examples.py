"""Every example script must run cleanly end to end.

Examples are part of the public deliverable; this gate runs each one
in a subprocess and checks it exits 0 and produces its headline
output — so documentation drift breaks the build, not the user.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = (
    pathlib.Path(__file__).resolve().parent.parent / "examples"
)

#: script name → a string its output must contain.
EXPECTED = {
    "quickstart.py": "All 16 claims reproduce exactly.",
    "assess_new_research.py": "Generated ethics section",
    "safeguard_pipeline.py": "sharing agreement active: True",
    "password_study.py": "Cross-site password reuse",
    "forum_investigation.py": "Key actors",
    "reb_policy_study.py": "risk-based trigger reviews",
    "irr_study.py": "consensus built",
    "breach_notification.py": "same query refused",
    "extend_corpus.py": "Table 1 reproduction unaffected: True",
}


def test_every_example_is_covered():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED)


@pytest.mark.parametrize("script", sorted(EXPECTED))
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert EXPECTED[script] in result.stdout
