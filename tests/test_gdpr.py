"""Unit tests for the GDPR research-provision checker."""

from __future__ import annotations

import dataclasses

import pytest

from repro.legal import GDPR_MAX_FINE, GDPRChecker, GDPRPosition


def compliant_position() -> GDPRPosition:
    return GDPRPosition(
        processes_personal_data=True,
        scientific_research=True,
        public_interest=True,
        encrypted_at_rest=True,
        pseudonymised=True,
        data_minimised=True,
        personal_data_in_publications=False,
        processing_info_public=True,
        responsible_party_named=True,
    )


class TestChecker:
    def test_not_applicable_without_personal_data(self):
        result = GDPRChecker().check(
            GDPRPosition(processes_personal_data=False)
        )
        assert not result.applicable
        assert result.compliant

    def test_fully_compliant(self):
        result = GDPRChecker().check(compliant_position())
        assert result.applicable
        assert result.compliant
        assert not result.missing

    @pytest.mark.parametrize(
        "field,value",
        [
            ("public_interest", False),
            ("encrypted_at_rest", False),
            ("pseudonymised", False),
            ("data_minimised", False),
            ("personal_data_in_publications", True),
            ("processing_info_public", False),
            ("responsible_party_named", False),
            ("scientific_research", False),
        ],
    )
    def test_each_requirement_enforced(self, field, value):
        position = dataclasses.replace(
            compliant_position(), **{field: value}
        )
        result = GDPRChecker().check(position)
        assert not result.compliant
        assert result.missing

    def test_code_of_conduct_advisory_only(self):
        position = dataclasses.replace(
            compliant_position(), follows_code_of_conduct=False
        )
        result = GDPRChecker().check(position)
        assert result.compliant
        assert result.advisory

    def test_max_fine_small_org(self):
        # EUR 20M floor dominates for small turnover.
        fine = GDPRChecker().max_fine(1_000_000)
        assert fine == GDPR_MAX_FINE["eur"]

    def test_max_fine_large_org(self):
        # 4% of turnover dominates for large organisations.
        fine = GDPRChecker().max_fine(10_000_000_000)
        assert fine == pytest.approx(400_000_000)

    def test_describe(self):
        result = GDPRChecker().check(compliant_position())
        assert "compliant" in result.describe()
        na = GDPRChecker().check(
            GDPRPosition(processes_personal_data=False)
        )
        assert "not applicable" in na.describe()
