"""Tests for the project graph, R8/R9 and the incremental lint cache.

Fixture trees mirror the package layout on disk (``ops/catalog.py``,
``ops/spec.py``) so :meth:`LintEngine.lint_package` exercises exactly
the relative-import resolution and rule scoping the real source
sees.
"""

from __future__ import annotations

import json

import pytest

from repro.staticcheck import (
    LintCache,
    LintEngine,
    ModuleInfo,
    Project,
    baseline_drift,
    default_registry,
    render_json,
)
from repro.staticcheck.project import module_dotted


def build_tree(tmp_path, files: dict) -> None:
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")


def lint_tree(tmp_path, select=("R8", "R9"), **kwargs):
    registry = default_registry()
    if select:
        registry = registry.select(select)
    return LintEngine(registry).lint_package(tmp_path, **kwargs)


#: Minimal ops scaffolding every purity fixture shares.
_SPEC = {
    "ops/__init__.py": "from .spec import Operation\n",
    "ops/spec.py": (
        "class Operation:\n"
        "    def __init__(self, name, help, handler, pure=False):\n"
        "        self.name = name\n"
    ),
}


class TestProjectGraph:
    def test_module_dotted(self):
        assert module_dotted("ops/catalog.py") == "repro.ops.catalog"
        assert module_dotted("ops/__init__.py") == "repro.ops"
        assert module_dotted("__init__.py") == "repro"

    def project(self):
        modules = [
            ModuleInfo(
                "from .renderers import render\n",
                "tables/__init__.py",
            ),
            ModuleInfo(
                "def render(layout):\n    return str(layout)\n",
                "tables/renderers.py",
            ),
            ModuleInfo(
                "from ..tables import render\n"
                "import pathlib\n"
                "class Report:\n"
                "    def build(self):\n"
                "        return self.fetch()\n"
                "    def fetch(self):\n"
                "        return render(1)\n"
                "def make():\n"
                "    r = Report()\n"
                "    text = r.build()\n"
                "    return pathlib.Path(text).read_text()\n",
                "reporting/report.py",
            ),
        ]
        return Project(modules)

    def test_symbol_table_and_reexport_resolution(self):
        project = self.project()
        assert "repro.tables.renderers.render" in project.functions
        # The __init__ re-export chases to the defining function.
        symbol = project.resolve("repro.tables.render")
        assert symbol is not None
        assert symbol.qualname == "repro.tables.renderers.render"
        assert (
            project.canonical("repro.tables.render")
            == "repro.tables.renderers.render"
        )

    def test_call_graph_self_and_local_inference(self):
        project = self.project()
        build = project.functions["repro.reporting.report.Report.build"]
        assert ("repro.reporting.report.Report.fetch", 5) in (
            project.callees(build)
        )
        make = project.functions["repro.reporting.report.make"]
        targets = {dotted for dotted, _ in project.callees(make)}
        # r = Report(); r.build() resolves through local inference,
        # and pathlib.Path(...).read_text() through the call chain.
        assert "repro.reporting.report.Report.build" in targets
        assert "pathlib.Path.read_text" in targets

    def test_import_graph(self):
        project = self.project()
        assert project.imports("reporting/report.py") == {
            "tables/__init__.py"
        }
        assert (
            "reporting/report.py" in project.import_graph()
        )

    def test_digest_tracks_content(self):
        base = [ModuleInfo("x = 1\n", "a.py")]
        changed = [ModuleInfo("x = 2\n", "a.py")]
        assert Project(base).digest == Project(base).digest
        assert Project(base).digest != Project(changed).digest


class TestR8Purity:
    def test_transitive_effect_flagged(self, tmp_path):
        build_tree(
            tmp_path,
            {
                **_SPEC,
                "ops/catalog.py": (
                    "from .spec import Operation\n"
                    "from .helpers import compute\n"
                    "def _run_stats(request):\n"
                    "    return compute(request)\n"
                    "REGISTRY = (Operation(name='stats', help='x',"
                    " handler=_run_stats, pure=True),)\n"
                ),
                "ops/helpers.py": (
                    "import time\n"
                    "def compute(request):\n"
                    "    return time.time()\n"
                ),
            },
        )
        findings = lint_tree(tmp_path)
        assert [f.rule_id for f in findings] == ["R8"]
        assert "clock read" in findings[0].message
        assert "'stats'" in findings[0].message
        assert findings[0].path.endswith("ops/helpers.py")

    @pytest.mark.parametrize(
        ("body", "effect"),
        [
            ("import random\ndef compute(r):\n"
             "    return random.random()\n", "global-RNG draw"),
            ("import uuid\ndef compute(r):\n"
             "    return uuid.uuid4()\n", "randomness"),
            ("import os\ndef compute(r):\n"
             "    return os.environ['HOME']\n", "environment access"),
            ("def compute(r):\n"
             "    return open(r).read()\n", "filesystem access"),
            ("import urllib.request\ndef compute(r):\n"
             "    return urllib.request.urlopen(r)\n",
             "network access"),
            ("_SEEN = {}\ndef compute(r):\n"
             "    _SEEN[r] = True\n    return r\n",
             "module-state mutation"),
        ],
    )
    def test_effect_classes(self, tmp_path, body, effect):
        build_tree(
            tmp_path,
            {
                **_SPEC,
                "ops/catalog.py": (
                    "from .spec import Operation\n"
                    "from .helpers import compute\n"
                    "REGISTRY = (Operation(name='op', help='x',"
                    " handler=compute, pure=True),)\n"
                ),
                "ops/helpers.py": body,
            },
        )
        findings = lint_tree(tmp_path)
        assert [f.rule_id for f in findings] == ["R8"]
        assert effect in findings[0].message

    def test_memo_idiom_allowed(self, tmp_path):
        build_tree(
            tmp_path,
            {
                **_SPEC,
                "ops/catalog.py": (
                    "from .spec import Operation\n"
                    "_REGISTRY = None\n"
                    "def registry():\n"
                    "    global _REGISTRY\n"
                    "    if _REGISTRY is None:\n"
                    "        _REGISTRY = {'a': 1}\n"
                    "    return _REGISTRY\n"
                    "OPS = (Operation(name='op', help='x',"
                    " handler=registry, pure=True),)\n"
                ),
            },
        )
        assert lint_tree(tmp_path) == []

    def test_pure_false_not_walked(self, tmp_path):
        build_tree(
            tmp_path,
            {
                **_SPEC,
                "ops/catalog.py": (
                    "import time\n"
                    "from .spec import Operation\n"
                    "def _run(request):\n"
                    "    return time.time()\n"
                    "OPS = (Operation(name='op', help='x',"
                    " handler=_run),)\n"
                ),
            },
        )
        assert lint_tree(tmp_path) == []

    def test_unresolvable_handler_flagged(self, tmp_path):
        build_tree(
            tmp_path,
            {
                **_SPEC,
                "ops/catalog.py": (
                    "from .spec import Operation\n"
                    "def make():\n"
                    "    def inner(request):\n"
                    "        return request\n"
                    "    return inner\n"
                    "OPS = (Operation(name='op', help='x',"
                    " handler=make(), pure=True),)\n"
                ),
            },
        )
        findings = lint_tree(tmp_path)
        assert [f.rule_id for f in findings] == ["R8"]
        assert "cannot be verified" in findings[0].message

    def test_reexported_operation_name_matches(self, tmp_path):
        # Declaring through the package re-export (from .ops import
        # Operation) must resolve to the same canonical constructor.
        build_tree(
            tmp_path,
            {
                **_SPEC,
                "catalog.py": (
                    "import time\n"
                    "from .ops import Operation\n"
                    "def _run(request):\n"
                    "    return time.time()\n"
                    "OPS = (Operation(name='op', help='x',"
                    " handler=_run, pure=True),)\n"
                ),
            },
        )
        findings = lint_tree(tmp_path)
        assert [f.rule_id for f in findings] == ["R8"]


class TestR9WorkerSafety:
    def submit_tree(self, call: str) -> dict:
        return {
            "pipeline/core.py": (
                "import functools\n"
                "from concurrent.futures import ProcessPoolExecutor\n"
                "def _worker(item):\n"
                "    return item\n"
                "def _tainted(item, acc=[]):\n"
                "    return item\n"
                "class Runner:\n"
                "    def go(self, items):\n"
                "        with ProcessPoolExecutor() as pool:\n"
                f"            out = {call}\n"
                "        return out\n"
            ),
        }

    @pytest.mark.parametrize(
        ("call", "fragment"),
        [
            ("pool.submit(lambda: 1)", "lambda"),
            ("pool.submit(self.go, items)", "bound method"),
            ("pool.map(_tainted, items)", "mutable default"),
            ("pool.submit(_worker, lambda x: x)",
             "pool-call argument"),
            ("pool.submit(make_worker())", "result of a call"),
        ],
    )
    def test_unsafe_submissions_flagged(
        self, tmp_path, call, fragment
    ):
        build_tree(tmp_path, self.submit_tree(call))
        findings = lint_tree(tmp_path)
        assert {f.rule_id for f in findings} == {"R9"}
        assert any(fragment in f.message for f in findings)

    def test_nested_function_flagged(self, tmp_path):
        build_tree(
            tmp_path,
            {
                "pipeline/core.py": (
                    "from concurrent.futures import "
                    "ProcessPoolExecutor\n"
                    "def run(items):\n"
                    "    def local(x):\n"
                    "        return x\n"
                    "    with ProcessPoolExecutor() as pool:\n"
                    "        return pool.submit(local, items)\n"
                ),
            },
        )
        findings = lint_tree(tmp_path)
        assert [f.rule_id for f in findings] == ["R9"]
        assert "module-level function" in findings[0].message

    @pytest.mark.parametrize(
        "call",
        [
            "pool.submit(_worker, items)",
            "pool.map(_worker, items)",
            "pool.submit(functools.partial(_worker, 1))",
            "pool.submit(str, items)",
        ],
    )
    def test_safe_submissions_pass(self, tmp_path, call):
        build_tree(tmp_path, self.submit_tree(call))
        assert lint_tree(tmp_path) == []

    def test_thread_pools_exempt(self, tmp_path):
        build_tree(
            tmp_path,
            {
                "pipeline/core.py": (
                    "from concurrent.futures import "
                    "ThreadPoolExecutor\n"
                    "def run(items):\n"
                    "    with ThreadPoolExecutor() as pool:\n"
                    "        return pool.submit(lambda: 1)\n"
                ),
            },
        )
        assert lint_tree(tmp_path) == []


class TestIncrementalCache:
    TREE = {
        "datasets/gen.py": (
            "import random\n"
            "def draw():\n"
            "    return random.random()\n"
        ),
        "analysis/calc.py": "def calc(x):\n    return x + 1\n",
    }

    def test_warm_run_is_byte_identical(self, tmp_path):
        build_tree(tmp_path, self.TREE)
        cache = tmp_path / "cache.json"
        cold = lint_tree(
            tmp_path, select=(), cache_path=cache
        )
        assert cache.exists()
        warm = lint_tree(
            tmp_path, select=(), cache_path=cache
        )
        assert render_json(cold) == render_json(warm)
        assert any(f.rule_id == "R2" for f in cold)

    def test_changed_only_reports_only_moved_files(self, tmp_path):
        build_tree(tmp_path, self.TREE)
        cache = tmp_path / "cache.json"
        lint_tree(tmp_path, select=(), cache_path=cache)
        # No change: nothing to report.
        assert (
            lint_tree(
                tmp_path,
                select=(),
                cache_path=cache,
                changed_only=True,
            )
            == []
        )
        # Touch one file: only its findings come back.
        (tmp_path / "analysis" / "calc.py").write_text(
            "import time\ndef calc(x):\n    return time.time()\n"
        )
        changed = lint_tree(
            tmp_path,
            select=(),
            cache_path=cache,
            changed_only=True,
        )
        assert changed
        assert {f.path.split("/")[-1] for f in changed} == {
            "calc.py"
        }

    def test_rule_version_invalidates(self, tmp_path):
        build_tree(tmp_path, self.TREE)
        cache = tmp_path / "cache.json"
        lint_tree(tmp_path, select=(), cache_path=cache)
        payload = json.loads(cache.read_text())
        engine = LintEngine(default_registry())
        assert payload["ruleset"] == engine.ruleset_signature()
        # A different rule set must refuse the cached findings.
        assert (
            LintCache.load(
                cache, "0" * 32
            ).module_findings(
                "datasets/gen.py",
                payload["modules"]["datasets/gen.py"]["digest"],
            )
            is None
        )

    def test_corrupt_cache_is_cold_start(self, tmp_path):
        build_tree(tmp_path, self.TREE)
        cache = tmp_path / "cache.json"
        cache.write_text("{not json")
        findings = lint_tree(
            tmp_path, select=(), cache_path=cache
        )
        assert any(f.rule_id == "R2" for f in findings)

    def test_deleted_files_are_pruned(self, tmp_path):
        build_tree(tmp_path, self.TREE)
        cache = tmp_path / "cache.json"
        lint_tree(tmp_path, select=(), cache_path=cache)
        (tmp_path / "datasets" / "gen.py").unlink()
        findings = lint_tree(
            tmp_path, select=(), cache_path=cache
        )
        assert not any(f.rule_id == "R2" for f in findings)
        payload = json.loads(cache.read_text())
        assert "datasets/gen.py" not in payload["modules"]


class TestParallelLint:
    def test_parallel_matches_serial(self, tmp_path):
        files = {
            f"datasets/mod_{i}.py": (
                "import random\n"
                f"def draw_{i}():\n"
                "    return random.random()\n"
            )
            for i in range(6)
        }
        build_tree(tmp_path, files)
        serial = lint_tree(tmp_path, select=())
        parallel = lint_tree(tmp_path, select=(), workers=2)
        assert render_json(serial) == render_json(parallel)
        assert len(serial) == 6


class TestBaselineStaleSwitch:
    def test_stale_direction_can_be_disabled(self):
        from repro.staticcheck import BaselineEntry

        baseline = [
            BaselineEntry("R2", "src/repro/datasets/x.py", "why")
        ]
        assert baseline_drift([], baseline)  # stale entry reported
        assert baseline_drift([], baseline, stale=False) == []
