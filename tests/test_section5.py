"""Reproduction tests: every §5 claim of the paper must hold exactly."""

from __future__ import annotations

import pytest

from repro.analysis import (
    PAPER_CLAIMS,
    section5_statistics,
    verify_section5,
)


@pytest.fixture(scope="module")
def corpus():
    from repro import table1_corpus

    return table1_corpus()


@pytest.fixture(scope="module")
def stats(corpus):
    return section5_statistics(corpus)


class TestHeadlineClaims:
    def test_all_claims_verify(self, corpus):
        checks = verify_section5(corpus)
        failing = [c.describe() for c in checks if not c.ok]
        assert not failing, failing

    def test_thirty_entries_28_papers(self, stats):
        assert stats.total_entries == 30
        assert stats.total_papers == 28

    def test_reb_counts(self, stats):
        # §5.5: "Two works stated that they were exempt from REB
        # approval, two received REB approval and 24 did not mention
        # REBs."
        assert stats.reb_exempt == 2
        assert stats.reb_approved == 2
        assert stats.reb_not_mentioned == 24
        assert stats.reb_not_applicable == 2

    def test_ethics_sections_12_of_28(self, stats):
        assert stats.ethics_sections == 12

    def test_controlled_sharing_only_four(self, stats):
        assert stats.controlled_sharing == 4

    def test_privacy_most_frequent_safeguard(self, stats):
        assert stats.most_common_safeguard == "P"
        p_count = stats.safeguard_counts["P"]
        assert all(
            p_count > count
            for abbrev, count in stats.safeguard_counts.items()
            if abbrev != "P"
        )

    def test_exempt_works_identified(self, stats):
        assert set(stats.exempt_entries) == {
            "booters-karami-stress",
            "udp-ddos-thomas",
        }

    def test_approved_works_identified(self, stats):
        assert set(stats.approved_entries) == {
            "guess-again-kelley",
            "tangled-web-das",
        }

    def test_exempt_works_used_safeguards_and_identified_harms(
        self, stats
    ):
        # §5.5: "Both of these works used Safeguards to mitigate
        # potential Harms and have clear ethical justifications."
        assert stats.exempt_used_safeguards
        assert stats.exempt_identified_harms

    def test_approvals_due_to_surveys(self, stats):
        # §5.5: both approvals were for the survey component, not the
        # illicit-origin data use.
        assert stats.approved_also_did_surveys

    def test_benefits_reported_more_than_harms(self, stats):
        # §5.5: "researchers appear to be more reluctant to express the
        # potential harms resulting from their work than their
        # benefits."
        assert stats.benefits_mentions > stats.harms_mentions


class TestCodeProfiles:
    def test_sensitive_information_most_common_harm(self, stats):
        assert stats.most_common_harm == "SI"

    def test_defence_mechanisms_most_common_benefit(self, stats):
        assert stats.most_common_benefit == "DM"

    def test_deanonymization_never_discussed(self, stats):
        # DA appears in the codebook but no Table 1 row carries it.
        assert stats.harm_counts["DA"] == 0

    def test_safeguard_counts(self, stats):
        assert stats.safeguard_counts == {"SS": 2, "P": 10, "CS": 4}

    def test_justification_counts_sum(self, stats):
        # Public data is the single most used justification.
        counts = stats.justification_counts
        assert max(counts, key=counts.get) == "public-data"

    def test_all_computer_misuse(self, stats):
        assert stats.legal_issue_counts["computer-misuse"] == 30

    def test_ethical_issue_counts_bounded(self, stats):
        for count in stats.ethical_issue_counts.values():
            assert 0 <= count <= 30

    def test_as_dict_roundtrip(self, stats):
        data = stats.as_dict()
        assert data["total_entries"] == 30
        assert data["safeguard_counts"]["P"] == 10


class TestClaimCheckObject:
    def test_describe_marks_ok(self, corpus):
        checks = verify_section5(corpus)
        assert all("[OK ]" in c.describe() for c in checks)

    def test_paper_claims_frozen_expectations(self):
        assert PAPER_CLAIMS["ethics_sections"] == 12
        assert PAPER_CLAIMS["reb_not_mentioned"] == 24
