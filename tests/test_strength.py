"""Unit tests for the Markov strength meter."""

from __future__ import annotations

import pytest

from repro.datasets import PasswordDumpGenerator
from repro.errors import MetricError
from repro.metrics import StrengthMeter


@pytest.fixture(scope="module")
def meter():
    dump = PasswordDumpGenerator(42).generate(users=2000)
    return StrengthMeter(dump.passwords())


class TestStrengthMeter:
    def test_empty_training(self):
        with pytest.raises(MetricError):
            StrengthMeter([])

    def test_bad_smoothing(self):
        with pytest.raises(MetricError):
            StrengthMeter(["x"], smoothing=0)

    def test_empty_password(self, meter):
        with pytest.raises(MetricError):
            meter.estimate("")

    def test_common_password_scores_weak(self, meter):
        common = meter.estimate("dragon")
        random_long = meter.estimate("Xq7#kZp9!mW2vRt5")
        assert (
            common.log2_guess_number < random_long.log2_guess_number
        )
        assert common.band in ("very-weak", "weak")

    def test_length_increases_strength(self, meter):
        short = meter.estimate("dragon")
        long_variant = meter.estimate("dragondragondragon")
        assert (
            long_variant.log2_guess_number > short.log2_guess_number
        )

    def test_estimated_guesses_consistent(self, meter):
        estimate = meter.estimate("dragon42")
        assert estimate.estimated_guesses == pytest.approx(
            2.0 ** estimate.log2_guess_number
        )

    def test_rank_orders_weakest_first(self, meter):
        ranked = meter.rank(
            ["dragon", "Xq7#kZp9!mW2vRt5", "monkey99"]
        )
        values = [e.log2_guess_number for e in ranked]
        assert values == sorted(values)
        assert ranked[0].password in ("dragon", "monkey99")

    def test_policy_gate(self, meter):
        assert not meter.meets_policy("dragon", minimum_bits=35)
        assert meter.meets_policy(
            "Xq7#kZp9!mW2vRt5", minimum_bits=35
        )

    def test_policy_validation(self, meter):
        with pytest.raises(MetricError):
            meter.meets_policy("dragon", minimum_bits=0)

    def test_bands_cover_scale(self, meter):
        bands = {
            meter.estimate(p).band
            for p in (
                "dragon",
                "dragon42!",
                "dragonmonkey42!",
                "Xq7#kZp9!mW2vRt5Xq7#kZp9",
            )
        }
        assert len(bands) >= 2  # the scale discriminates

    def test_agrees_with_markov_guesser_head(self, meter):
        # The meter's weakest passwords should be ones the Markov
        # guesser finds early.
        import itertools

        from repro.metrics import MarkovGuesser

        dump = PasswordDumpGenerator(42).generate(users=2000)
        guesser = MarkovGuesser(dump.passwords())
        early = list(itertools.islice(guesser.guesses(), 50))
        early_scores = [
            meter.estimate(guess).log2_guess_number
            for guess in early[:10]
        ]
        strong_score = meter.estimate(
            "Xq7#kZp9!mW2vRt5"
        ).log2_guess_number
        assert max(early_scores) < strong_score
