"""Unit and property tests for Shamir secret-sharing escrow."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SafeguardError
from repro.safeguards import Share, combine_shares, split_secret

SECRET = b"container-passphrase-0001"


class TestSplit:
    def test_share_count_and_threshold(self):
        shares = split_secret(SECRET, shares=5, threshold=3)
        assert len(shares) == 5
        assert all(s.threshold == 3 for s in shares)
        assert all(len(s.data) == len(SECRET) for s in shares)

    def test_validation(self):
        with pytest.raises(SafeguardError):
            split_secret(b"", shares=3, threshold=2)
        with pytest.raises(SafeguardError):
            split_secret(SECRET, shares=2, threshold=3)
        with pytest.raises(SafeguardError):
            split_secret(SECRET, shares=0, threshold=0)
        with pytest.raises(SafeguardError):
            split_secret(SECRET, shares=300, threshold=2)

    def test_shares_differ_from_secret(self):
        shares = split_secret(SECRET, shares=4, threshold=2)
        assert all(s.data != SECRET for s in shares)

    def test_share_index_bounds(self):
        with pytest.raises(SafeguardError):
            Share(index=0, data=b"x", threshold=2)
        with pytest.raises(SafeguardError):
            Share(index=256, data=b"x", threshold=2)


class TestCombine:
    def test_any_threshold_subset_reconstructs(self):
        shares = split_secret(SECRET, shares=5, threshold=3)
        for subset in itertools.combinations(shares, 3):
            assert combine_shares(list(subset)) == SECRET

    def test_more_than_threshold_works(self):
        shares = split_secret(SECRET, shares=5, threshold=3)
        assert combine_shares(shares) == SECRET

    def test_below_threshold_refused(self):
        shares = split_secret(SECRET, shares=5, threshold=3)
        with pytest.raises(SafeguardError):
            combine_shares(shares[:2])

    def test_duplicate_shares_do_not_count(self):
        shares = split_secret(SECRET, shares=5, threshold=3)
        with pytest.raises(SafeguardError):
            combine_shares([shares[0], shares[0], shares[0]])

    def test_empty_refused(self):
        with pytest.raises(SafeguardError):
            combine_shares([])

    def test_mismatched_thresholds_refused(self):
        shares = split_secret(SECRET, shares=3, threshold=2)
        tampered = Share(
            index=shares[1].index,
            data=shares[1].data,
            threshold=3,
        )
        with pytest.raises(SafeguardError):
            combine_shares([shares[0], tampered])

    def test_mismatched_lengths_refused(self):
        shares = split_secret(SECRET, shares=3, threshold=2)
        tampered = Share(
            index=shares[1].index,
            data=shares[1].data[:-1],
            threshold=2,
        )
        with pytest.raises(SafeguardError):
            combine_shares([shares[0], tampered])

    @settings(max_examples=25, deadline=None)
    @given(
        secret=st.binary(min_size=1, max_size=64),
        threshold=st.integers(1, 5),
        extra=st.integers(0, 3),
    )
    def test_roundtrip_property(self, secret, threshold, extra):
        shares = split_secret(
            secret, shares=threshold + extra, threshold=threshold
        )
        assert combine_shares(shares[:threshold]) == secret

    def test_single_share_scheme(self):
        shares = split_secret(SECRET, shares=1, threshold=1)
        assert combine_shares(shares) == SECRET

    def test_integration_with_container(self):
        from repro.safeguards import SecureContainer

        passphrase = "board-held-passphrase"
        container = SecureContainer(passphrase)
        sealed = container.seal(b"the raw dump")
        shares = split_secret(
            passphrase.encode(), shares=5, threshold=3
        )
        # Later: three custodians reconstruct and open.
        recovered = combine_shares(shares[2:5]).decode()
        assert SecureContainer(recovered).open(sealed) == b"the raw dump"
