"""Cross-cutting property tests over randomly generated corpora.

Uses hypothesis to build arbitrary (schema-valid) corpora through
:class:`~repro.corpus.extensions.CorpusBuilder` and asserts the
invariants every downstream consumer relies on: rendering never
crashes and preserves row counts, JSON round-trips exactly, the
coding matrix is consistent with per-entry queries, and the §5
statistics engine is total over valid corpora.
"""

from __future__ import annotations

import csv
import io

from hypothesis import given, settings, strategies as st

from repro.analysis import CodingMatrix, section5_statistics
from repro.codebook import paper_codebook
from repro.corpus import Category, Corpus, CorpusBuilder, DataOrigin
from repro.tables import build_table1_layout, render

SAFEGUARDS = st.sets(
    st.sampled_from(["SS", "P", "CS"]), max_size=3
)
HARMS = st.sets(
    st.sampled_from(["I", "PA", "DA", "SI", "RH", "BC"]), max_size=6
)
BENEFITS = st.sets(
    st.sampled_from(["R", "U", "DM", "AT"]), max_size=4
)
LEGAL = st.sets(
    st.sampled_from(
        [
            "computer-misuse",
            "copyright",
            "data-privacy",
            "terrorism",
            "indecent-images",
            "national-security",
        ]
    ),
    max_size=6,
)
FLAGS = st.booleans()


@st.composite
def entries(draw, index: int = 0):
    """One schema-valid synthetic case study."""
    n = draw(st.integers(0, 10_000))
    builder = CorpusBuilder(
        id=f"gen-{n}",
        category=draw(st.sampled_from(Category.ORDER)),
        source_label=f"Source {n}",
        reference=draw(st.integers(1, 124)),
        year=draw(st.integers(2009, 2017)),
    )
    builder.legal(*sorted(draw(LEGAL)))
    builder.ethical(
        identification_of_stakeholders=draw(FLAGS),
        identify_harms=draw(FLAGS),
        safeguards=draw(FLAGS),
        justice=draw(FLAGS),
        public_interest=draw(FLAGS),
    )
    builder.justifications(
        not_the_first=draw(FLAGS),
        public_data=draw(FLAGS),
        no_additional_harm=draw(FLAGS),
        fight_malicious_use=draw(FLAGS),
        necessary_data=draw(FLAGS),
    )
    builder.ethics_section(draw(FLAGS))
    builder.reb(
        draw(
            st.sampled_from(
                ["approved", "not-mentioned", "exempt", "not-relevant"]
            )
        )
    )
    builder.codes(
        safeguards=tuple(sorted(draw(SAFEGUARDS))),
        harms=tuple(sorted(draw(HARMS))),
        benefits=tuple(sorted(draw(BENEFITS))),
    )
    builder.describe(
        summary="A generated case study for property testing only.",
        origin=draw(st.sampled_from(DataOrigin.ALL)),
        used_data=draw(FLAGS),
    )
    return builder.build()


@st.composite
def corpora(draw):
    count = draw(st.integers(1, 8))
    built = []
    seen_ids = set()
    for __ in range(count):
        entry = draw(entries())
        if entry.id in seen_ids:
            continue
        seen_ids.add(entry.id)
        built.append(entry)
    # Keep category groups contiguous for the renderers.
    order = {c: i for i, c in enumerate(Category.ORDER)}
    built.sort(key=lambda e: order[e.category])
    return Corpus(paper_codebook(), built)


@settings(max_examples=30, deadline=None)
@given(corpus=corpora())
def test_all_renderers_total(corpus):
    layout = build_table1_layout(corpus)
    for format in ("text", "markdown", "latex", "csv", "html"):
        output = render(layout, format)
        assert isinstance(output, str) and output


@settings(max_examples=30, deadline=None)
@given(corpus=corpora())
def test_csv_row_count_matches(corpus):
    layout = build_table1_layout(corpus)
    rows = list(csv.reader(io.StringIO(render(layout, "csv"))))
    assert len(rows) == len(corpus) + 1


@settings(max_examples=30, deadline=None)
@given(corpus=corpora())
def test_json_roundtrip_exact(corpus):
    clone = Corpus.from_json(paper_codebook(), corpus.to_json())
    assert clone.entry_ids == corpus.entry_ids
    for entry_id in corpus.entry_ids:
        assert clone[entry_id] == corpus[entry_id]


@settings(max_examples=30, deadline=None)
@given(corpus=corpora())
def test_matrix_consistent_with_entries(corpus):
    matrix = CodingMatrix(corpus)
    for entry in corpus:
        # Legal indicator columns agree with the entry's own view.
        for dim_id in (
            "computer-misuse",
            "data-privacy",
            "national-security",
        ):
            row_index = list(corpus.entry_ids).index(entry.id)
            indicator = bool(matrix.column(dim_id)[row_index])
            assert indicator == (dim_id in entry.legal_issues)
    # Column sums equal query counts.
    assert int(matrix.column("ethics-section").sum()) == sum(
        1 for e in corpus if e.has_ethics_section
    )


@settings(max_examples=30, deadline=None)
@given(corpus=corpora())
def test_section5_statistics_total(corpus):
    stats = section5_statistics(corpus)
    assert stats.total_entries == len(corpus)
    assert (
        stats.reb_approved
        + stats.reb_exempt
        + stats.reb_not_mentioned
        + stats.reb_not_applicable
        == len(corpus)
    )
    assert 0 <= stats.ethics_sections <= stats.total_papers
    assert all(v >= 0 for v in stats.safeguard_counts.values())


@settings(max_examples=20, deadline=None)
@given(corpus=corpora())
def test_reproduction_battery_detects_non_table1(corpus):
    # Any corpus that differs from the paper's 30 rows must fail at
    # least one reproduction check.
    from repro.reporting import run_reproduction

    if len(corpus) == 30:  # pragma: no cover - vanishingly unlikely
        return
    outcomes = run_reproduction(corpus)
    assert any(not outcome.passed for outcome in outcomes)
