"""Cross-process telemetry: shard capture, replay, failure context.

The acceptance property of the worker-telemetry subsystem: a
``workers=N`` pipeline run under a recording observer produces an
audit chain whose *content* matches the ``workers=1`` chain — same
events, same order, same detail — differing only in the honest
``workers`` field of the run-started event. Failures in workers must
surface with stage/chunk context and leave a ``chunk-failed`` event
in the trail.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

import pytest

from repro.datasets import BooterDatabaseGenerator
from repro.observability import (
    Observer,
    TelemetryShard,
    WorkerTelemetry,
    audit_event,
    load_events,
    metrics,
    observed,
    replay_shard,
    tracer,
)
from repro.pipeline import (
    SafeguardPipeline,
    StageFailure,
    default_stages,
)

ANON_KEY = hashlib.sha256(b"wtel-anon").digest()
PSEUDO_KEY = hashlib.sha256(b"wtel-pseudo").digest()
PASSPHRASE = "wtel-passphrase"


def booter_source(seed: int = 7, users: int = 40, days: int = 12):
    return BooterDatabaseGenerator(seed).iter_records(
        chunk_size=128, users=users, days=days
    )


def all_stages():
    return default_stages(
        anonymize_key=ANON_KEY,
        pseudonymize_key=PSEUDO_KEY,
        seal_passphrase=PASSPHRASE,
    )


def run_with_trail(tmp_path, workers: int):
    log_path = tmp_path / f"audit-w{workers}.jsonl"
    observer = Observer.recording(log_path)
    pipeline = SafeguardPipeline(
        all_stages(), workers=workers, chunk_size=128
    )
    with observed(observer):
        result = pipeline.run(booter_source())
    observer.trail.close()
    return result, observer, log_path


def chain_content(log_path) -> list[tuple]:
    """(category, action, subject, detail-sans-workers) per event."""
    content = []
    for event in load_events(log_path):
        detail = dict(event.detail)
        detail.pop("workers", None)
        content.append(
            (
                event.category,
                event.action,
                event.subject,
                json.dumps(detail, sort_keys=True),
            )
        )
    return content


# Module level so the spec pickles into ProcessPoolExecutor workers.
@dataclasses.dataclass(frozen=True)
class ExplodingSpec:
    """A stage that raises on a chosen chunk index."""

    explode_at: int = 1
    name = "explode"

    def build(self) -> "_ExplodingRunner":
        """Construct the live runner for this configuration."""
        return _ExplodingRunner(self)


class _ExplodingRunner:
    def __init__(self, spec: ExplodingSpec) -> None:
        self._explode_at = spec.explode_at

    def apply(self, chunk, index):
        """Pass chunks through until the fated index, then raise."""
        if index == self._explode_at:
            raise ValueError("synthetic stage fault")
        return chunk, [], {}


class TestChainEquivalence:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_chain_matches_serial(self, tmp_path, workers):
        serial_result, _, serial_log = run_with_trail(tmp_path, 1)
        parallel_result, _, parallel_log = run_with_trail(
            tmp_path, workers
        )
        assert serial_result.records == parallel_result.records
        serial_content = chain_content(serial_log)
        assert serial_content == chain_content(parallel_log)
        stage_events = [
            entry
            for entry in serial_content
            if entry[1] == "stage-applied"
        ]
        # one event per (chunk, stage): chunks * 4 stages
        assert stage_events
        assert len(stage_events) % 4 == 0

    def test_parallel_chain_verifies(self, tmp_path):
        _, observer, _ = run_with_trail(tmp_path, 4)
        assert observer.trail.verify().ok

    def test_stage_events_carry_counts_not_timings(self, tmp_path):
        _, _, log_path = run_with_trail(tmp_path, 2)
        for event in load_events(log_path):
            if event.action != "stage-applied":
                continue
            assert set(event.detail) == {
                "chunk",
                "records",
                "artifacts",
            }

    def test_parent_metrics_absorb_worker_spans(self, tmp_path):
        _, observer, _ = run_with_trail(tmp_path, 2)
        histograms = observer.metrics.snapshot()["histograms"]
        # Worker-side stage spans arrive via shard registry merges.
        assert "span.stage.anonymize.seconds" in histograms
        assert "span.stage.seal.seconds" in histograms
        span_names = {
            record.name for record in observer.tracer.finished
        }
        assert "stage.seal" in span_names


class TestShardMechanics:
    def test_shard_captures_and_replays(self, tmp_path):
        with TelemetryShard() as shard:
            audit_event("pipeline", "stage-applied", "demo", chunk=3)
            with tracer().span("stage.demo"):
                pass
            metrics().counter("pipeline.records").inc(9)
        telemetry = shard.telemetry()
        assert telemetry.events == (
            ("pipeline", "stage-applied", "demo", {"chunk": 3}),
        )
        assert [name for name, _, _ in telemetry.spans] == [
            "stage.demo"
        ]
        assert telemetry.metrics["counters"]["pipeline.records"] == 9

        observer = Observer.recording(tmp_path / "replay.jsonl")
        with observed(observer):
            replay_shard(telemetry)
        observer.trail.close()
        events = load_events(observer.trail.path)
        assert [event.action for event in events] == ["stage-applied"]
        assert events[0].detail == {"chunk": 3}
        snapshot = observer.metrics.snapshot()
        assert snapshot["counters"]["pipeline.records"] == 9
        # Span histograms come from the registry merge, not from
        # re-observing absorbed records (which would double-count).
        assert (
            snapshot["histograms"]["span.stage.demo.seconds"]["count"]
            == 1
        )

    def test_replay_into_disabled_observer_is_noop(self):
        shard = WorkerTelemetry(
            events=(("pipeline", "x", "", {}),),
            spans=(("a", 0, 0.1),),
            metrics={"counters": {"c": 1}},
        )
        replay_shard(shard)  # default observer is disabled
        assert not metrics().enabled

    def test_shard_restores_previous_observer(self, tmp_path):
        observer = Observer.recording(tmp_path / "outer.jsonl")
        with observed(observer):
            with TelemetryShard():
                audit_event("pipeline", "inner-only")
            audit_event("pipeline", "outer-event")
        observer.trail.close()
        actions = [
            event.action
            for event in load_events(observer.trail.path)
        ]
        assert actions == ["outer-event"]


class TestFailurePropagation:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_failure_carries_stage_and_chunk(
        self, tmp_path, workers
    ):
        pipeline = SafeguardPipeline(
            (ExplodingSpec(explode_at=1),),
            workers=workers,
            chunk_size=128,
        )
        observer = Observer.recording(tmp_path / "fail.jsonl")
        with observed(observer):
            with pytest.raises(StageFailure) as excinfo:
                pipeline.run(booter_source())
        observer.trail.close()
        failure = excinfo.value
        assert failure.stage == "explode"
        assert failure.chunk_index == 1
        assert "synthetic stage fault" in failure.cause
        assert "chunk 1" in str(failure)
        events = load_events(observer.trail.path)
        failed = [
            event
            for event in events
            if event.action == "chunk-failed"
        ]
        assert len(failed) == 1
        assert failed[0].subject == "explode"
        assert failed[0].detail["chunk"] == 1
        assert "synthetic stage fault" in failed[0].detail["error"]
        assert observer.trail.verify().ok

    def test_failure_without_observer_still_structured(self):
        pipeline = SafeguardPipeline(
            (ExplodingSpec(explode_at=0),), chunk_size=128
        )
        with pytest.raises(StageFailure) as excinfo:
            pipeline.run(booter_source())
        assert excinfo.value.chunk_index == 0

    def test_stage_failure_pickles_by_field(self):
        import pickle

        failure = StageFailure("seal", 7, "disk full")
        clone = pickle.loads(pickle.dumps(failure))
        assert clone.stage == "seal"
        assert clone.chunk_index == 7
        assert clone.cause == "disk full"
        assert str(clone) == str(failure)
