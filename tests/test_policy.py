"""Tests for the declarative policy knowledge base.

Covers the pack model (validation failures → typed PolicyError →
exit 2 through the CLI failure table), the compiled/interpreted
differential (the decision tables must be semantics-preserving for
*any* valid pack, not just the default), pack-scoped result caching
(hot-swap without restart), batch byte-identity across worker
counts, the rank-map ``worst()`` folds, the synthetic project
generator and the R10 policy-literals lint rule.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.assessment import Verdict, assess_with_policy
from repro.cli import main
from repro.datasets import ResearchProjectGenerator, synthetic_project
from repro.errors import (
    AssessmentError,
    EthicsModelError,
    LegalModelError,
    PolicyError,
)
from repro.ethics.menlo import FindingStatus
from repro.legal import (
    JurisdictionSet,
    RiskLevel,
    analyze_legal,
)
from repro.ops import ResultCache, RunContext, execute
from repro.policy import (
    DEFAULT_PACK,
    PRECAUTIONARY_PACK,
    PolicyInterpreter,
    PolicyPack,
    bundled_pack_names,
    compiled_policy,
    default_policy,
    pack_digest,
    resolve_pack,
    validate_pack,
)


def _mutated(mutate) -> dict:
    """A deep copy of the default pack with *mutate* applied."""
    pack = copy.deepcopy(DEFAULT_PACK)
    mutate(pack)
    return pack


class TestPackValidation:
    def test_default_packs_validate(self):
        validate_pack(DEFAULT_PACK)
        validate_pack(PRECAUTIONARY_PACK)

    def test_unknown_fact_name(self):
        pack = _mutated(
            lambda p: p["facts"]["derived"].append(
                {"name": "broken", "any": ["no_such_fact"]}
            )
        )
        with pytest.raises(PolicyError, match="unknown fact name"):
            validate_pack(pack)

    def test_cyclic_rule_dependency(self):
        def mutate(pack):
            pack["facts"]["derived"].extend(
                (
                    {"name": "cycle_a", "any": ["cycle_b"]},
                    {"name": "cycle_b", "any": ["cycle_a"]},
                )
            )

        with pytest.raises(PolicyError, match="cyclic"):
            validate_pack(_mutated(mutate))

    def test_duplicate_issue_id(self):
        pack = _mutated(
            lambda p: p["legal"]["issues"].append(
                copy.deepcopy(p["legal"]["issues"][0])
            )
        )
        with pytest.raises(
            PolicyError, match="duplicate legal issue id"
        ):
            validate_pack(pack)

    def test_last_row_must_be_unconditional(self):
        def mutate(pack):
            pack["legal"]["issues"][0]["rows"][-1]["when"] = {
                "classified": True
            }

        with pytest.raises(PolicyError):
            validate_pack(_mutated(mutate))

    def test_malformed_pack_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(PolicyError):
            resolve_pack(str(path))

    def test_non_dict_pack_file(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(PolicyError):
            resolve_pack(str(path))

    def test_unknown_bundled_name(self):
        with pytest.raises(
            PolicyError, match="unknown policy pack"
        ):
            resolve_pack("no-such-pack")


class TestPolicyErrorExitCode:
    """Every pack failure maps to exit 2 via the failure table."""

    def test_malformed_pack_exits_2(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        status = main(
            ["policy", "validate", "--pack", str(path)]
        )
        assert status == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_pack_exits_2(self, capsys):
        status = main(
            ["policy", "assess", "--pack", "no-such-pack"]
        )
        assert status == 2
        err = capsys.readouterr().err
        assert "unknown policy pack" in err

    def test_invalid_pack_data_exits_2(self, tmp_path, capsys):
        pack = _mutated(
            lambda p: p["legal"]["issues"].append(
                copy.deepcopy(p["legal"]["issues"][0])
            )
        )
        path = tmp_path / "dupe.json"
        path.write_text(json.dumps(pack), encoding="utf-8")
        status = main(["policy", "show", "--pack", str(path)])
        assert status == 2
        assert "duplicate legal issue id" in capsys.readouterr().err


class TestDigests:
    def test_digest_is_content_addressed(self):
        assert pack_digest(DEFAULT_PACK) == pack_digest(
            copy.deepcopy(DEFAULT_PACK)
        )
        assert pack_digest(DEFAULT_PACK) != pack_digest(
            PRECAUTIONARY_PACK
        )

    def test_bundled_names(self):
        assert bundled_pack_names() == ("default", "precautionary")

    def test_compiled_policy_memoizes_by_digest(self):
        assert compiled_policy("default") is compiled_policy(None)
        assert (
            compiled_policy("precautionary")
            is compiled_policy("precautionary")
        )


class TestCompiledInterpreterParity:
    """The decision tables must match the reference interpreter."""

    def test_legal_reports_match_over_corpus(self):
        from repro.assessment import corpus_profiles

        compiled = default_policy()
        interp = PolicyInterpreter(
            PolicyPack.from_data(DEFAULT_PACK)
        )
        jurisdiction_sets = (
            JurisdictionSet.from_codes(["US"]),
            JurisdictionSet.from_codes(["UK", "DE"]),
            JurisdictionSet.from_codes(["US", "UK", "DE", "EU"]),
        )
        for profile in corpus_profiles().values():
            for jurisdictions in jurisdiction_sets:
                for reb in (False, True):
                    assert compiled.legal_report(
                        profile, jurisdictions, reb_approved=reb
                    ) == interp.legal_report(
                        profile, jurisdictions, reb_approved=reb
                    )

    def test_full_assessments_match_over_synthetic_projects(self):
        compiled = default_policy()
        interp = PolicyInterpreter(
            PolicyPack.from_data(DEFAULT_PACK)
        )
        for project in ResearchProjectGenerator(11).generate(40):
            a = assess_with_policy(project, compiled)
            b = assess_with_policy(project, interp)
            assert a.verdict == b.verdict
            assert a.legal == b.legal
            assert a.menlo == b.menlo
            assert a.required_actions == b.required_actions
            assert a.notes == b.notes

    def test_precautionary_pack_matches_too(self):
        compiled = compiled_policy("precautionary")
        interp = PolicyInterpreter(
            PolicyPack.from_data(PRECAUTIONARY_PACK)
        )
        for project in ResearchProjectGenerator(13).generate(20):
            a = assess_with_policy(project, compiled)
            b = assess_with_policy(project, interp)
            assert a.verdict == b.verdict
            assert a.required_actions == b.required_actions

    def test_analyze_legal_runs_on_compiled_default(self):
        from repro.assessment import profile_for

        profile = profile_for("att-ipad")
        jurisdictions = JurisdictionSet.from_codes(["US"])
        assert analyze_legal(
            profile, jurisdictions
        ) == default_policy().legal_report(profile, jurisdictions)


class TestPackScopedCache:
    """Pack digests feed the result cache key (hot-swap)."""

    def test_hot_swap_invalidates_without_restart(self, tmp_path):
        ctx = RunContext(cache=ResultCache(64))
        path = tmp_path / "pack.json"
        path.write_text(json.dumps(DEFAULT_PACK), encoding="utf-8")
        values = {"pack": str(path), "seed": 5}
        first = execute("policy.assess", values, context=ctx)
        execute("policy.assess", values, context=ctx)
        assert ctx.cache.hits == 1

        path.write_text(
            json.dumps(PRECAUTIONARY_PACK), encoding="utf-8"
        )
        swapped = execute("policy.assess", values, context=ctx)
        assert ctx.cache.hits == 1  # new digest → miss, not stale hit
        assert (
            first.payload["pack"]["digest"]
            != swapped.payload["pack"]["digest"]
        )

    def test_plain_pure_ops_unchanged(self):
        ctx = RunContext(cache=ResultCache(8))
        execute("stats", context=ctx)
        execute("stats", context=ctx)
        assert ctx.cache.hits == 1


class TestBatchByteIdentity:
    """policy.assess batches are byte-identical across worker counts."""

    def test_workers_1_2_4(self, tmp_path):
        from repro.ops import (
            BatchExecutor,
            load_requests,
            shutdown_warm_pools,
        )

        path = tmp_path / "requests.jsonl"
        path.write_text(
            "".join(
                json.dumps(
                    {"op": "policy.assess", "args": {"seed": seed}}
                )
                + "\n"
                for seed in range(12)
            ),
            encoding="utf-8",
        )
        requests = load_requests(path)
        try:
            texts = [
                BatchExecutor(workers=workers).run(requests).text()
                for workers in (1, 2, 4)
            ]
        finally:
            shutdown_warm_pools()
        assert texts[0] == texts[1] == texts[2]


class TestWorstFolds:
    def test_verdict_worst(self):
        assert Verdict.worst(
            ["proceed", "do-not-proceed", "requires-reb-review"]
        ) == "do-not-proceed"
        with pytest.raises(
            AssessmentError, match="unknown verdict 'maybe'"
        ):
            Verdict.worst(["proceed", "maybe"])

    def test_risk_level_worst(self):
        assert RiskLevel.worst(["low", "severe", "medium"]) == (
            "severe"
        )
        with pytest.raises(
            LegalModelError, match="unknown risk level 'huge'"
        ):
            RiskLevel.worst(["huge"])

    def test_finding_status_worst(self):
        assert FindingStatus.worst(
            ["satisfied", "violated", "indeterminate"]
        ) == "violated"
        with pytest.raises(
            EthicsModelError, match="unknown finding status 'ok'"
        ):
            FindingStatus.worst(["ok"])


class TestProjectGenerator:
    def test_deterministic(self):
        a = synthetic_project(7)
        b = synthetic_project(7)
        # Registry/jurisdiction containers have no __eq__; compare
        # the value-bearing fields.
        assert a.title == b.title
        assert a.profile == b.profile
        assert a.harms == b.harms
        assert a.benefits == b.benefits
        assert a.justification_facts == b.justification_facts
        assert a.safeguards == b.safeguards
        assert a.rights_context == b.rights_context
        assert [j.code for j in a.jurisdictions] == [
            j.code for j in b.jurisdictions
        ]
        assert synthetic_project(8).title != a.title

    def test_chunking_independent_of_chunk_size(self):
        flat_64 = [
            record
            for chunk in ResearchProjectGenerator(3).iter_records(
                chunk_size=64, count=150
            )
            for record in chunk
        ]
        flat_17 = [
            record
            for chunk in ResearchProjectGenerator(3).iter_records(
                chunk_size=17, count=150
            )
            for record in chunk
        ]
        assert flat_64 == flat_17
        assert all(r["_table"] == "projects" for r in flat_64)

    def test_projects_are_assessable(self):
        verdicts = {
            assess_with_policy(project, default_policy()).verdict
            for project in ResearchProjectGenerator(1).generate(60)
        }
        # The distributions must exercise more than one verdict band.
        assert len(verdicts) >= 2

    def test_simulate_projects_kind(self):
        response = execute("simulate", {"kind": "projects"})
        assert response.payload["detail"]["projects"] == 100


_R10_VIOLATION = (
    'ISSUES = ("computer-misuse", "beneficence")\n'
)


class TestPolicyLiteralRule:
    def _lint(self, root) -> list:
        from repro.staticcheck import LintEngine, default_registry

        engine = LintEngine(default_registry().select(("R10",)))
        return engine.lint_package(str(root))

    def test_flags_literals_outside_policy(self, tmp_path):
        (tmp_path / "analysis.py").write_text(
            _R10_VIOLATION, encoding="utf-8"
        )
        findings = self._lint(tmp_path)
        assert [f.rule_id for f in findings] == ["R10", "R10"]
        assert "computer-misuse" in findings[0].message

    def test_allowlists_policy_and_corpus_trees(self, tmp_path):
        for allowed in ("policy", "corpus"):
            subdir = tmp_path / allowed
            subdir.mkdir()
            (subdir / "data.py").write_text(
                _R10_VIOLATION, encoding="utf-8"
            )
        assert self._lint(tmp_path) == []

    def test_skips_docstrings(self, tmp_path):
        (tmp_path / "documented.py").write_text(
            '"""Discusses computer-misuse in prose."""\n'
            "VALUE = 1\n",
            encoding="utf-8",
        )
        assert self._lint(tmp_path) == []

    def test_repo_baseline_is_empty(self):
        from repro.staticcheck import lint_repo

        findings = lint_repo(("R10",), incremental=False)
        assert [f for f in findings if f.rule_id == "R10"] == []
