"""Unit tests for the Menlo principle evaluation."""

from __future__ import annotations

import pytest

from repro.errors import EthicsModelError
from repro.ethics import (
    BenefitInstance,
    ConsentStatus,
    FindingStatus,
    HarmInstance,
    MENLO_QUESTIONS,
    MenloEvaluation,
    MenloPrinciple,
    Stakeholder,
    StakeholderRegistry,
    StakeholderRole,
    default_stakeholders,
)


def _registry(consented: bool = False) -> StakeholderRegistry:
    registry = default_stakeholders()
    if consented:
        registry = StakeholderRegistry(
            [
                Stakeholder(
                    id="data-subjects",
                    name="survey participants",
                    role=StakeholderRole.PRIMARY,
                    consent=ConsentStatus.OBTAINED,
                ),
                Stakeholder(
                    id="researchers",
                    name="the researchers",
                    role=StakeholderRole.KEY,
                    consent=ConsentStatus.OBTAINED,
                ),
            ]
        )
    return registry


def _harm(mitigation=0.0, likelihood=0.5, severity=0.5):
    return HarmInstance(
        description="credential re-exposure",
        kind="SI",
        stakeholder_id="data-subjects",
        likelihood=likelihood,
        severity=severity,
        mitigation=mitigation,
    )


def _benefit(magnitude=0.8):
    return BenefitInstance(
        description="improved password policies",
        kind="DM",
        beneficiary="society",
        magnitude=magnitude,
    )


class TestRespectForPersons:
    def test_consentless_needs_safeguards(self):
        evaluation = MenloEvaluation(_registry(), [], [])
        finding = evaluation.respect_for_persons()
        assert finding.status == FindingStatus.NEEDS_SAFEGUARDS
        assert any("REB" in r for r in finding.recommendations)

    def test_consented_satisfied(self):
        evaluation = MenloEvaluation(_registry(consented=True), [], [])
        finding = evaluation.respect_for_persons()
        assert finding.status == FindingStatus.SATISFIED

    def test_vulnerable_flagged(self):
        registry = StakeholderRegistry(
            [
                Stakeholder(
                    id="minors",
                    name="minors in the dump",
                    role=StakeholderRole.PRIMARY,
                    vulnerable=True,
                    consent=ConsentStatus.OBTAINED,
                ),
                Stakeholder(
                    id="researchers",
                    name="researchers",
                    role=StakeholderRole.KEY,
                    consent=ConsentStatus.OBTAINED,
                ),
            ]
        )
        finding = MenloEvaluation(
            registry, [], []
        ).respect_for_persons()
        assert finding.status == FindingStatus.NEEDS_SAFEGUARDS
        assert any("minors" in r for r in finding.reasons)


class TestBeneficence:
    def test_empty_harm_register_indeterminate(self):
        evaluation = MenloEvaluation(
            _registry(), [], [_benefit()]
        )
        finding = evaluation.beneficence()
        assert finding.status == FindingStatus.INDETERMINATE

    def test_unmitigated_risk_needs_safeguards(self):
        # Residual 0.64 exceeds the 0.25 threshold but stays below the
        # 0.8 benefit, so the verdict is needs-safeguards, not violated.
        evaluation = MenloEvaluation(
            _registry(),
            [_harm(likelihood=0.8, severity=0.8)],
            [_benefit()],
        )
        finding = evaluation.beneficence()
        assert finding.status == FindingStatus.NEEDS_SAFEGUARDS

    def test_mitigated_risk_satisfied(self):
        evaluation = MenloEvaluation(
            _registry(),
            [_harm(mitigation=0.9, likelihood=0.5, severity=0.4)],
            [_benefit()],
        )
        finding = evaluation.beneficence()
        assert finding.status == FindingStatus.SATISFIED

    def test_harms_exceeding_benefits_violated(self):
        evaluation = MenloEvaluation(
            _registry(),
            [_harm(likelihood=1.0, severity=1.0)],
            [_benefit(magnitude=0.1)],
        )
        finding = evaluation.beneficence()
        assert finding.status == FindingStatus.VIOLATED

    def test_no_benefits_flagged(self):
        evaluation = MenloEvaluation(
            _registry(), [_harm(mitigation=0.9)], []
        )
        finding = evaluation.beneficence()
        assert any("benefit" in r for r in finding.reasons)

    def test_unknown_stakeholder_in_harm(self):
        harm = HarmInstance(
            description="x",
            kind="SI",
            stakeholder_id="nobody",
            likelihood=0.5,
            severity=0.5,
        )
        with pytest.raises(EthicsModelError):
            MenloEvaluation(_registry(), [harm], [])

    def test_bad_threshold(self):
        with pytest.raises(EthicsModelError):
            MenloEvaluation(
                _registry(), [], [], residual_risk_threshold=0
            )


class TestJustice:
    def test_subsidising_party_flagged(self):
        evaluation = MenloEvaluation(
            _registry(), [_harm()], [_benefit()]
        )
        finding = evaluation.justice()
        assert finding.status == FindingStatus.NEEDS_SAFEGUARDS

    def test_balanced_satisfied(self):
        benefit_to_subjects = BenefitInstance(
            description="breach notification for affected users",
            kind="DM",
            beneficiary="data-subjects",
            magnitude=0.5,
        )
        evaluation = MenloEvaluation(
            _registry(), [_harm(mitigation=0.9)], [benefit_to_subjects]
        )
        finding = evaluation.justice()
        assert finding.status == FindingStatus.SATISFIED

    def test_empty_register_indeterminate(self):
        finding = MenloEvaluation(_registry(), [], []).justice()
        assert finding.status == FindingStatus.INDETERMINATE


class TestLawAndPublicInterest:
    def test_unanalysed_is_indeterminate(self):
        finding = MenloEvaluation(
            _registry(), [], [], lawful=None, public_interest=True
        ).respect_for_law_and_public_interest()
        assert finding.status == FindingStatus.INDETERMINATE

    def test_unlawful_needs_reb_and_transparency(self):
        finding = MenloEvaluation(
            _registry(), [], [], lawful=False, public_interest=True
        ).respect_for_law_and_public_interest()
        assert finding.status == FindingStatus.NEEDS_SAFEGUARDS
        assert any("REB" in r for r in finding.recommendations)

    def test_lawful_public_interest_satisfied(self):
        finding = MenloEvaluation(
            _registry(),
            [],
            [],
            lawful=True,
            public_interest=True,
            reproducible=True,
        ).respect_for_law_and_public_interest()
        assert finding.status == FindingStatus.SATISFIED

    def test_missing_public_interest_flagged(self):
        finding = MenloEvaluation(
            _registry(), [], [], lawful=True, public_interest=False
        ).respect_for_law_and_public_interest()
        assert finding.status == FindingStatus.NEEDS_SAFEGUARDS


class TestAggregate:
    def test_four_findings_in_order(self):
        findings = MenloEvaluation(_registry(), [], []).findings()
        assert [f.principle for f in findings] == [
            MenloPrinciple.RESPECT_FOR_PERSONS,
            MenloPrinciple.BENEFICENCE,
            MenloPrinciple.JUSTICE,
            MenloPrinciple.RESPECT_FOR_LAW_AND_PUBLIC_INTEREST,
        ]

    def test_overall_is_worst(self):
        evaluation = MenloEvaluation(
            _registry(),
            [_harm(likelihood=1.0, severity=1.0)],
            [_benefit(magnitude=0.1)],
            lawful=True,
            public_interest=True,
        )
        assert evaluation.overall_status() == FindingStatus.VIOLATED

    def test_questions_cover_all_principles(self):
        assert set(MENLO_QUESTIONS) == set(MenloPrinciple)
        assert all(qs for qs in MENLO_QUESTIONS.values())

    def test_describe_renders(self):
        finding = MenloEvaluation(
            _registry(), [], []
        ).respect_for_persons()
        text = finding.describe()
        assert "respect-for-persons" in text
