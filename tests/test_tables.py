"""Unit tests for the table layout and renderers (Table 1, exp E1)."""

from __future__ import annotations

import csv
import io

import pytest

from repro.tables import (
    build_table1_layout,
    render,
    render_csv,
    render_html,
    render_latex,
    render_legend_text,
    render_markdown,
    render_table1,
    render_text,
)
from repro.errors import RenderError


@pytest.fixture(scope="module")
def corpus():
    from repro import table1_corpus

    return table1_corpus()


@pytest.fixture(scope="module")
def layout(corpus):
    return build_table1_layout(corpus)


class TestLayout:
    def test_thirty_rows(self, layout):
        assert len(layout.rows) == 30

    def test_column_count(self, layout):
        # sources, ref, year + 18 closed + 3 open.
        assert len(layout.columns) == 24

    def test_category_spans_cover_rows(self, layout):
        spans = layout.category_spans()
        assert sum(n for _, n in spans) == 30
        assert [c for c, _ in spans] == [
            "Malware & exploitation",
            "Password dumps",
            "Leaked databases",
            "Classified materials",
            "Financial data",
        ]

    def test_group_spans(self, layout):
        groups = dict(layout.group_spans())
        assert groups["legal"] == 6
        assert groups["ethical"] == 5
        assert groups["justification"] == 5

    def test_footnote_markers_in_reference_cells(self, layout):
        cells = {row.entry_id: row.cells for row in layout.rows}
        assert cells["att-ipad"]["reference"] == "[106]a"
        assert cells["carna-menlo"]["reference"] == "[27]b"
        assert cells["patreon"]["reference"] == "[85]c"

    def test_repeated_source_labels_blanked(self, layout):
        carna_rows = [
            row for row in layout.rows if row.entry_id.startswith("carna")
        ]
        assert carna_rows[0].cells["sources"] == "Carna Scan"
        assert all(r.cells["sources"] == "" for r in carna_rows[1:])

    def test_glyphs(self, layout):
        att = next(r for r in layout.rows if r.entry_id == "att-ipad")
        assert att.cells["computer-misuse"] == "•"
        assert att.cells["copyright"] == ""
        assert att.cells["identify-harms"] == "✓"
        assert att.cells["public-interest"] == "✗"
        patreon = next(
            r for r in layout.rows if r.entry_id == "patreon"
        )
        assert patreon.cells["no-additional-harm"] == "l"
        assert patreon.cells["reb-approval"] == "∅"

    def test_exempt_glyph(self, layout):
        exempt = next(
            r for r in layout.rows if r.entry_id == "udp-ddos-thomas"
        )
        assert exempt.cells["reb-approval"] == "E"

    def test_code_cells_joined(self, layout):
        weir = next(
            r for r in layout.rows if r.entry_id == "pcfg-weir"
        )
        assert weir.cells["safeguards"] == "SS,P,CS"
        assert weir.cells["harms"] == "SI,BC"
        assert weir.cells["benefits"] == "R,DM"

    def test_year_two_digit(self, layout):
        weir = next(
            r for r in layout.rows if r.entry_id == "pcfg-weir"
        )
        assert weir.cells["year"] == "09"


class TestRenderers:
    def test_text_contains_categories_and_legend(self, corpus):
        text = render_table1(corpus, "text")
        assert "Malware & exploitation" in text
        assert "Legend:" in text
        assert "P=Privacy" in text
        assert "E exempt" in text

    def test_text_row_count(self, corpus):
        text = render_table1(corpus, "text")
        data_lines = [
            line for line in text.splitlines() if line.count("|") > 5
        ]
        # header + 30 rows
        assert len(data_lines) == 31

    def test_markdown_is_table(self, corpus):
        markdown = render_table1(corpus, "markdown")
        lines = markdown.splitlines()
        assert lines[2].startswith("| Category |")
        assert set(lines[3]) <= {"|", "-"}

    def test_latex_compilable_shape(self, corpus):
        latex = render_table1(corpus, "latex")
        assert latex.count(r"\begin{tabular}") == 1
        assert latex.count(r"\end{tabular}") == 1
        assert r"\checkmark" in latex
        assert "•" not in latex  # escaped to \bullet

    def test_csv_parses_with_31_rows(self, corpus):
        text = render_csv(build_table1_layout(corpus))
        rows = list(csv.reader(io.StringIO(text)))
        assert len(rows) == 31
        assert rows[0][0] == "category"
        # All rows have the same width.
        assert len({len(r) for r in rows}) == 1

    def test_html_well_formed_cells(self, corpus):
        html_text = render_table1(corpus, "html")
        assert html_text.count("<tr>") == html_text.count("</tr>")
        assert "&amp;" in html_text  # AT&T escaped

    def test_unknown_format(self, layout):
        with pytest.raises(RenderError):
            render(layout, "pdf")

    def test_legend_lists_footnotes(self, layout):
        legend = render_legend_text(layout)
        for marker in "abcde":
            assert f"{marker}: " in legend

    def test_all_renderers_handle_layout(self, layout):
        for renderer in (
            render_text,
            render_markdown,
            render_latex,
            render_csv,
            render_html,
        ):
            output = renderer(layout)
            assert isinstance(output, str) and output
