"""Documentation-quality gates for the public API and the docs pages.

Deliverable (e) requires doc comments on every public item; these
tests enforce it mechanically: every module has a docstring, every
public class and function exported from a package ``__all__`` has a
docstring, and ``__all__`` listings are sorted and resolvable.

The second half keeps the prose documentation honest: every fenced
``python`` snippet in ``README.md`` and ``docs/*.md`` is executed
(blocks in one file share a namespace, so a later block may use an
earlier block's names), and every ``repro-ethics …`` /
``python -m repro …`` line in a ``bash``/``console`` block runs
through the real CLI entry point and must exit 0. Each file runs in
its own temporary working directory, so examples may write relative
paths like ``audit.jsonl``. A block preceded by the literal comment
``<!-- snippet: no-run -->`` is skipped (for deliberately
illustrative fragments); shell lines that are not repro commands
(``pip``, ``pytest``, ``python examples/…``) are ignored.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import shlex
from pathlib import Path

import pytest

import repro
from repro.cli.main import main as _cli_main

def _walk_modules():
    modules = [repro]
    for info in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    ):
        if info.name.endswith("__main__"):
            continue  # importing it would execute the CLI
        modules.append(importlib.import_module(info.name))
    return modules


MODULES = _walk_modules()
PACKAGES = [m for m in MODULES if hasattr(m, "__path__")]


@pytest.mark.parametrize(
    "module", MODULES, ids=lambda m: m.__name__
)
def test_every_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize(
    "package", PACKAGES, ids=lambda m: m.__name__
)
def test_package_all_resolvable_and_sorted(package):
    exported = getattr(package, "__all__", None)
    if exported is None:
        pytest.skip("package without __all__")
    for name in exported:
        assert hasattr(package, name), (package.__name__, name)
    assert list(exported) == sorted(exported), package.__name__


@pytest.mark.parametrize(
    "package", PACKAGES, ids=lambda m: m.__name__
)
def test_exported_items_documented(package):
    exported = getattr(package, "__all__", ())
    undocumented = []
    for name in exported:
        item = getattr(package, name)
        if inspect.isclass(item) or inspect.isfunction(item):
            if not (item.__doc__ and item.__doc__.strip()):
                undocumented.append(name)
    assert not undocumented, (package.__name__, undocumented)


def test_public_methods_documented():
    """Public methods of exported classes carry docstrings."""
    missing = []
    for package in PACKAGES:
        for name in getattr(package, "__all__", ()):
            item = getattr(package, name)
            if not inspect.isclass(item):
                continue
            if not item.__module__.startswith("repro"):
                continue
            for method_name, method in vars(item).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if not (method.__doc__ and method.__doc__.strip()):
                    # Trivial dataclass-style accessors under 4 lines
                    # are exempt; everything else must be documented.
                    try:
                        lines = len(
                            inspect.getsource(method).splitlines()
                        )
                    except OSError:  # pragma: no cover
                        lines = 99
                    if lines > 4:
                        missing.append(
                            f"{item.__module__}.{item.__qualname__}"
                            f".{method_name}"
                        )
    assert not missing, missing


def test_error_hierarchy_documented():
    from repro import errors

    for name in dir(errors):
        item = getattr(errors, name)
        if inspect.isclass(item) and issubclass(
            item, errors.ReproError
        ):
            assert item.__doc__ and item.__doc__.strip(), name


# ---------------------------------------------------------------------------
# Executable documentation: every fenced snippet in the prose docs runs.
# ---------------------------------------------------------------------------

_REPO = Path(__file__).resolve().parents[1]
_DOC_FILES = [
    _REPO / "README.md",
    *sorted((_REPO / "docs").glob("*.md")),
]
_NO_RUN_MARKER = "<!-- snippet: no-run -->"
_PYTHON_LANGS = frozenset({"python", "py"})
_SHELL_LANGS = frozenset({"bash", "console", "sh", "shell"})
_CLI_PREFIXES = ("python -m repro ", "repro-ethics ")


def _extract_snippets(path: Path):
    """``(lang, first_code_line, code)`` for each runnable fence.

    A fence whose immediately preceding non-blank line is the no-run
    marker is excluded; languages outside the python/shell sets are
    never executed.
    """
    snippets = []
    fence_lang = None
    start = 0
    code: list[str] = []
    skip_next = False
    for number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        stripped = line.strip()
        if fence_lang is None:
            if stripped.startswith("```"):
                fence_lang = stripped[3:].strip().lower()
                start = number + 1
                code = []
            elif stripped:
                skip_next = stripped == _NO_RUN_MARKER
        elif stripped == "```":
            runnable = fence_lang in _PYTHON_LANGS | _SHELL_LANGS
            if runnable and not skip_next:
                snippets.append((fence_lang, start, "\n".join(code)))
            fence_lang = None
            skip_next = False
        else:
            code.append(line)
    return snippets


def _cli_argv(command: str) -> tuple[list[str], str | None]:
    """``(argv, stdout_target)`` from one documented command line.

    A trailing ``> file`` redirect is honoured by the runner: the
    command's captured stdout is written to *file* in the snippet's
    working directory, so documented redirects stay executable.
    """
    tokens = shlex.split(command, comments=True)
    target = None
    if ">" in tokens:
        split = tokens.index(">")
        target = tokens[split + 1]
        tokens = tokens[:split]
    if tokens[0] == "python":  # python -m repro <argv...>
        return tokens[tokens.index("repro") + 1:], target
    return tokens[1:], target  # repro-ethics <argv...>


@pytest.mark.parametrize(
    "doc",
    _DOC_FILES,
    ids=lambda p: str(p.relative_to(_REPO)),
)
def test_doc_snippets_execute(doc, tmp_path, monkeypatch, capsys):
    """Every snippet in *doc* runs: python blocks execute in a shared
    per-file namespace, repro CLI lines exit 0."""
    snippets = _extract_snippets(doc)
    if not snippets:
        pytest.skip("no runnable snippets")
    monkeypatch.chdir(tmp_path)
    namespace: dict = {"__name__": f"docsnippet_{doc.stem}"}
    for lang, first_line, code in snippets:
        if lang in _PYTHON_LANGS:
            compiled = compile(code, f"{doc.name}:{first_line}", "exec")
            exec(compiled, namespace)  # noqa: S102 - executing our own docs
            continue
        for offset, raw in enumerate(code.splitlines()):
            command = raw.strip()
            if not command.startswith(_CLI_PREFIXES):
                continue
            argv, redirect = _cli_argv(command)
            status = _cli_main(argv)
            # Keep command output out of the report; honour a
            # documented `> file` redirect so later snippets (and
            # byte-stability assertions) can read the file.
            captured = capsys.readouterr()
            if redirect is not None:
                Path(redirect).write_text(
                    captured.out, encoding="utf-8"
                )
            assert status == 0, (
                f"{doc.name}:{first_line + offset}: "
                f"{command!r} exited {status}"
            )
