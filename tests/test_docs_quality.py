"""Documentation-quality gates for the public API.

Deliverable (e) requires doc comments on every public item; these
tests enforce it mechanically: every module has a docstring, every
public class and function exported from a package ``__all__`` has a
docstring, and ``__all__`` listings are sorted and resolvable.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

def _walk_modules():
    modules = [repro]
    for info in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    ):
        if info.name.endswith("__main__"):
            continue  # importing it would execute the CLI
        modules.append(importlib.import_module(info.name))
    return modules


MODULES = _walk_modules()
PACKAGES = [m for m in MODULES if hasattr(m, "__path__")]


@pytest.mark.parametrize(
    "module", MODULES, ids=lambda m: m.__name__
)
def test_every_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize(
    "package", PACKAGES, ids=lambda m: m.__name__
)
def test_package_all_resolvable_and_sorted(package):
    exported = getattr(package, "__all__", None)
    if exported is None:
        pytest.skip("package without __all__")
    for name in exported:
        assert hasattr(package, name), (package.__name__, name)
    assert list(exported) == sorted(exported), package.__name__


@pytest.mark.parametrize(
    "package", PACKAGES, ids=lambda m: m.__name__
)
def test_exported_items_documented(package):
    exported = getattr(package, "__all__", ())
    undocumented = []
    for name in exported:
        item = getattr(package, name)
        if inspect.isclass(item) or inspect.isfunction(item):
            if not (item.__doc__ and item.__doc__.strip()):
                undocumented.append(name)
    assert not undocumented, (package.__name__, undocumented)


def test_public_methods_documented():
    """Public methods of exported classes carry docstrings."""
    missing = []
    for package in PACKAGES:
        for name in getattr(package, "__all__", ()):
            item = getattr(package, name)
            if not inspect.isclass(item):
                continue
            if not item.__module__.startswith("repro"):
                continue
            for method_name, method in vars(item).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if not (method.__doc__ and method.__doc__.strip()):
                    # Trivial dataclass-style accessors under 4 lines
                    # are exempt; everything else must be documented.
                    try:
                        lines = len(
                            inspect.getsource(method).splitlines()
                        )
                    except OSError:  # pragma: no cover
                        lines = 99
                    if lines > 4:
                        missing.append(
                            f"{item.__module__}.{item.__qualname__}"
                            f".{method_name}"
                        )
    assert not missing, missing


def test_error_hierarchy_documented():
    from repro import errors

    for name in dir(errors):
        item = getattr(errors, name)
        if inspect.isclass(item) and issubclass(
            item, errors.ReproError
        ):
            assert item.__doc__ and item.__doc__.strip(), name
