"""Unit tests for the coding-matrix analysis engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    CodingMatrix,
    odds_ratio,
    independence_test,
    year_trend_test,
)
from repro.corpus import Category
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def matrix(corpus):
    return CodingMatrix(corpus)


# pytest collects module-scope fixtures from conftest; re-export corpus.
@pytest.fixture(scope="module")
def corpus():
    from repro import table1_corpus

    return table1_corpus()


class TestMatrixShape:
    def test_dimensions(self, matrix):
        # 18 closed dims + 3 + 6 + 4 open codes = 31 columns.
        assert matrix.shape == (30, 31)

    def test_columns_are_named(self, matrix):
        assert "computer-misuse" in matrix.columns
        assert "safeguards:CS" in matrix.columns
        assert "harms:DA" in matrix.columns

    def test_unknown_column(self, matrix):
        with pytest.raises(AnalysisError):
            matrix.column("nonexistent")

    def test_unknown_row(self, matrix):
        with pytest.raises(AnalysisError):
            matrix.row("nonexistent")

    def test_row_lookup(self, matrix):
        row = matrix.row("att-ipad")
        assert row.sum() > 0

    def test_as_array_is_copy(self, matrix):
        array = matrix.as_array()
        array[0, 0] = 99
        assert matrix.as_array()[0, 0] != 99


class TestFrequencies:
    def test_computer_misuse_universal(self, matrix):
        table = matrix.frequencies(["computer-misuse"])
        assert table["computer-misuse"] == 30

    def test_da_harm_never_coded(self, matrix):
        table = matrix.frequencies(["harms:DA"])
        assert table["harms:DA"] == 0

    def test_group_frequencies_legal(self, matrix):
        table = matrix.group_frequencies("legal")
        assert table.as_dict() == {
            "computer-misuse": 30,
            "copyright": 16,
            "data-privacy": 24,
            "terrorism": 9,
            "indecent-images": 3,
            "national-security": 9,
        }

    def test_group_frequencies_codes(self, matrix):
        table = matrix.group_frequencies("codes")
        assert table["safeguards:P"] == 10
        assert table["benefits:DM"] == 11

    def test_unknown_group(self, matrix):
        with pytest.raises(AnalysisError):
            matrix.group_frequencies("nope")

    def test_share(self, matrix):
        table = matrix.frequencies(["computer-misuse"])
        assert table.share("computer-misuse") == 1.0

    def test_most_common_order(self, matrix):
        table = matrix.group_frequencies("codes")
        top_label, top_count = table.most_common(1)[0]
        assert top_count == max(table.counts)

    def test_unknown_label_lookup(self, matrix):
        table = matrix.frequencies(["justice"])
        with pytest.raises(AnalysisError):
            table["nope"]


class TestCrossTabs:
    def test_marginals_sum_to_n(self, matrix):
        tab = matrix.crosstab("ethics-section", "safeguards:P")
        assert tab.n == 30

    def test_ethics_section_privacy_association(self, matrix):
        # 8 of the 10 privacy-safeguard rows have ethics sections.
        tab = matrix.crosstab("safeguards:P", "ethics-section")
        assert tab.both == 8
        assert tab.row_only == 2

    def test_jaccard_bounds(self, matrix):
        tab = matrix.crosstab("data-privacy", "ethics-section")
        assert 0.0 <= tab.jaccard() <= 1.0

    def test_table_matches_counts(self, matrix):
        tab = matrix.crosstab("justice", "public-interest")
        assert tab.table.sum() == 30
        assert tab.table[0, 0] == tab.both


class TestCooccurrence:
    def test_diagonal_is_frequency(self, matrix):
        labels, counts = matrix.cooccurrence(
            ["safeguards:P", "safeguards:CS"]
        )
        assert counts[0, 0] == 10  # P count
        assert counts[1, 1] == 4  # CS count

    def test_symmetric(self, matrix):
        labels, counts = matrix.cooccurrence(
            ["harms:SI", "benefits:DM", "justice"]
        )
        assert np.array_equal(counts, counts.T)


class TestGroupedViews:
    def test_by_category_covers_all_rows(self, matrix):
        subs = matrix.by_category()
        assert set(subs) == set(Category.ORDER)
        assert sum(len(s.entries) for s in subs.values()) == 30

    def test_category_counts_differ(self, matrix):
        subs = matrix.by_category()
        passwords = subs[Category.PASSWORDS]
        table = passwords.frequencies(["safeguards:P"])
        assert table["safeguards:P"] == 5  # all password rows use P

    def test_year_trend_buckets(self, matrix):
        trend = matrix.year_trend("ethics-section")
        assert sum(total for _, total in trend.values()) == 30
        assert all(pos <= total for pos, total in trend.values())

    def test_reb_breakdown(self, matrix):
        counts = matrix.reb_breakdown()
        assert counts["approved"] == 2
        assert counts["exempt"] == 2
        assert counts["not-mentioned"] == 24
        assert counts["not-relevant"] == 2


class TestStatisticalTests:
    def test_independence_runs(self, matrix):
        result = independence_test(matrix, "justice", "public-interest")
        assert result.method in ("fisher-exact", "chi2-yates")
        assert 0.0 <= result.p_value <= 1.0

    def test_justice_public_interest_associated(self, matrix):
        # In Table 1 Justice and Public interest are strongly linked.
        result = independence_test(matrix, "justice", "public-interest")
        assert result.odds_ratio > 1.0

    def test_odds_ratio_corrected(self, matrix):
        tab = matrix.crosstab("harms:DA", "justice")
        # DA never occurs; correction keeps the OR finite and positive.
        assert odds_ratio(tab) > 0.0

    def test_year_trend(self, matrix):
        result = year_trend_test(matrix, "ethics-section")
        assert result.direction in ("increasing", "decreasing", "flat")
        assert len(result.years) == len(result.shares)

    def test_year_trend_needs_years(self, corpus):
        sub_entries = corpus.by_year(2013)
        from repro.corpus import Corpus

        small = Corpus(corpus.codebook, sub_entries)
        small_matrix = CodingMatrix(small)
        with pytest.raises(AnalysisError):
            year_trend_test(small_matrix, "ethics-section")

    def test_constant_share_flat(self, matrix):
        result = year_trend_test(matrix, "computer-misuse")
        assert result.direction == "flat"
        assert result.p_value == 1.0
