"""Unit tests for reuse, forum SNA, event studies and stylometry."""

from __future__ import annotations

import pytest

from repro.datasets import (
    ForumGenerator,
    OffshoreLeakGenerator,
    PasswordDumpGenerator,
)
from repro.errors import MetricError
from repro.metrics import (
    AuthorshipAttributor,
    ForumNetwork,
    analyze_reuse,
    classify_pair,
    extract_features,
    leak_event_study,
    legislation_impact,
    software_metrics,
)


class TestReuseClassification:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("dragon", "dragon", "identical"),
            ("dragon", "Dragon", "partial"),
            ("dragon", "dragon99", "partial"),
            ("dragon!", "dragon", "partial"),
            ("dragon", "monkey", "distinct"),
            ("longpassword", "password", "partial"),  # containment
            ("abc", "abd", "distinct"),
        ],
    )
    def test_pairs(self, a, b, expected):
        assert classify_pair(a, b) == expected

    def test_empty_rejected(self):
        with pytest.raises(MetricError):
            classify_pair("", "x")


class TestReuseAnalysis:
    def test_rates_match_generator_parameters(self):
        generator = PasswordDumpGenerator(11)
        first, second = generator.generate_pair(
            users=3000, overlap=0.5, direct_reuse=0.43,
            partial_reuse=0.19,
        )
        profile = analyze_reuse(first, second)
        assert profile.shared_users == 1500
        # Direct reuse near the Das et al. 43% figure.
        assert profile.identical_rate == pytest.approx(0.43, abs=0.05)
        # Any-reuse at least direct + injected partial (mutations can
        # also collide into partial by chance).
        assert profile.any_reuse_rate >= profile.identical_rate

    def test_hash_only_dump_rejected(self):
        generator = PasswordDumpGenerator(1)
        hashed = generator.generate(users=10, style="hashed")
        plain = generator.generate(users=10)
        with pytest.raises(MetricError):
            analyze_reuse(hashed, plain)

    def test_disjoint_dumps_rejected(self):
        a = PasswordDumpGenerator(1).generate(users=10, site="a")
        b = PasswordDumpGenerator(99).generate(users=10, site="b")
        with pytest.raises(MetricError):
            analyze_reuse(a, b)


class TestForumSNA:
    @pytest.fixture(scope="class")
    def network(self):
        return ForumNetwork(ForumGenerator(3).generate(members=150))

    def test_summary_shape(self, network):
        summary = network.summary()
        assert summary.members == 150
        assert 0.0 < summary.density < 1.0
        assert 0.0 < summary.largest_component_share <= 1.0
        assert "members" in summary.describe()

    def test_key_actors_ranked(self, network):
        actors = network.key_actors(5)
        scores = [score for _, score in actors]
        assert scores == sorted(scores, reverse=True)
        assert len(actors) == 5

    def test_key_actors_validation(self, network):
        with pytest.raises(MetricError):
            network.key_actors(0)

    def test_reciprocity_bounds(self, network):
        assert 0.0 <= network.reciprocity() <= 1.0

    def test_trade_network_volumes(self, network):
        trades = network.trade_network()
        assert all(
            data["volume"] > 0
            for _, _, data in trades.edges(data=True)
        )

    def test_seller_concentration_bounds(self, network):
        gini = network.seller_concentration()
        assert 0.0 <= gini < 1.0

    def test_empty_forum_rejected(self):
        forum = ForumGenerator(1).generate(members=2, threads=1)
        object.__setattr__(forum, "posts", ())
        object.__setattr__(forum, "messages", ())
        with pytest.raises(MetricError):
            ForumNetwork(forum)


class TestEventStudies:
    @pytest.fixture(scope="class")
    def leak(self):
        return OffshoreLeakGenerator(4).generate()

    def test_legislation_impact_significant(self, leak):
        impact = legislation_impact(leak, 2010)
        assert impact.significant
        assert impact.reduction > 0

    def test_window_validation(self, leak):
        with pytest.raises(MetricError):
            legislation_impact(leak, 2010, window=1)

    def test_quiet_period_rejected(self, leak):
        with pytest.raises(MetricError):
            legislation_impact(leak, 1950)

    def test_event_study_shape(self, leak):
        result = leak_event_study(leak, abnormal_return=-0.007)
        assert result.implicated_firms > 0
        # Loss relative to implicated value equals |abnormal return|
        # by construction — the paper's 0.7% basis.
        assert result.loss_share_of_implicated == pytest.approx(
            0.007
        )
        assert result.loss_share_of_market < 0.007

    def test_positive_return_rejected(self, leak):
        with pytest.raises(MetricError):
            leak_event_study(leak, abnormal_return=0.01)


PYTHONIC = '''
# helper utilities
def compute_total(values):
    total = 0
    for value in values:
        if value > 0:
            total += value
    return total

def main_entry(arguments):
    results = compute_total(arguments)
    return results
'''

C_STYLE = """
int computeTotal(int *values, int n) {
\tint total = 0;
\tfor (int i = 0; i < n; i++) {
\t\tif (values[i] > 0) { total += values[i]; }
\t}
\treturn total;
}
"""


class TestStylometry:
    def test_features_differ_between_styles(self):
        pythonic = extract_features(PYTHONIC)
        c_style = extract_features(C_STYLE)
        assert pythonic.vector() != c_style.vector()
        assert c_style.indent_tabs_ratio > pythonic.indent_tabs_ratio

    def test_empty_source_rejected(self):
        with pytest.raises(MetricError):
            extract_features("")

    def test_attribution_recovers_author(self):
        attributor = AuthorshipAttributor()
        attributor.train("pythonista", PYTHONIC)
        attributor.train("c-hacker", C_STYLE)
        anonymous = PYTHONIC.replace("compute_total", "sum_up")
        author, distance = attributor.attribute(anonymous)
        assert author == "pythonista"
        assert distance >= 0.0

    def test_attribution_needs_training(self):
        with pytest.raises(MetricError):
            AuthorshipAttributor().attribute(PYTHONIC)

    def test_author_label_required(self):
        with pytest.raises(MetricError):
            AuthorshipAttributor().train("", PYTHONIC)

    def test_software_metrics(self):
        metrics = software_metrics(PYTHONIC)
        assert metrics.function_count == 2
        assert metrics.cyclomatic_complexity >= 3  # if + for + 1
        assert metrics.comment_lines == 1
        assert 0.0 < metrics.comment_density < 1.0

    def test_software_metrics_empty(self):
        with pytest.raises(MetricError):
            software_metrics("   \n  ")
