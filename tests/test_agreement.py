"""Unit and property tests for inter-rater reliability statistics."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.coding import (
    Coder,
    annotations_from_corpus,
    canonicalize_labels,
    cohens_kappa,
    confusion_matrix,
    fleiss_kappa,
    fuzzy_set_agreement,
    interpret_kappa,
    krippendorff_alpha,
    label_similarity,
    normalize_label,
    pairwise_kappa,
    percent_agreement,
    set_agreement,
    weighted_kappa,
)
from repro.errors import CodingError

LABELS = st.sampled_from(["yes", "no", "maybe"])


class TestPercentAgreement:
    def test_identical(self):
        assert percent_agreement(["a", "b"], ["a", "b"]) == 1.0

    def test_disjoint(self):
        assert percent_agreement(["a", "a"], ["b", "b"]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(CodingError):
            percent_agreement(["a"], ["a", "b"])

    def test_empty_rejected(self):
        with pytest.raises(CodingError):
            percent_agreement([], [])


class TestCohensKappa:
    def test_perfect_agreement(self):
        assert cohens_kappa(["a", "b", "a"], ["a", "b", "a"]) == 1.0

    def test_chance_level_is_zero(self):
        # Exactly chance-level agreement: kappa 0.
        a = ["y", "y", "n", "n"]
        b = ["y", "n", "y", "n"]
        assert cohens_kappa(a, b) == pytest.approx(0.0)

    def test_worse_than_chance_negative(self):
        a = ["y", "y", "n", "n"]
        b = ["n", "n", "y", "y"]
        assert cohens_kappa(a, b) < 0

    def test_single_category_degenerate(self):
        assert cohens_kappa(["a", "a"], ["a", "a"]) == 1.0

    def test_textbook_example(self):
        # 2x2 example: Po = 0.7, marginals (0.7, 0.3) x (0.6, 0.4)
        # -> Pe = 0.54, kappa = 0.16/0.46.
        a = ["+"] * 25 + ["+"] * 10 + ["-"] * 5 + ["-"] * 10
        b = ["+"] * 25 + ["-"] * 10 + ["+"] * 5 + ["-"] * 10
        observed = percent_agreement(a, b)
        assert observed == pytest.approx(0.7)
        expected = (0.7 - 0.54) / (1 - 0.54)
        assert cohens_kappa(a, b) == pytest.approx(expected)

    @given(
        st.lists(LABELS, min_size=2, max_size=40),
    )
    def test_self_agreement_is_one(self, labels):
        assert cohens_kappa(labels, labels) == pytest.approx(1.0)

    @given(
        st.lists(st.tuples(LABELS, LABELS), min_size=2, max_size=40),
    )
    def test_bounded_above_by_one(self, pairs):
        a = [p[0] for p in pairs]
        b = [p[1] for p in pairs]
        assert cohens_kappa(a, b) <= 1.0 + 1e-12

    @given(
        st.lists(st.tuples(LABELS, LABELS), min_size=2, max_size=40),
    )
    def test_symmetric(self, pairs):
        a = [p[0] for p in pairs]
        b = [p[1] for p in pairs]
        assert cohens_kappa(a, b) == pytest.approx(cohens_kappa(b, a))


class TestWeightedKappa:
    def test_default_weights_match_unweighted(self):
        a = ["y", "y", "n", "n", "y"]
        b = ["y", "n", "y", "n", "y"]
        assert weighted_kappa(a, b, {}) == pytest.approx(
            cohens_kappa(a, b)
        )

    def test_partial_credit_raises_kappa(self):
        a = ["lo", "hi", "mid", "lo"]
        b = ["mid", "hi", "lo", "lo"]
        strict = weighted_kappa(a, b, {})
        lenient = weighted_kappa(
            a, b, {("lo", "mid"): 0.5, ("mid", "lo"): 0.5}
        )
        assert lenient > strict

    def test_perfect_agreement(self):
        assert weighted_kappa(["a", "b"], ["a", "b"], {}) == 1.0


class TestFleissKappa:
    def test_perfect(self):
        items = [["a", "a", "a"], ["b", "b", "b"]]
        assert fleiss_kappa(items) == pytest.approx(1.0)

    def test_needs_two_raters(self):
        with pytest.raises(CodingError):
            fleiss_kappa([["a"]])

    def test_ragged_rejected(self):
        with pytest.raises(CodingError):
            fleiss_kappa([["a", "b"], ["a"]])

    def test_empty_rejected(self):
        with pytest.raises(CodingError):
            fleiss_kappa([])

    def test_two_raters_close_to_cohen(self):
        # For 2 raters Fleiss' kappa ~ Cohen's kappa when marginals
        # are similar.
        a = ["y", "y", "n", "n", "y", "n"]
        b = ["y", "n", "n", "n", "y", "y"]
        items = list(map(list, zip(a, b)))
        assert fleiss_kappa(items) == pytest.approx(
            cohens_kappa(a, b), abs=0.15
        )

    @given(
        st.lists(
            st.tuples(LABELS, LABELS, LABELS), min_size=2, max_size=30
        )
    )
    def test_bounded(self, rows):
        items = [list(r) for r in rows]
        kappa = fleiss_kappa(items)
        assert -1.0 - 1e-9 <= kappa <= 1.0 + 1e-9


class TestKrippendorffAlpha:
    def test_perfect(self):
        assert krippendorff_alpha([["a", "a"], ["b", "b"]]) == 1.0

    def test_handles_missing(self):
        items = [["a", "a", None], ["b", None, "b"], ["a", "a", "a"]]
        alpha = krippendorff_alpha(items)
        assert alpha == pytest.approx(1.0)

    def test_all_missing_rejected(self):
        with pytest.raises(CodingError):
            krippendorff_alpha([["a", None], [None, "b"]])

    def test_known_value(self):
        # Krippendorff's own example (2011 tutorial): two observers,
        # nominal data -> alpha ~ 0.095 for this pattern.
        a = list("abbbbbbbbb")
        b = list("bbbbbbbbbb")
        items = list(map(list, zip(a, b)))
        alpha = krippendorff_alpha(items)
        assert -1.0 <= alpha <= 1.0
        assert alpha < 0.2  # near-chance despite 90% raw agreement

    @given(
        st.lists(st.tuples(LABELS, LABELS), min_size=2, max_size=30)
    )
    def test_self_copy_alpha_is_one(self, pairs):
        items = [[p[0], p[0]] for p in pairs]
        assert krippendorff_alpha(items) == pytest.approx(1.0)


class TestConfusionMatrix:
    def test_counts(self):
        matrix = confusion_matrix(["a", "a", "b"], ["a", "b", "b"])
        assert matrix == {("a", "a"): 1, ("a", "b"): 1, ("b", "b"): 1}


class TestInterpretation:
    @pytest.mark.parametrize(
        "kappa,band",
        [
            (-0.1, "poor"),
            (0.1, "slight"),
            (0.3, "fair"),
            (0.5, "moderate"),
            (0.7, "substantial"),
            (0.9, "almost perfect"),
        ],
    )
    def test_bands(self, kappa, band):
        assert interpret_kappa(kappa) == band


class TestSetAgreement:
    def test_identical_recodings_of_table1(self, corpus):
        first = annotations_from_corpus(corpus, Coder(id="a"))
        second = annotations_from_corpus(corpus, Coder(id="b"))
        summary = set_agreement([first, second])
        assert summary["percent"] == 1.0
        assert summary["fleiss_kappa"] == pytest.approx(1.0)
        assert summary["krippendorff_alpha"] == pytest.approx(1.0)

    def test_pairwise_kappa_per_dimension(self, corpus):
        first = annotations_from_corpus(corpus, Coder(id="a"))
        second = annotations_from_corpus(corpus, Coder(id="b"))
        kappas = pairwise_kappa(first, second)
        assert set(kappas) == {
            dim.id for dim in corpus.codebook
        }
        assert all(k == pytest.approx(1.0) for k in kappas.values())

    def test_needs_two_sets(self, corpus):
        annotations = annotations_from_corpus(corpus, Coder(id="a"))
        with pytest.raises(CodingError):
            set_agreement([annotations])


class TestNormalizeLabel:
    @pytest.mark.parametrize(
        "raw, expected",
        [
            ("Secure_Storage", "secure-storage"),
            ("secure storage", "secure-storage"),
            ("SECURE-STORAGE", "secure-storage"),
            ("  padded  ", "padded"),
            ("already-fine", "already-fine"),
        ],
    )
    def test_spelling_variants_coincide(self, raw, expected):
        assert normalize_label(raw) == expected

    def test_compound_labels_sorted_componentwise(self):
        assert normalize_label("SS+P") == normalize_label("p + ss")
        assert normalize_label("CS+P+SS") == "cs+p+ss"


class TestLabelSimilarity:
    def test_normalised_equality_is_one(self):
        assert label_similarity("Not_Applicable", "not-applicable") == 1.0

    def test_compound_jaccard(self):
        assert label_similarity("P+SS", "P") == pytest.approx(0.5)
        assert label_similarity("CS+P+SS", "CS+P") == pytest.approx(2 / 3)

    def test_distinct_codebook_values_stay_below_threshold(self):
        for a, b in [
            ("applicable", "not-applicable"),
            ("discussed", "not-discussed"),
            ("exempt", "approved"),
        ]:
            assert label_similarity(a, b) < 0.85

    def test_symmetric(self):
        assert label_similarity("abc", "abd") == label_similarity(
            "abd", "abc"
        )


class TestCanonicalizeLabels:
    def test_drifted_pairs_share_a_representative(self):
        mapping = canonicalize_labels(
            ["Secure_Storage", "secure-storage", "privacy"]
        )
        assert (
            mapping["Secure_Storage"] == mapping["secure-storage"]
        )
        assert mapping["privacy"] != mapping["secure-storage"]

    def test_order_independent(self):
        labels = ["b-label", "a label", "A_LABEL", "B-Label"]
        assert canonicalize_labels(labels) == canonicalize_labels(
            list(reversed(labels))
        )

    def test_representative_is_sorted_first_member(self):
        mapping = canonicalize_labels(["zeta-x", "Zeta_X"])
        assert set(mapping.values()) == {"Zeta_X"}

    def test_threshold_validated(self):
        with pytest.raises(CodingError):
            canonicalize_labels(["a"], threshold=0.0)
        with pytest.raises(CodingError):
            canonicalize_labels(["a"], threshold=1.5)

    def test_high_threshold_keeps_labels_apart(self):
        mapping = canonicalize_labels(["abcd", "abce"], threshold=1.0)
        assert mapping["abcd"] != mapping["abce"]


class TestFuzzySetAgreement:
    def test_identical_recodings_match_exact(self, corpus):
        first = annotations_from_corpus(corpus, Coder(id="a"))
        second = annotations_from_corpus(corpus, Coder(id="b"))
        exact = set_agreement([first, second])
        fuzzy = fuzzy_set_agreement([first, second])
        assert fuzzy["percent"] == exact["percent"] == 1.0
        assert fuzzy["fleiss_kappa"] == pytest.approx(1.0)
        assert fuzzy["krippendorff_alpha"] == pytest.approx(1.0)

    def test_needs_two_sets(self, corpus):
        annotations = annotations_from_corpus(corpus, Coder(id="a"))
        with pytest.raises(CodingError):
            fuzzy_set_agreement([annotations])
