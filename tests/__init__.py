"""Test suite for the repro library (pytest package)."""
