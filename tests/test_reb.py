"""Unit tests for the REB board, workflow and policy ablation (E13)."""

from __future__ import annotations

import pytest

from repro.errors import REBError
from repro.reb import (
    Board,
    Decision,
    REBWorkflow,
    Reviewer,
    Submission,
    TriggerPolicy,
    ictr_board,
    medical_style_board,
    run_policy_experiment,
    submission_from_entry,
)


def submission(**overrides) -> Submission:
    defaults = dict(
        id="s1",
        title="Booter dump analysis",
        human_subjects=False,
        potential_human_harm=True,
        risk_score=0.3,
        safeguard_codes=("SS", "P"),
    )
    defaults.update(overrides)
    return Submission(**defaults)


class TestBoard:
    def test_needs_members(self):
        with pytest.raises(REBError):
            Board(
                id="b", name="B", members=(),
                simple_case_days=5, complex_case_days=30,
            )

    def test_latency_sanity(self):
        reviewer = Reviewer(id="r", name="R", expertise=("ictr",))
        with pytest.raises(REBError):
            Board(
                id="b", name="B", members=(reviewer,),
                simple_case_days=30, complex_case_days=5,
            )

    def test_ictr_board_is_fast_for_simple_cases(self):
        assert ictr_board().review_days(complex_case=False) == 5

    def test_medical_board_always_slow_for_ictr(self):
        board = medical_style_board()
        # No ICTR expertise: even simple cases take the complex path.
        assert board.review_days(complex_case=False) == 180

    def test_expertise_queries(self):
        board = ictr_board()
        assert board.ictr_capable
        assert not medical_style_board().ictr_capable
        assert board.reviewers_for("law")

    def test_empty_reviewer_id(self):
        with pytest.raises(REBError):
            Reviewer(id="", name="X")


class TestWorkflowTriage:
    def test_human_subjects_policy_misses_risky_work(self):
        workflow = REBWorkflow(
            ictr_board(), TriggerPolicy.HUMAN_SUBJECTS
        )
        risky = submission(
            human_subjects=False, potential_human_harm=True
        )
        assert not workflow.needs_review(risky)

    def test_risk_based_policy_catches_it(self):
        workflow = REBWorkflow(ictr_board(), TriggerPolicy.RISK_BASED)
        risky = submission(
            human_subjects=False, potential_human_harm=True
        )
        assert workflow.needs_review(risky)

    def test_policy_defaults_from_board(self):
        assert (
            REBWorkflow(medical_style_board()).policy
            is TriggerPolicy.HUMAN_SUBJECTS
        )
        assert (
            REBWorkflow(ictr_board()).policy
            is TriggerPolicy.RISK_BASED
        )

    def test_exempt_outcome_not_reviewed(self):
        workflow = REBWorkflow(
            ictr_board(), TriggerPolicy.HUMAN_SUBJECTS
        )
        outcome = workflow.review(submission(human_subjects=False))
        assert outcome.decision is Decision.EXEMPT
        assert not outcome.reviewed


class TestWorkflowReview:
    def test_low_risk_approved(self):
        workflow = REBWorkflow(ictr_board())
        outcome = workflow.review(
            submission(
                risk_score=0.05, safeguard_codes=("SS", "P", "CS")
            )
        )
        assert outcome.decision is Decision.APPROVED
        assert outcome.days_taken == 5

    def test_conditions_for_missing_safeguards(self):
        workflow = REBWorkflow(ictr_board())
        outcome = workflow.review(
            submission(risk_score=0.05, safeguard_codes=())
        )
        assert outcome.decision is Decision.APPROVED_WITH_CONDITIONS
        assert len(outcome.conditions) == 2

    def test_high_risk_unprotected_rejected(self):
        workflow = REBWorkflow(ictr_board())
        outcome = workflow.review(
            submission(risk_score=2.0, safeguard_codes=("P",))
        )
        assert outcome.decision is Decision.REJECTED
        assert not outcome.approved

    def test_high_risk_with_safeguards_conditional(self):
        workflow = REBWorkflow(ictr_board())
        outcome = workflow.review(
            submission(risk_score=2.0, safeguard_codes=("SS", "P"))
        )
        assert outcome.decision is Decision.APPROVED_WITH_CONDITIONS

    def test_no_expertise_referred(self):
        workflow = REBWorkflow(
            medical_style_board(), TriggerPolicy.RISK_BASED
        )
        outcome = workflow.review(submission(area="ictr"))
        assert outcome.decision is Decision.REFERRED

    def test_illegal_work_gets_legal_condition(self):
        workflow = REBWorkflow(ictr_board())
        outcome = workflow.review(
            submission(
                may_be_illegal=True, safeguard_codes=("SS", "P")
            )
        )
        assert any(
            "legal" in condition for condition in outcome.conditions
        )

    def test_negative_risk_rejected(self):
        with pytest.raises(REBError):
            submission(risk_score=-1)

    def test_review_all(self):
        workflow = REBWorkflow(ictr_board())
        outcomes = workflow.review_all(
            [submission(id="a"), submission(id="b")]
        )
        assert len(outcomes) == 2


class TestPolicyExperiment:
    def test_risk_based_dominates(self, corpus):
        comparison = run_policy_experiment(corpus)
        assert comparison.risk_based_dominates
        assert (
            comparison.risk_based_coverage
            > comparison.human_subjects_coverage
        )

    def test_exempted_studies_flip(self, corpus):
        comparison = run_policy_experiment(corpus)
        assert {
            "booters-karami-stress",
            "udp-ddos-thomas",
        } <= set(comparison.flipped)

    def test_full_risk_based_coverage(self, corpus):
        comparison = run_policy_experiment(corpus)
        assert comparison.risk_based_coverage == 1.0

    def test_submissions_carry_corpus_facts(self, corpus):
        entry = corpus["guess-again-kelley"]
        sub = submission_from_entry(entry)
        assert sub.human_subjects  # they ran a survey
        assert sub.safeguard_codes == ("P",)

    def test_describe(self, corpus):
        text = run_policy_experiment(corpus).describe()
        assert "risk-based trigger" in text
