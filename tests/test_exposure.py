"""Unit tests for the cross-jurisdiction exposure advisor."""

from __future__ import annotations

import pytest

from repro.errors import LegalModelError
from repro.legal import (
    DataProfile,
    GERMANY,
    JurisdictionSet,
    RiskLevel,
    UK,
    US,
    exposure_matrix,
    travel_advisory,
)


class TestExposureMatrix:
    def test_matrix_covers_issues_and_jurisdictions(self):
        profile = DataProfile(contains_email_addresses=True)
        jurisdictions = JurisdictionSet.from_codes(["UK", "US"])
        matrix = exposure_matrix(profile, jurisdictions)
        assert set(matrix["data-privacy"]) == {"UK", "US"}
        assert len(matrix) == 7  # the seven §3 issues

    def test_jurisdictional_divergence_visible(self):
        profile = DataProfile(contains_ip_addresses=True)
        matrix = exposure_matrix(
            profile, JurisdictionSet.from_codes(["US", "DE"])
        )
        privacy = matrix["data-privacy"]
        assert not privacy["US"].applicable
        assert privacy["DE"].applicable


class TestTravelAdvisory:
    def test_terrorism_data_flags_uk_leg(self):
        # UK's reporting duty grades terrorism HIGH; US grades it
        # MEDIUM — travelling with the data raises exposure.
        profile = DataProfile(terrorism_related=True)
        advisory = travel_advisory(
            profile,
            home=US,
            destinations=JurisdictionSet.from_codes(["UK"]),
        )
        assert advisory.risky_legs == ("UK",)
        (leg,) = advisory.legs
        assert "terrorism" in leg[2]

    def test_ip_data_flags_germany_from_us(self):
        profile = DataProfile(contains_ip_addresses=True)
        advisory = travel_advisory(
            profile,
            home=US,
            destinations=JurisdictionSet.from_codes(["DE"]),
        )
        assert advisory.risky_legs == ("DE",)
        (leg,) = advisory.legs
        assert "data-privacy" in leg[2]

    def test_benign_profile_no_risky_legs(self):
        profile = DataProfile()
        advisory = travel_advisory(
            profile,
            home=UK,
            destinations=JurisdictionSet.from_codes(["US", "DE"]),
        )
        assert advisory.risky_legs == ()

    def test_home_in_destinations_rejected(self):
        with pytest.raises(LegalModelError):
            travel_advisory(
                DataProfile(),
                home=UK,
                destinations=JurisdictionSet([UK, US]),
            )

    def test_describe_mentions_legal_advice(self):
        profile = DataProfile(terrorism_related=True)
        advisory = travel_advisory(
            profile,
            home=US,
            destinations=JurisdictionSet.from_codes(["UK"]),
        )
        assert "local legal advice" in advisory.describe()

    def test_worst_risk_recorded_per_leg(self):
        profile = DataProfile(classified=True)
        advisory = travel_advisory(
            profile,
            home=GERMANY,
            destinations=JurisdictionSet.from_codes(["US"]),
        )
        (leg,) = advisory.legs
        assert leg[1] == RiskLevel.HIGH
