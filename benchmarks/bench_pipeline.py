"""E11 — end-to-end safeguard pipeline on a synthetic booter dump.

Generates a booter database, anonymises the attack log
(prefix-preserving IPs + pseudonymised users), scrubs ticket text,
and seals the raw dump — asserting the safety invariants (no raw IP
survives, prefix structure preserved, container authenticated) while
measuring throughput of each stage.
"""

from __future__ import annotations

import pytest

from repro.anonymization import (
    IPAnonymizer,
    Pseudonymizer,
    TextScrubber,
)
from repro.datasets import BooterDatabaseGenerator
from repro.safeguards import SecureContainer

KEY = b"benchmark-key-0123456789abcdef!!"


@pytest.fixture(scope="module")
def booter_db():
    return BooterDatabaseGenerator(2024).generate(
        users=300, days=120
    )


def test_e11_ip_anonymization_throughput(benchmark, booter_db):
    anonymizer = IPAnonymizer(KEY)
    targets = [a.target_ip for a in booter_db.attacks]

    mapped = benchmark(anonymizer.anonymize_many, targets)
    assert len(mapped) == len(targets)
    # Real invariants (the old `original != out or True` was always
    # true): the keyed mapping is injective, deterministic, and
    # produces valid dotted quads.
    assert len(set(mapped)) == len(set(targets))
    assert mapped == anonymizer.anonymize_many(targets)
    assert all(
        out.count(".") == 3
        and all(0 <= int(octet) <= 255 for octet in out.split("."))
        for out in mapped
    )
    # Prefix structure preserved for the first pair sharing a /8.
    for a, b in zip(targets, targets[1:]):
        shared = IPAnonymizer.shared_prefix_length(a, b)
        mapped_shared = IPAnonymizer.shared_prefix_length(
            anonymizer.anonymize(a), anonymizer.anonymize(b)
        )
        assert shared == mapped_shared


def test_e11_pseudonymization_throughput(benchmark, booter_db):
    pseudonymizer = Pseudonymizer(KEY)
    emails = [user.email for user in booter_db.users]

    def run():
        return [pseudonymizer.email(e) for e in emails]

    pseudonyms = benchmark(run)
    assert len(set(pseudonyms)) == len(set(emails))
    assert not any(
        original.split("@")[0] in out
        for original, out in zip(emails, pseudonyms)
    )


def test_e11_ticket_scrubbing(benchmark, booter_db):
    scrubber = TextScrubber()
    texts = [t.text for t in booter_db.tickets] + [
        f"pay me at {u.email} or ping {u.last_login_ip}"
        for u in booter_db.users[:50]
    ]

    def run():
        return [scrubber.scrub(text) for text in texts]

    results = benchmark(run)
    planted = results[len(booter_db.tickets):]
    assert all(r.count("email") == 1 for r in planted)
    assert all(r.count("ipv4") == 1 for r in planted)


def test_e11_container_seal_open(benchmark, booter_db):
    container = SecureContainer("pipeline-passphrase")
    payload = repr(booter_db.to_records()).encode()

    def roundtrip():
        return container.open(container.seal(payload))

    recovered = benchmark(roundtrip)
    assert recovered == payload


def test_e11_paste_feed_triage(benchmark):
    from repro.datasets import DumpTriage, PasteFeedGenerator

    feed = PasteFeedGenerator(9).generate(
        pastes=400, dump_fraction=0.2
    )
    triage = DumpTriage()

    result = benchmark(triage.evaluate, feed)
    # Discovery-stage detection is high quality on both axes even
    # with hard negatives (mailing-list pastes) in the feed.
    assert result.precision > 0.9
    assert result.recall > 0.9
