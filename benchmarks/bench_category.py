"""E9 — per-category structure of the coding matrix.

The §4 narrative has a clear per-category signature, reproduced here:
password-dump papers all discuss safeguards and use the privacy
safeguard; classified-material papers discuss almost nothing (the
"authors prefer not to confront the question" finding); booter/forum
rows carry the heaviest legal exposure.
"""

from __future__ import annotations

from repro.analysis import CodingMatrix
from repro.corpus import Category


def test_e9_category_signatures(benchmark, corpus):
    matrix = CodingMatrix(corpus)
    subs = benchmark(matrix.by_category)

    passwords = subs[Category.PASSWORDS]
    assert passwords.frequencies(["safeguards:P"])["safeguards:P"] == 5
    assert (
        passwords.frequencies(["identify-harms"])["identify-harms"]
        == 5
    )

    classified = subs[Category.CLASSIFIED]
    ethics_discussion = classified.frequencies(
        ["identification-of-stakeholders", "identify-harms",
         "safeguards-discussed"]
    )
    # Classified-material work barely engages: no stakeholder or
    # safeguard discussion anywhere, minimal harm discussion.
    assert ethics_discussion["identification-of-stakeholders"] == 0
    assert ethics_discussion["safeguards-discussed"] == 0

    leaked = subs[Category.LEAKED_DATABASES]
    assert (
        leaked.frequencies(["ethics-section"])["ethics-section"] >= 5
    )


def test_e9_legal_exposure_by_category(benchmark, corpus):
    matrix = CodingMatrix(corpus)

    def exposure():
        result = {}
        for category, sub in matrix.by_category().items():
            table = sub.group_frequencies("legal")
            result[category] = sum(table.counts) / len(sub.entries)
        return result

    per_category = benchmark(exposure)
    # Classified material carries the broadest legal exposure per
    # paper; the Carna-dominated malware category the narrowest.
    assert per_category[Category.CLASSIFIED] == max(
        per_category.values()
    )
    assert per_category[Category.MALWARE] == min(
        per_category.values()
    )


def test_e9_cooccurrence_structure(benchmark, corpus):
    matrix = CodingMatrix(corpus)
    labels = ["justice", "public-interest", "ethics-section"]
    __, counts = benchmark(matrix.cooccurrence, labels)
    # Justice and public interest travel together in Table 1.
    justice_pi = counts[0][1]
    assert justice_pi >= 12
