"""E2–E8 — every quantitative claim in §5 of the paper.

Each benchmark recomputes a family of §5 statistics from the corpus
and asserts the exact values the paper reports:

* E2: REB counts (2 exempt, 2 approved, 24 not mentioned),
* E3: 12 of 28 papers have explicit ethics sections,
* E4: only 4 papers discuss controlled sharing,
* E5: privacy is the most frequent safeguard,
* E6: justification usage profile,
* E7: harm and benefit profiles (benefits outnumber harms),
* E8: the exemption critique (both exempt works used safeguards and
  identified harms; approvals were for the surveys).
"""

from __future__ import annotations

from repro.analysis import section5_statistics, verify_section5


def test_e2_reb_counts(benchmark, corpus):
    stats = benchmark(section5_statistics, corpus)
    assert stats.reb_exempt == 2
    assert stats.reb_approved == 2
    assert stats.reb_not_mentioned == 24
    assert stats.reb_not_applicable == 2


def test_e3_ethics_sections(benchmark, corpus):
    stats = benchmark(section5_statistics, corpus)
    assert stats.total_papers == 28
    assert stats.ethics_sections == 12


def test_e4_controlled_sharing(benchmark, corpus):
    stats = benchmark(section5_statistics, corpus)
    assert stats.controlled_sharing == 4


def test_e5_privacy_most_frequent(benchmark, corpus):
    stats = benchmark(section5_statistics, corpus)
    assert stats.most_common_safeguard == "P"
    assert stats.safeguard_counts == {"SS": 2, "P": 10, "CS": 4}


def test_e6_justification_profile(benchmark, corpus):
    stats = benchmark(section5_statistics, corpus)
    counts = stats.justification_counts
    # Public data is the most-used justification across the corpus;
    # every justification is used at least once.
    assert max(counts, key=counts.get) == "public-data"
    assert all(count > 0 for count in counts.values())


def test_e7_harm_benefit_profiles(benchmark, corpus):
    stats = benchmark(section5_statistics, corpus)
    # "researchers appear to be more reluctant to express the
    #  potential harms ... than their benefits"
    assert stats.benefits_mentions > stats.harms_mentions
    assert stats.most_common_harm == "SI"
    assert stats.most_common_benefit == "DM"
    assert stats.harm_counts["DA"] == 0  # never coded in Table 1


def test_e8_exemption_critique(benchmark, corpus):
    stats = benchmark(section5_statistics, corpus)
    assert set(stats.exempt_entries) == {
        "booters-karami-stress",
        "udp-ddos-thomas",
    }
    assert stats.exempt_used_safeguards
    assert stats.exempt_identified_harms
    assert stats.approved_also_did_surveys


def test_e2_e8_full_verification(benchmark, corpus):
    checks = benchmark(verify_section5, corpus)
    assert all(check.ok for check in checks)
    assert len(checks) >= 16


def test_e8_uncertainty_supports_no_trend_claim(benchmark, corpus):
    # §5.5: "We do not have enough information to show any trend ...
    # we would need a large representative sample." Quantified: the
    # Wilson interval on the headline proportion is wide and the
    # sample needed for a ±5% margin dwarfs n=28.
    from repro.analysis import (
        required_sample_size,
        section5_intervals,
    )

    estimates = benchmark(section5_intervals, corpus)
    ethics = next(
        e for e in estimates if e.name == "ethics sections"
    )
    assert ethics.successes == 12 and ethics.total == 28
    assert ethics.margin > 0.15
    assert required_sample_size(margin=0.05) > 10 * ethics.total
