"""E17 — service-kernel costs: batch throughput, result-cache speedup.

Two budgets from ``docs/api.md``:

* **The batch executor is not a bottleneck** — streaming a JSONL
  request file through :class:`~repro.ops.batch.BatchExecutor` is
  reported as requests/second at 1 and 4 workers. The numbers are
  informational (the operations themselves dominate); what the
  benchmark asserts is the kernel's core contract, that the 4-worker
  transcript is byte-identical to the serial one.
* **The content-addressed cache pays for itself** — a pure
  operation served from :class:`~repro.ops.cache.ResultCache` must
  be at least **5× faster** than recomputing it cold, for both the
  cheapest cacheable surface (``table1``) and the most expensive
  (``report``). A hit is a dict lookup keyed on the corpus digest,
  so the real ratios are orders of magnitude higher; 5× keeps the
  assertion robust on noisy single-core runners.

Writes the numbers to ``BENCH_ops.json`` at the repo root.
"""

from __future__ import annotations

import gc
import json
import os
import time
from pathlib import Path

from repro.ops import (
    BatchExecutor,
    ResultCache,
    RunContext,
    execute,
    load_requests,
)

RESULT_PATH = Path(__file__).parent.parent / "BENCH_ops.json"

BATCH_REQUESTS = 24
COLD_ROUNDS = 3
CACHED_ROUNDS = 200
MIN_CACHE_SPEEDUP = 5.0


def _timed(fn) -> tuple[object, float]:
    gc.collect()
    started = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - started


def _request_file(tmp_path: Path) -> Path:
    """A JSONL batch mixing the pure operation surfaces."""
    cycle = [
        {"op": "stats"},
        {"op": "table1", "args": {"format": "csv"}},
        {"op": "legend"},
        {"op": "intervals"},
    ]
    path = tmp_path / "requests.jsonl"
    path.write_text(
        "".join(
            json.dumps(cycle[index % len(cycle)]) + "\n"
            for index in range(BATCH_REQUESTS)
        ),
        encoding="utf-8",
    )
    return path


def _batch_rate(requests, workers: int) -> tuple[object, float]:
    executor = BatchExecutor(workers=workers)
    result, seconds = _timed(lambda: executor.run(requests))
    return result, len(requests) / seconds


def _cache_speedup(operation: str) -> dict:
    """Cold recompute vs cached lookup for one pure operation."""

    def run_cold() -> None:
        # A fresh context per round: empty cache, cold corpus memo.
        for _ in range(COLD_ROUNDS):
            execute(
                operation,
                context=RunContext(cache=ResultCache()),
            )

    _, cold_seconds = _timed(run_cold)
    cold_per_call = cold_seconds / COLD_ROUNDS

    warm_ctx = RunContext(cache=ResultCache())
    execute(operation, context=warm_ctx)  # populate the cache

    def run_cached() -> None:
        for _ in range(CACHED_ROUNDS):
            execute(operation, context=warm_ctx)

    _, cached_seconds = _timed(run_cached)
    cached_per_call = cached_seconds / CACHED_ROUNDS
    assert warm_ctx.cache.hits == CACHED_ROUNDS

    return {
        "cold_ms_per_call": round(cold_per_call * 1000, 3),
        "cached_ms_per_call": round(cached_per_call * 1000, 4),
        "speedup": round(cold_per_call / cached_per_call, 1),
    }


def test_e17_batch_throughput_and_cache_speedup(tmp_path):
    requests = load_requests(_request_file(tmp_path))

    serial_result, serial_rate = _batch_rate(requests, workers=1)
    parallel_result, parallel_rate = _batch_rate(
        requests, workers=4
    )
    assert parallel_result.text() == serial_result.text()

    table1 = _cache_speedup("table1")
    report = _cache_speedup("report")

    bench = {
        "cpu_count": os.cpu_count(),
        "batch": {
            "requests": BATCH_REQUESTS,
            "requests_per_second_workers_1": round(serial_rate, 1),
            "requests_per_second_workers_4": round(
                parallel_rate, 1
            ),
            "transcripts_identical": True,
        },
        "cache": {
            "table1": table1,
            "report": report,
            "min_speedup_asserted": MIN_CACHE_SPEEDUP,
        },
        "note": (
            "batch rates are informational — per-request work, "
            "result-cache warm-up and process-pool startup all mix "
            "into a 24-request file; the asserted contracts are the "
            "byte-identical transcript and the >=5x cache speedup."
        ),
    }
    RESULT_PATH.write_text(json.dumps(bench, indent=2) + "\n")

    assert table1["speedup"] >= MIN_CACHE_SPEEDUP, bench
    assert report["speedup"] >= MIN_CACHE_SPEEDUP, bench
