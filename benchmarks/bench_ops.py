"""E17 — service-kernel costs: warm-pool throughput, cache speedup.

Three budgets from ``docs/api.md`` and ``docs/performance.md``:

* **The warm pool fixes the cold-start inversion** — the seed
  executor ran a 24-request batch at 402 req/s with ``workers=4``
  against 2802 req/s serial, because pool startup and cold
  per-worker caches dominated. With the warm pool (pre-forked
  workers, shared coordinator cache, chunked submission) the
  benchmark asserts ``workers=4`` **sustained** throughput is at
  least the serial rate on a repeated-pure-op workload, and records
  the warm/cold ratio (a second batch on the same pool must show no
  cold-start penalty).
* **Latency is flat once warm** — p50/p99 per-request latency over
  repeated single-request batches on the warm pool, plus the
  serial-vs-warm-pool crossover point (the smallest request count at
  which the warm pool sustains at least the serial rate).
* **The content-addressed cache pays for itself** — a pure
  operation served from :class:`~repro.ops.cache.ResultCache` must
  be at least **5× faster** than recomputing it cold, for both the
  cheapest cacheable surface (``table1``) and the most expensive
  (``report``).

The transcript contract is asserted throughout: cold-pool, warm-pool
and all-cache-hit runs must all be byte-identical to the serial
transcript. Writes the numbers to ``BENCH_ops.json`` at the repo
root.
"""

from __future__ import annotations

import gc
import json
import os
import statistics
import time
from pathlib import Path

from repro.ops import (
    BatchExecutor,
    ResultCache,
    RunContext,
    execute,
    load_requests,
    shutdown_warm_pools,
    warm_pool,
)

RESULT_PATH = Path(__file__).parent.parent / "BENCH_ops.json"

BATCH_REQUESTS = 24
WORKERS = 4
SUSTAIN_ROUNDS = 5
LATENCY_ROUNDS = 200
CROSSOVER_SIZES = (1, 2, 4, 8, 24)
COLD_ROUNDS = 3
CACHED_ROUNDS = 200
MIN_CACHE_SPEEDUP = 5.0

#: The repeated-pure-op workload: four distinct pure operations,
#: cycled — the shape a mass-assessment service actually sees.
_CYCLE = (
    {"op": "stats"},
    {"op": "table1", "args": {"format": "csv"}},
    {"op": "legend"},
    {"op": "intervals"},
)


def _timed(fn) -> tuple[object, float]:
    gc.collect()
    started = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - started


def _request_file(tmp_path: Path, count: int) -> Path:
    path = tmp_path / f"requests-{count}.jsonl"
    path.write_text(
        "".join(
            json.dumps(_CYCLE[index % len(_CYCLE)]) + "\n"
            for index in range(count)
        ),
        encoding="utf-8",
    )
    return path


def _serial_rate(requests) -> float:
    """Median fresh-executor serial rate (the workers=1 baseline)."""
    rates = []
    for _ in range(SUSTAIN_ROUNDS):
        executor = BatchExecutor(workers=1)
        _, seconds = _timed(lambda: executor.run(requests))
        rates.append(len(requests) / seconds)
    return statistics.median(rates)


def _warm_executor() -> BatchExecutor:
    return BatchExecutor(workers=WORKERS, warm=True)


def _warm_rates(requests) -> tuple[float, float, object]:
    """(first-run rate on a cold pool, sustained rate, last result)."""
    executor = _warm_executor()
    result, first_seconds = _timed(lambda: executor.run(requests))
    rates = []
    for _ in range(SUSTAIN_ROUNDS):
        result, seconds = _timed(lambda: executor.run(requests))
        rates.append(len(requests) / seconds)
    return (
        len(requests) / first_seconds,
        statistics.median(rates),
        result,
    )


def _latency_percentiles(requests) -> dict:
    """p50/p99 per-request latency on the warm pool, single-request.

    Measures the steady-state service cost of one request — plan,
    coordinator-cache hit, response framing — after the pool and
    cache are warm.
    """
    executor = _warm_executor()
    executor.run(requests)  # ensure every cycle op is cached
    singles = [
        (request,) for request in requests[: len(_CYCLE)]
    ]
    samples = []
    for round_index in range(LATENCY_ROUNDS):
        batch = singles[round_index % len(singles)]
        _, seconds = _timed(lambda: executor.run(batch))
        samples.append(seconds * 1000)
    samples.sort()
    return {
        "p50_ms": round(samples[len(samples) // 2], 4),
        "p99_ms": round(samples[int(len(samples) * 0.99) - 1], 4),
        "samples": LATENCY_ROUNDS,
    }


def _crossover(tmp_path: Path) -> dict:
    """The smallest request count where the warm pool sustains >= serial."""
    sweep = {}
    crossover = None
    for count in CROSSOVER_SIZES:
        requests = load_requests(_request_file(tmp_path, count))
        serial = _serial_rate(requests)
        executor = _warm_executor()
        executor.run(requests)  # warm the pool + cache for this size
        rates = []
        for _ in range(SUSTAIN_ROUNDS):
            _, seconds = _timed(lambda: executor.run(requests))
            rates.append(len(requests) / seconds)
        warm = statistics.median(rates)
        sweep[str(count)] = {
            "serial_rps": round(serial, 1),
            "warm_pool_rps": round(warm, 1),
        }
        if crossover is None and warm >= serial:
            crossover = count
    return {"requests": crossover, "sweep": sweep}


def _cache_speedup(operation: str) -> dict:
    """Cold recompute vs cached lookup for one pure operation."""

    def run_cold() -> None:
        # A fresh context per round: empty cache, cold corpus memo.
        for _ in range(COLD_ROUNDS):
            execute(
                operation,
                context=RunContext(cache=ResultCache()),
            )

    _, cold_seconds = _timed(run_cold)
    cold_per_call = cold_seconds / COLD_ROUNDS

    warm_ctx = RunContext(cache=ResultCache())
    execute(operation, context=warm_ctx)  # populate the cache

    def run_cached() -> None:
        for _ in range(CACHED_ROUNDS):
            execute(operation, context=warm_ctx)

    _, cached_seconds = _timed(run_cached)
    cached_per_call = cached_seconds / CACHED_ROUNDS
    assert warm_ctx.cache.hits == CACHED_ROUNDS

    return {
        "cold_ms_per_call": round(cold_per_call * 1000, 3),
        "cached_ms_per_call": round(cached_per_call * 1000, 4),
        "speedup": round(cold_per_call / cached_per_call, 1),
    }


def test_e17_warm_pool_throughput_and_cache_speedup(tmp_path):
    shutdown_warm_pools()
    try:
        requests = load_requests(
            _request_file(tmp_path, BATCH_REQUESTS)
        )
        serial_result = BatchExecutor(workers=1).run(requests)
        serial_rate = _serial_rate(requests)

        # The seed-style cold path: build a pool, run once, tear it
        # down — the configuration that used to invert throughput.
        cold_executor = BatchExecutor(workers=WORKERS)
        cold_result, cold_seconds = _timed(
            lambda: cold_executor.run(requests)
        )
        cold_rate = len(requests) / cold_seconds
        assert cold_result.text() == serial_result.text()

        first_rate, sustained_rate, warm_result = _warm_rates(
            requests
        )
        assert warm_result.text() == serial_result.text()
        assert warm_result.summary["cache"]["workers"] == {
            "hits": 0,
            "misses": 0,
        }, "sustained runs must be served without pool traffic"

        latency = _latency_percentiles(requests)
        crossover = _crossover(tmp_path)

        table1 = _cache_speedup("table1")
        report = _cache_speedup("report")

        bench = {
            "cpu_count": os.cpu_count(),
            "batch": {
                "requests": BATCH_REQUESTS,
                "workers": WORKERS,
                "requests_per_second_workers_1": round(
                    serial_rate, 1
                ),
                "requests_per_second_workers_4_cold_pool": round(
                    cold_rate, 1
                ),
                "requests_per_second_workers_4_warm_first_run": (
                    round(first_rate, 1)
                ),
                "requests_per_second_workers_4_warm_sustained": (
                    round(sustained_rate, 1)
                ),
                "warm_over_cold": round(
                    sustained_rate / first_rate, 1
                ),
                "latency": latency,
                "crossover": crossover,
                "transcripts_identical": True,
            },
            "cache": {
                "table1": table1,
                "report": report,
                "min_speedup_asserted": MIN_CACHE_SPEEDUP,
            },
            "note": (
                "sustained warm-pool rates are repeated runs on one "
                "process-lifetime pool: the shared coordinator cache "
                "serves the repeated-pure-op workload without worker "
                "traffic, so workers=4 >= workers=1 is asserted even "
                "on a single-core runner. The first warm run still "
                "pays fork+warm-up once per process (warm_over_cold "
                "records the ratio). Asserted contracts: transcript "
                "byte-identity for every configuration, sustained "
                "warm >= serial, and the >=5x pure-op cache speedup."
            ),
        }
        RESULT_PATH.write_text(json.dumps(bench, indent=2) + "\n")

        assert sustained_rate >= serial_rate, bench
        assert table1["speedup"] >= MIN_CACHE_SPEEDUP, bench
        assert report["speedup"] >= MIN_CACHE_SPEEDUP, bench
    finally:
        shutdown_warm_pools()
