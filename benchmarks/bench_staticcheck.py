"""Staticcheck performance — cold, warm-cache and parallel lint.

The lint gate runs inside every tier-1 test invocation and inside
``repro-ethics verify``, so it has a latency budget: a full cold lint
of ``src/repro`` (single parse per file, all nine rules R1–R9
including the interprocedural project-graph pass, baseline check)
must stay under 2 seconds on this tree. The incremental cache is what
keeps the gate honest as the package grows: a warm lint re-hashes
file contents and serves findings without parsing, and the measured
contract (asserted here, recorded in ``BENCH_staticcheck.json``) is a
>= 5x speedup with byte-identical findings. Parallel cold lint is
recorded for reference — on a single-core container the process pool
cannot win, but the number documents the fan-out overhead.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.staticcheck import (
    LintEngine,
    default_registry,
    lint_repo,
    render_json,
    unsuppressed,
)

RESULT_PATH = Path(__file__).parent.parent / "BENCH_staticcheck.json"

#: The warm-cache contract asserted below and recorded in the JSON.
MIN_WARM_SPEEDUP = 5.0


def _lint(cache_path=None, workers=1):
    engine = LintEngine(default_registry())
    return engine.lint_package(
        cache_path=cache_path, workers=workers
    )


def test_cold_warm_parallel_lint(tmp_path):
    """Measure the three engine modes and write BENCH_staticcheck.json."""
    cache = tmp_path / "lint-cache.json"

    start = time.perf_counter()
    cold = _lint(cache_path=cache)
    cold_s = time.perf_counter() - start
    assert cache.exists()

    start = time.perf_counter()
    warm = _lint(cache_path=cache)
    warm_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = _lint(workers=4)
    parallel_s = time.perf_counter() - start

    assert unsuppressed(cold) == []
    assert (
        render_json(cold)
        == render_json(warm)
        == render_json(parallel)
    )
    speedup = cold_s / warm_s if warm_s else float("inf")
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm lint only {speedup:.1f}x faster than cold"
    )

    registry = default_registry()
    bench = {
        "cpu_count": os.cpu_count(),
        "rules": list(registry.rule_ids),
        "lint": {
            "cold_s": round(cold_s, 4),
            "warm_cache_s": round(warm_s, 4),
            "parallel_workers_4_s": round(parallel_s, 4),
            "warm_speedup": round(speedup, 1),
            "min_warm_speedup_asserted": MIN_WARM_SPEEDUP,
            "findings_byte_identical": True,
        },
        "note": (
            "warm lint re-hashes file contents and serves "
            "content-addressed findings without parsing; parallel "
            "timing is informational only — on a small tree (or a "
            "single-core container) process-pool startup dominates "
            "and the serial path wins."
        ),
    }
    RESULT_PATH.write_text(json.dumps(bench, indent=2) + "\n")


def test_full_package_lint(benchmark):
    # incremental=False: benchmark the real cold path, and never
    # touch the repo-level cache from a timing loop.
    findings = benchmark(lint_repo, incremental=False)
    assert unsuppressed(findings) == []


def test_full_package_cold_lint_under_two_seconds():
    start = time.perf_counter()
    lint_repo(incremental=False)
    elapsed = time.perf_counter() - start
    assert elapsed < 2.0, f"full-package lint took {elapsed:.2f}s"


def test_single_rule_lint(benchmark):
    # The cheapest configuration (determinism only) bounds the fixed
    # cost of the walk itself.
    findings = benchmark(lint_repo, ("R2",), incremental=False)
    assert unsuppressed(findings) == []
