"""Staticcheck performance — full-package lint wall time.

The lint gate runs inside every tier-1 test invocation and inside
``repro-ethics verify``, so it has a latency budget: a full lint of
``src/repro`` (single parse per file, all four rules, baseline check)
must stay under 2 seconds on the seed tree. Later PRs that add rules
or grow the package can watch this number.
"""

from __future__ import annotations

import time

from repro.staticcheck import lint_repo, unsuppressed


def test_full_package_lint(benchmark):
    findings = benchmark(lint_repo)
    assert unsuppressed(findings) == []


def test_full_package_lint_under_two_seconds():
    start = time.perf_counter()
    lint_repo()
    elapsed = time.perf_counter() - start
    assert elapsed < 2.0, f"full-package lint took {elapsed:.2f}s"


def test_single_rule_lint(benchmark):
    # The cheapest configuration (determinism only) bounds the fixed
    # cost of the walk itself.
    findings = benchmark(lint_repo, ("R2",))
    assert unsuppressed(findings) == []
