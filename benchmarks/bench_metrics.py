"""E12 — the survey-algorithm baselines on synthetic dumps.

Shape expectations (qualitative orderings the surveyed papers report):

* α-guesswork effective key length sits below Shannon entropy for the
  skewed, human-style distribution (Bonneau [13]);
* every trained guesser vastly out-cracks brute force within the same
  budget (Weir [121], Dürmuth [31], Ur [114]);
* cross-site direct reuse lands near the 43% Das et al. report [24];
* the offshore legislation natural experiment finds a significant
  post-law drop (Omartian [82]) and the leak event study reproduces
  the 0.7%-of-implicated-value loss basis (O'Donovan [79]).
"""

from __future__ import annotations

import pytest

from repro.datasets import (
    OffshoreLeakGenerator,
    PasswordDumpGenerator,
)
from repro.metrics import (
    BruteForceGuesser,
    DictionaryGuesser,
    MarkovGuesser,
    PCFGGuesser,
    alpha_guesswork_bits,
    analyze_reuse,
    cracking_curve,
    distribution,
    leak_event_study,
    legislation_impact,
    shannon_entropy,
)


@pytest.fixture(scope="module")
def train_passwords():
    return PasswordDumpGenerator(42).generate(users=3000).passwords()


@pytest.fixture(scope="module")
def target_passwords():
    return PasswordDumpGenerator(7).generate(users=1000).passwords()


def test_e12_alpha_guesswork_below_shannon(
    benchmark, train_passwords
):
    probs = distribution(train_passwords)

    def run():
        return {
            alpha: alpha_guesswork_bits(probs, alpha)
            for alpha in (0.1, 0.25, 0.5)
        }

    guesswork = benchmark(run)
    shannon = shannon_entropy(probs)
    for alpha, bits in guesswork.items():
        assert bits < shannon, (alpha, bits, shannon)
    # Deeper attacks need more effective bits.
    assert guesswork[0.1] <= guesswork[0.5] + 1e-9


def test_e12_dictionary_vs_bruteforce(
    benchmark, train_passwords, target_passwords
):
    budget = 2000

    def run():
        return cracking_curve(
            DictionaryGuesser(train_passwords),
            target_passwords,
            budget,
        )

    curve = benchmark(run)
    brute = cracking_curve(
        BruteForceGuesser(), target_passwords, budget
    )
    assert curve[-1][1] > brute[-1][1] + 0.3


def test_e12_markov_guesser(
    benchmark, train_passwords, target_passwords
):
    budget = 2000

    def run():
        return cracking_curve(
            MarkovGuesser(train_passwords), target_passwords, budget
        )

    curve = benchmark(run)
    brute = cracking_curve(
        BruteForceGuesser(), target_passwords, budget
    )
    assert curve[-1][1] > brute[-1][1] + 0.05


def test_e12_pcfg_guesser(
    benchmark, train_passwords, target_passwords
):
    budget = 2000

    def run():
        return cracking_curve(
            PCFGGuesser(train_passwords), target_passwords, budget
        )

    curve = benchmark(run)
    brute = cracking_curve(
        BruteForceGuesser(), target_passwords, budget
    )
    assert curve[-1][1] > brute[-1][1] + 0.3


def test_e12_cross_site_reuse(benchmark):
    generator = PasswordDumpGenerator(11)
    site_a, site_b = generator.generate_pair(
        users=4000, overlap=0.4, direct_reuse=0.43
    )
    profile = benchmark(analyze_reuse, site_a, site_b)
    assert profile.identical_rate == pytest.approx(0.43, abs=0.05)
    assert profile.any_reuse_rate > profile.identical_rate


def test_e12_offshore_natural_experiment(benchmark):
    leak = OffshoreLeakGenerator(4).generate()

    def run():
        return {
            year: legislation_impact(leak, year)
            for year in (2005, 2009, 2010, 2014)
        }

    impacts = benchmark(run)
    # Omartian's finding: the laws "do have a significant impact".
    significant = [
        impact for impact in impacts.values() if impact.significant
    ]
    assert len(significant) >= 3
    assert all(impact.reduction > 0 for impact in significant)


def test_e12_leak_event_study(benchmark):
    leak = OffshoreLeakGenerator(4).generate()
    result = benchmark(leak_event_study, leak, -0.007)
    assert result.loss_share_of_implicated == pytest.approx(0.007)
    assert result.value_lost_musd > 0


def test_e12_booter_funnel(benchmark):
    from repro.datasets import BooterDatabaseGenerator
    from repro.metrics import analyze_funnel

    database = BooterDatabaseGenerator(2).generate(
        users=300, days=90
    )
    funnel = benchmark(analyze_funnel, database)
    # The provision-study shape: registrations narrow to payers to
    # attackers, with heavy-tailed usage concentration.
    counts = [stage.count for stage in funnel.stages]
    assert counts == sorted(counts, reverse=True)
    assert counts[1] < counts[0]  # free registrations exist
    assert funnel.attacks_top10_share > 0.25
