"""E18 — report-surface costs: render throughput, cache speedup.

The ``report.render`` operation builds the full report model (Table 1
layout, every §5 statistic, claim verification, per-category
breakdowns) and serialises ~22 KB of HTML — the most expensive pure
operation in the catalog. This benchmark records:

* **cold renders/s** — fresh :class:`~repro.ops.context.RunContext`
  per call: corpus construction + model build + serialisation,
* **model-warm renders/s** — one context, cache disabled: the pure
  rendering cost once the corpus memo is hot,
* **cache-warm renders/s** — served from the content-addressed
  :class:`~repro.ops.cache.ResultCache`, asserted at least **5×**
  the cold rate (the same floor E17 asserts for ``table1``/
  ``report``),
* **byte-identity** — every render in every configuration must
  produce identical bytes, and the LaTeX renderer is swept alongside
  for scale.

Writes the numbers to ``BENCH_render.json`` at the repo root.
"""

from __future__ import annotations

import gc
import json
import os
import statistics
import time
from pathlib import Path

from repro.ops import ResultCache, RunContext, execute

RESULT_PATH = Path(__file__).parent.parent / "BENCH_render.json"

COLD_ROUNDS = 5
WARM_ROUNDS = 20
CACHED_ROUNDS = 200
MIN_CACHE_SPEEDUP = 5.0


def _timed(fn) -> tuple[object, float]:
    gc.collect()
    started = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - started


def _cold_seconds(operation: str, values: dict | None = None) -> float:
    """Median per-call cost with a fresh context every call."""
    samples = []
    for _ in range(COLD_ROUNDS):
        context = RunContext(cache=ResultCache())
        _, seconds = _timed(
            lambda: execute(operation, values, context=context)
        )
        samples.append(seconds)
    return statistics.median(samples)


def _warm_seconds(operation: str, values: dict | None = None) -> float:
    """Median per-call cost with a hot corpus memo, cache disabled."""
    context = RunContext(cache=None)
    execute(operation, values, context=context)  # warm the memo
    samples = []
    for _ in range(WARM_ROUNDS):
        _, seconds = _timed(
            lambda: execute(operation, values, context=context)
        )
        samples.append(seconds)
    return statistics.median(samples)


def _cached_seconds(
    operation: str, values: dict | None = None
) -> float:
    """Per-call cost when served from the result cache."""
    context = RunContext(cache=ResultCache())
    execute(operation, values, context=context)  # populate
    hits_before = context.cache.hits

    def run() -> None:
        for _ in range(CACHED_ROUNDS):
            execute(operation, values, context=context)

    _, seconds = _timed(run)
    assert context.cache.hits - hits_before == CACHED_ROUNDS
    return seconds / CACHED_ROUNDS


def _byte_identity(operation: str, values: dict | None = None) -> int:
    """Render across fresh/warm/cached contexts; all bytes equal."""
    fresh = execute(
        operation, values, context=RunContext(cache=ResultCache())
    ).text
    warm_ctx = RunContext(cache=None)
    execute(operation, values, context=warm_ctx)
    warm = execute(operation, values, context=warm_ctx).text
    cached_ctx = RunContext(cache=ResultCache())
    execute(operation, values, context=cached_ctx)
    cached = execute(operation, values, context=cached_ctx).text
    assert fresh == warm == cached
    return len(fresh.encode("utf-8"))


def _surface(operation: str, values: dict | None = None) -> dict:
    cold = _cold_seconds(operation, values)
    warm = _warm_seconds(operation, values)
    cached = _cached_seconds(operation, values)
    return {
        "output_bytes": _byte_identity(operation, values),
        "cold_renders_per_second": round(1.0 / cold, 1),
        "model_warm_renders_per_second": round(1.0 / warm, 1),
        "cache_warm_renders_per_second": round(1.0 / cached, 1),
        "cache_speedup_over_cold": round(cold / cached, 1),
        "byte_identical": True,
    }


def test_e18_render_throughput_and_cache_speedup():
    html = _surface("report.render")
    latex = _surface("table.latex", {"style": "booktabs"})

    bench = {
        "cpu_count": os.cpu_count(),
        "html_report": html,
        "latex_booktabs": latex,
        "min_cache_speedup_asserted": MIN_CACHE_SPEEDUP,
        "note": (
            "report.render builds the full report model (layout + "
            "§5 statistics + verification + per-category breakdowns) "
            "and serialises the self-contained HTML document; "
            "table.latex is the booktabs appendix table. Cold = "
            "fresh RunContext per call (corpus rebuild dominates), "
            "model-warm = hot corpus memo with the result cache "
            "disabled, cache-warm = content-addressed ResultCache "
            "hit. Asserted contracts: byte-identity across all three "
            "paths for both surfaces, and cache-warm >= 5x cold for "
            "the HTML report."
        ),
    }
    RESULT_PATH.write_text(json.dumps(bench, indent=2) + "\n")

    assert html["cache_speedup_over_cold"] >= MIN_CACHE_SPEEDUP, bench
    assert html["byte_identical"] and latex["byte_identical"]
