"""Shared fixtures for the benchmark harness.

Besides fixtures, the session-finish hook exports every
pytest-benchmark measurement to ``benchmarks/BENCH_timings.json`` so
CI (and ``docs/performance.md`` readers) get machine-readable
numbers without parsing the human table. The hook is a no-op when
pytest-benchmark is absent or disabled (e.g. ``-p no:benchmark``).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import table1_corpus

_TIMINGS_PATH = Path(__file__).parent / "BENCH_timings.json"


@pytest.fixture(scope="session")
def corpus():
    return table1_corpus()


def pytest_sessionfinish(session, exitstatus):
    """Emit machine-readable per-benchmark timings."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not getattr(
        bench_session, "benchmarks", None
    ):
        return
    timings = []
    for bench in bench_session.benchmarks:
        stats = getattr(bench, "stats", None)
        if stats is None:
            continue
        timings.append(
            {
                "name": bench.name,
                "group": bench.group,
                "rounds": stats.rounds,
                "mean_seconds": stats.mean,
                "stddev_seconds": stats.stddev,
                "min_seconds": stats.min,
                "max_seconds": stats.max,
            }
        )
    if timings:
        _TIMINGS_PATH.write_text(
            json.dumps(
                sorted(timings, key=lambda t: t["name"]), indent=2
            )
            + "\n"
        )
