"""Shared fixtures for the benchmark harness."""

from __future__ import annotations

import pytest

from repro import table1_corpus


@pytest.fixture(scope="session")
def corpus():
    return table1_corpus()
