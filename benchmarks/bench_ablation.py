"""Ablations of the design choices DESIGN.md calls out.

* Anonymization key separation: two keys must produce unrelated
  mappings (releases cannot be cross-linked), one key must be
  longitudinally joinable.
* Generalisation trade-off: coarsening raises k at a measured
  information-loss cost (the Aggarwal trade made explicit).
* REB capacity/policy ablation: the queue simulation across board ×
  policy, showing the latency cliff is caused by expertise, not by
  the broader trigger.
* Similarity threshold sensitivity: category structure in the coding
  survives across thresholds (the clustering isn't a threshold
  artifact).
* Breach-service contrast: the ethical service refuses exactly the
  queries the sale service monetises.
"""

from __future__ import annotations

from repro.analysis import SimilarityAnalysis
from repro.anonymization import IPAnonymizer, generalize
from repro.datasets import BooterDatabaseGenerator, PasswordDumpGenerator
from repro.reb import (
    TriggerPolicy,
    ictr_board,
    medical_style_board,
    simulate_reb_year,
)
from repro.safeguards import (
    AccessSaleService,
    BreachNotificationService,
    BreachRecord,
)


def test_ablation_key_separation(benchmark):
    db = BooterDatabaseGenerator(7).generate(users=100, days=30)
    targets = [a.target_ip for a in db.attacks][:500]
    key_a = b"A" * 32
    key_b = b"B" * 32

    def run():
        first = IPAnonymizer(key_a).anonymize_many(targets)
        second = IPAnonymizer(key_a).anonymize_many(targets)
        other = IPAnonymizer(key_b).anonymize_many(targets)
        return first, second, other

    first, second, other = benchmark(run)
    # Same key: joinable. Different key: unrelated.
    assert first == second
    differing = sum(1 for x, y in zip(first, other) if x != y)
    assert differing > 0.95 * len(targets)


def test_ablation_generalization_tradeoff(benchmark):
    dump = PasswordDumpGenerator(3).generate(users=400)
    rows = [
        {
            "domain": r.email.split("@")[1],
            "pw_len": len(r.password),
            "uid_bucket": r.user_id,
        }
        for r in dump.records
    ]
    quasi = ["domain", "pw_len", "uid_bucket"]

    def run():
        return generalize(
            rows, quasi, "uid_bucket", coarsen=lambda v: v // 100
        )

    result = benchmark(run)
    # Coarsening must reduce re-identification exposure and must
    # cost information (the Aggarwal trade).
    from repro.anonymization import uniqueness_rate

    before = uniqueness_rate(rows, quasi)
    after = uniqueness_rate(result.records, quasi)
    assert after < before
    assert result.k_after >= result.k_before
    assert result.information_loss > 0.5


def test_ablation_reb_board_policy_grid(benchmark):
    def run():
        grid = {}
        for board in (ictr_board(), medical_style_board()):
            for policy in TriggerPolicy:
                result = simulate_reb_year(
                    board, policy, seed=13, weeks=26
                )
                grid[(board.id, policy.value)] = result
        return grid

    grid = benchmark(run)
    fast_broad = grid[("ictr-reb", "risk-based")]
    fast_narrow = grid[("ictr-reb", "human-subjects")]
    slow_broad = grid[("medical-reb", "risk-based")]
    # Broader trigger reviews more at modest extra latency on a
    # capable board...
    assert fast_broad.reviewed > fast_narrow.reviewed
    # ...while the latency cliff comes from the board, not the
    # policy.
    assert (
        slow_broad.mean_total_days > 3 * fast_broad.mean_total_days
    )


def test_ablation_similarity_threshold(benchmark, corpus):
    analysis = SimilarityAnalysis(corpus)

    def run():
        return {
            threshold: analysis.clusters(threshold=threshold)
            for threshold in (0.5, 0.6, 0.7)
        }

    clusters = benchmark(run)
    # Higher thresholds never merge clusters (refinement property).
    sizes = {
        threshold: len(groups)
        for threshold, groups in clusters.items()
    }
    assert sizes[0.5] <= sizes[0.6] <= sizes[0.7]
    # Category separation is positive regardless of threshold.
    assert analysis.separation() > 0


def test_ablation_breach_service_contrast(benchmark):
    dump = PasswordDumpGenerator(5).generate(users=200)
    records = [
        BreachRecord(
            breach_name="site-2016",
            email=r.email,
            password=r.password,
        )
        for r in dump.records
    ]

    def run():
        ethical = BreachNotificationService(hmac_key=b"k" * 32)
        ethical.ingest(records)
        sale = AccessSaleService()
        sale.ingest(records)
        return ethical, sale

    ethical, sale = benchmark(run)
    victim = records[0]
    # The sale service answers; the ethical one refuses.
    sold = sale.lookup(victim.email, payment=2.0)
    assert sold and sold[0].password == victim.password
    refused = False
    try:
        ethical.breaches_for(victim.email)
    except Exception:
        refused = True
    assert refused
    # But the ethical service still helps the victim: anonymous
    # password checking works.
    assert ethical.check_password(victim.password)
