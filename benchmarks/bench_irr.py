"""E14 — inter-rater reliability machinery at corpus scale.

Validates and times the agreement statistics over the full 630-cell
coding: identical recodings must score 1.0 on every statistic, and a
controlled 10%-disagreement recoding must land in the
substantial-or-better kappa band while percent agreement stays near
0.9 (kappa < raw agreement, the usual chance correction).
"""

from __future__ import annotations

import random

import pytest

from repro.codebook import CellValue
from repro.coding import (
    Annotation,
    AnnotationSet,
    Coder,
    annotations_from_corpus,
    pairwise_kappa,
    set_agreement,
)


def _perturb(corpus, rate: float, seed: int) -> AnnotationSet:
    rng = random.Random(seed)
    original = annotations_from_corpus(corpus, Coder(id="tmp"))
    recoded = AnnotationSet(Coder(id=f"re-{seed}"), corpus.codebook)
    flip = {
        CellValue.DISCUSSED: CellValue.NOT_DISCUSSED,
        CellValue.NOT_DISCUSSED: CellValue.DISCUSSED,
    }
    for annotation in original:
        value = annotation.value
        if value in flip and rng.random() < rate:
            value = flip[value]
        recoded.add(
            Annotation(
                entry_id=annotation.entry_id,
                dimension_id=annotation.dimension_id,
                value=value,
                codes=annotation.codes,
            )
        )
    return recoded


def test_e14_perfect_agreement(benchmark, corpus):
    first = annotations_from_corpus(corpus, Coder(id="a"))
    second = annotations_from_corpus(corpus, Coder(id="b"))

    summary = benchmark(set_agreement, [first, second])
    assert summary["percent"] == 1.0
    assert summary["fleiss_kappa"] == pytest.approx(1.0)
    assert summary["krippendorff_alpha"] == pytest.approx(1.0)


def test_e14_perturbed_agreement(benchmark, corpus):
    paper = annotations_from_corpus(corpus, Coder(id="paper"))
    recoder = _perturb(corpus, rate=0.10, seed=3)

    summary = benchmark(set_agreement, [paper, recoder])
    assert 0.85 <= summary["percent"] <= 0.98
    # Chance correction: kappa/alpha below raw agreement.
    assert summary["fleiss_kappa"] < summary["percent"]
    assert summary["krippendorff_alpha"] < summary["percent"]
    assert summary["fleiss_kappa"] > 0.5


def test_e14_pairwise_kappa_scale(benchmark, corpus):
    paper = annotations_from_corpus(corpus, Coder(id="paper"))
    recoder = _perturb(corpus, rate=0.08, seed=5)

    kappas = benchmark(pairwise_kappa, paper, recoder)
    assert set(kappas) == {dim.id for dim in corpus.codebook}
    # Open-set dimensions were not perturbed: exact agreement.
    for dimension in ("safeguards", "harms", "benefits"):
        assert kappas[dimension] == pytest.approx(1.0)


def test_e14_three_coders(benchmark, corpus):
    coders = [
        annotations_from_corpus(corpus, Coder(id="paper")),
        _perturb(corpus, rate=0.05, seed=11),
        _perturb(corpus, rate=0.05, seed=12),
    ]
    summary = benchmark(set_agreement, coders)
    assert summary["percent"] > 0.85
    assert -1.0 <= summary["krippendorff_alpha"] <= 1.0
