"""E1 — regenerate Table 1 (the paper's only table).

Regenerates the full 30-row coding matrix in every output format,
asserting the structural facts of the printed table (row count,
category runs, footnotes, glyphs) while measuring rendering cost.
"""

from __future__ import annotations

import csv
import io

from repro.tables import build_table1_layout, render_table1


def test_e1_table1_text(benchmark, corpus):
    text = benchmark(render_table1, corpus, "text")
    data_lines = [
        line for line in text.splitlines() if line.count("|") > 5
    ]
    assert len(data_lines) == 31  # header + 30 rows
    for category in (
        "Malware & exploitation",
        "Password dumps",
        "Leaked databases",
        "Classified materials",
        "Financial data",
    ):
        assert category in text


def test_e1_table1_csv_cells(benchmark, corpus):
    text = benchmark(render_table1, corpus, "csv")
    rows = list(csv.reader(io.StringIO(text)))
    header, *data = rows
    assert len(data) == 30
    by_id = {row[1]: dict(zip(header, row)) for row in data}
    # Spot-check printed cells against the paper.
    att = by_id["att-ipad"]
    assert att["Ref"] == "[106]a"
    assert att["Harms"] == "I,PA,SI,RH"
    patreon = by_id["patreon"]
    assert patreon["No additional harm"] == "l"
    assert patreon["REB approval"] == "∅"
    exempt = by_id["udp-ddos-thomas"]
    assert exempt["REB approval"] == "E"
    weir = by_id["pcfg-weir"]
    assert weir["Safeguards"] == "SS,P,CS"


def test_e1_layout_build(benchmark, corpus):
    layout = benchmark(build_table1_layout, corpus)
    assert len(layout.rows) == 30
    assert [c for c, _ in layout.category_spans()] == [
        "Malware & exploitation",
        "Password dumps",
        "Leaked databases",
        "Classified materials",
        "Financial data",
    ]
    assert set(layout.footnotes) == set("abcde")


def test_e1_all_formats(benchmark, corpus):
    def render_all():
        return {
            fmt: render_table1(corpus, fmt)
            for fmt in ("text", "markdown", "latex", "csv", "html")
        }

    outputs = benchmark(render_all)
    assert all(outputs.values())
