"""E13 — REB trigger-policy ablation over the Table 1 corpus.

Shape expectations (the paper's §6 argument made quantitative):

* the risk-based trigger reviews a strict superset of what the
  human-subjects trigger reviews, and covers 100% of the studies with
  potential human harm;
* the two works that were actually exempted ([55], [110]) flip from
  exempt to reviewed under the risk-based trigger;
* an ICTR-capable board decides far faster than a legacy
  medical-model board on the same submissions.
"""

from __future__ import annotations

from repro.reb import (
    REBWorkflow,
    TriggerPolicy,
    ictr_board,
    medical_style_board,
    run_policy_experiment,
    submission_from_entry,
)


def test_e13_policy_coverage(benchmark, corpus):
    comparison = benchmark(run_policy_experiment, corpus)
    assert comparison.risk_based_dominates
    assert comparison.risk_based_coverage == 1.0
    assert comparison.human_subjects_coverage < 0.2
    assert {
        "booters-karami-stress",
        "udp-ddos-thomas",
    } <= set(comparison.flipped)


def test_e13_board_latency(benchmark, corpus):
    submissions = [submission_from_entry(e) for e in corpus]

    def review_both():
        outcomes = {}
        for board in (ictr_board(), medical_style_board()):
            workflow = REBWorkflow(board, TriggerPolicy.RISK_BASED)
            results = [
                o
                for o in workflow.review_all(submissions)
                if o.reviewed
            ]
            outcomes[board.id] = sum(
                o.days_taken for o in results
            ) / len(results)
        return outcomes

    mean_days = benchmark(review_both)
    # The legacy board is an order of magnitude slower on ICTR work.
    assert mean_days["medical-reb"] > 5 * mean_days["ictr-reb"]


def test_e13_review_decisions(benchmark, corpus):
    submissions = [submission_from_entry(e) for e in corpus]
    workflow = REBWorkflow(ictr_board(), TriggerPolicy.RISK_BASED)

    outcomes = benchmark(workflow.review_all, submissions)
    reviewed = [o for o in outcomes if o.reviewed]
    approved = [o for o in reviewed if o.approved]
    # A competent board approves most of this corpus — the paper's
    # point is that review should *happen*, not that it should block.
    assert len(approved) >= 0.7 * len(reviewed)
