"""E10 — validate the legal engine against Table 1, and measure the
full assessment pipeline.

The legal bullets of every Table 1 row must re-derive from the
first-principles rules engine applied to the per-entry data profiles;
the second benchmark runs a complete project assessment (legal +
Menlo + grid + justifications) end to end.
"""

from __future__ import annotations

from repro.assessment import (
    PlannedSafeguards,
    ResearchProject,
    assess_project,
    validate_legal_reconstruction,
)
from repro.corpus import DataOrigin
from repro.ethics import (
    BenefitInstance,
    HarmInstance,
    JustificationFacts,
)
from repro.legal import DataProfile, JurisdictionSet


def test_e10_legal_reconstruction(benchmark, corpus):
    checks = benchmark(validate_legal_reconstruction, corpus)
    assert len(checks) == 30
    failures = [check.describe() for check in checks if not check.ok]
    assert not failures, failures


def _project() -> ResearchProject:
    return ResearchProject(
        title="Booter economics study",
        research_question="How much do booters earn?",
        data_description="A leaked booter database.",
        profile=DataProfile(
            origin=DataOrigin.UNAUTHORIZED_LEAK,
            contains_email_addresses=True,
            contains_ip_addresses=True,
            copyrighted_material=True,
            publicly_available=True,
        ),
        harms=(
            HarmInstance(
                description="customer re-exposure",
                kind="SI",
                stakeholder_id="data-subjects",
                likelihood=0.5,
                severity=0.5,
            ),
        ),
        benefits=(
            BenefitInstance(
                description="unique ground truth",
                kind="U",
                beneficiary="society",
                magnitude=0.8,
            ),
        ),
        justification_facts=JustificationFacts(
            data_public=True,
            no_alternative_source=True,
            public_interest_case=True,
            secure_handling=True,
        ),
        safeguards=PlannedSafeguards(
            secure_storage=True,
            privacy_preserved=True,
            controlled_sharing=True,
        ),
        jurisdictions=JurisdictionSet.from_codes(["UK", "US", "DE"]),
        reb_approved=True,
        has_ethics_section=True,
    )


def test_e10_full_assessment_pipeline(benchmark):
    project = _project()
    assessment = benchmark(assess_project, project)
    assert assessment.verdict in (
        "proceed",
        "proceed-with-safeguards",
    )
    assert "computer-misuse" in assessment.applicable_legal_issues
    assert "data-privacy" in assessment.applicable_legal_issues
    assert assessment.acceptable_justifications
