"""E19 — policy-pack economics: mass assessment and compiled tables.

Two budgets from ``docs/policy.md`` and ``docs/performance.md``:

* **Compiled decision tables beat the reference interpreter ≥5x** —
  the pack compiler interns facts to bit positions, lowers rule
  conditions to integer masks and reuses resolved finding blocks
  per distinct fact vector; the naive
  :class:`~repro.policy.interpreter.PolicyInterpreter` re-derives
  everything per call. The benchmark measures both engines on the
  same steady-state legal-report workload (Table 1-shaped synthetic
  profiles, repeated rounds) and asserts the floor.
* **Mass assessment scales through the batch executor** — 10 000
  seeded synthetic research projects assessed via ``policy.assess``
  requests, serial vs the warm ``workers=4`` pool, with the
  transcript byte-identity contract asserted between them.

Plus the hot-swap demonstration: the same warm executor, the same
request bytes, a pack file edited in place between runs — the second
run must see the new pack (changed digest, changed verdict) without
a restart or cache flush, because the pack content digest is part of
every pack-scoped cache key.

Writes the numbers to ``BENCH_policy.json`` at the repo root.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

from repro.datasets import ResearchProjectGenerator
from repro.ops import (
    BatchExecutor,
    load_requests,
    shutdown_warm_pools,
)
from repro.policy import (
    DEFAULT_PACK,
    PRECAUTIONARY_PACK,
    CompiledPolicy,
    PolicyInterpreter,
    PolicyPack,
)

RESULT_PATH = Path(__file__).parent.parent / "BENCH_policy.json"

PROJECTS = 10_000
WORKERS = 4
PROFILE_SAMPLE = 200
ENGINE_ROUNDS = 5
MIN_COMPILED_SPEEDUP = 5.0
#: A seed whose verdict differs between the bundled packs (the
#: precautionary pack escalates any applicable legal exposure).
SWAP_SEED = 3


def _timed(fn) -> tuple[object, float]:
    gc.collect()
    started = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - started


def _request_file(tmp_path: Path, count: int, pack=None) -> Path:
    path = tmp_path / f"assess-{count}.jsonl"
    lines = []
    for seed in range(count):
        args: dict = {"seed": seed}
        if pack is not None:
            args["pack"] = str(pack)
        lines.append(
            json.dumps({"op": "policy.assess", "args": args})
        )
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def _engine_rate(policy, projects) -> float:
    """Steady-state legal reports/s over the sampled workload."""
    for project in projects:  # populate interned-vector tables
        policy.legal_report(
            project.profile,
            project.jurisdictions,
            reb_approved=project.reb_approved,
        )

    def run() -> None:
        for _ in range(ENGINE_ROUNDS):
            for project in projects:
                policy.legal_report(
                    project.profile,
                    project.jurisdictions,
                    reb_approved=project.reb_approved,
                )

    _, seconds = _timed(run)
    return ENGINE_ROUNDS * len(projects) / seconds


def _hot_swap_demo(tmp_path: Path) -> dict:
    """Edit a pack file under a live warm executor; no restart."""
    pack_path = tmp_path / "live-pack.json"
    pack_path.write_text(
        json.dumps(DEFAULT_PACK), encoding="utf-8"
    )
    requests = load_requests(
        _request_file(tmp_path, SWAP_SEED + 1, pack=pack_path)
    )
    executor = BatchExecutor(workers=WORKERS, warm=True)
    before = executor.run(requests)
    # Swap the pack in place: same path, same executor, same pool.
    pack_path.write_text(
        json.dumps(PRECAUTIONARY_PACK), encoding="utf-8"
    )
    after = executor.run(requests)

    def verdict(result, seed: int) -> tuple[str, str]:
        line = json.loads(result.text().splitlines()[seed])
        payload = line["payload"]
        return (
            payload["verdict"],
            payload["pack"]["digest"],
        )

    verdict_before, digest_before = verdict(before, SWAP_SEED)
    verdict_after, digest_after = verdict(after, SWAP_SEED)
    assert digest_before != digest_after, (
        "the edited pack file must change the pack digest"
    )
    assert verdict_before != verdict_after, (
        f"seed {SWAP_SEED} must change verdict under the "
        f"precautionary pack"
    )
    return {
        "seed": SWAP_SEED,
        "digest_before": digest_before,
        "digest_after": digest_after,
        "verdict_before": verdict_before,
        "verdict_after": verdict_after,
        "restart_required": False,
    }


def test_e19_policy_pack_benchmark(tmp_path):
    shutdown_warm_pools()
    try:
        # -- compiled vs interpreted decision tables -----------------
        projects = ResearchProjectGenerator(0).generate(
            PROFILE_SAMPLE
        )
        compiled = CompiledPolicy(
            PolicyPack.from_data(DEFAULT_PACK)
        )
        interpreted = PolicyInterpreter(
            PolicyPack.from_data(DEFAULT_PACK)
        )
        compiled_rate = _engine_rate(compiled, projects)
        interpreted_rate = _engine_rate(interpreted, projects)
        speedup = compiled_rate / interpreted_rate
        assert speedup >= MIN_COMPILED_SPEEDUP, (
            f"compiled tables only {speedup:.1f}x over the "
            f"interpreter (floor {MIN_COMPILED_SPEEDUP}x)"
        )

        # -- mass assessment through the batch executor --------------
        requests = load_requests(
            _request_file(tmp_path, PROJECTS)
        )
        serial_result, serial_seconds = _timed(
            lambda: BatchExecutor(workers=1).run(requests)
        )
        warm_executor = BatchExecutor(workers=WORKERS, warm=True)
        warm_result, warm_seconds = _timed(
            lambda: warm_executor.run(requests)
        )
        assert warm_result.text() == serial_result.text(), (
            "worker-count must not change transcript bytes"
        )

        hot_swap = _hot_swap_demo(tmp_path)

        bench = {
            "engines": {
                "workload": (
                    f"{PROFILE_SAMPLE} synthetic profiles x "
                    f"{ENGINE_ROUNDS} rounds, steady-state"
                ),
                "compiled_reports_per_second": round(
                    compiled_rate, 1
                ),
                "interpreted_reports_per_second": round(
                    interpreted_rate, 1
                ),
                "speedup": round(speedup, 1),
                "min_speedup_asserted": MIN_COMPILED_SPEEDUP,
            },
            "mass_assessment": {
                "projects": PROJECTS,
                "assessments_per_second_workers_1": round(
                    PROJECTS / serial_seconds, 1
                ),
                "assessments_per_second_workers_4_warm": round(
                    PROJECTS / warm_seconds, 1
                ),
                "transcripts_identical": True,
            },
            "hot_swap": hot_swap,
            "note": (
                "policy.assess resolves seed -> synthetic project "
                "-> full legal + Menlo + verdict fold under the "
                "requested pack; pack digests key the result "
                "cache, so editing a pack file invalidates without "
                "restart"
            ),
        }
        RESULT_PATH.write_text(
            json.dumps(bench, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    finally:
        shutdown_warm_pools()
