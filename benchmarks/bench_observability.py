"""E16 — telemetry egress costs: exporters, profiler, flight recorder.

Four budgets from ``docs/observability.md`` /
``docs/performance.md``:

* **Exporters are not a bottleneck** — rendering a realistic registry
  snapshot (counters + gauges + bucketed histograms) as Prometheus
  text and OTLP-style JSON must each clear 200 renders/second, i.e.
  scraping at 1 Hz costs well under 1% of a core.
* **The profiler obeys the master switch** — with the observer
  disabled, :meth:`~repro.observability.profiler.SamplingProfiler.
  start` refuses to spin up the sampler thread, so a ``with
  SamplingProfiler():`` block around the workload must cost the same
  as no profiler at all (asserted with a generous 1.35× tolerance
  for single-core scheduling noise), and must capture zero samples.
  Enabled, the sampler thread runs concurrently: its overhead on the
  workload is reported (not asserted — it is scheduling-dependent)
  along with the samples it captured.
* **The flight recorder rides along for free** — a serial, cache-
  disabled batch run under a flight-only observer must cost at most
  5% over the same run unobserved (min-of-trials ratio: the ring
  tap is a bounded-deque append per audit event).
* **SLO evaluation is scrape-friendly** — judging a multi-objective
  spec against a couple of hundred windows must clear 100
  evaluations/second.

Writes the numbers to ``BENCH_observability.json`` at the repo root
(each test merges its own section, so running one test never drops
the other's numbers).
"""

from __future__ import annotations

import gc
import json
import os
import time
from pathlib import Path

from repro.observability import (
    FlightRecorder,
    MetricsRegistry,
    Observer,
    RequestSample,
    SamplingProfiler,
    SloSpec,
    Tracer,
    WindowSeries,
    evaluate_slo,
    observed,
    render_otlp,
    render_prometheus,
)

RESULT_PATH = Path(__file__).parent.parent / "BENCH_observability.json"

EXPORT_ROUNDS = 300
WORKLOAD_ROUNDS = 40
MIN_RENDERS_PER_SECOND = 200.0
DISABLED_OVERHEAD_TOLERANCE = 1.35
FLIGHT_TRIALS = 5
FLIGHT_BATCH_REQUESTS = 30
FLIGHT_OVERHEAD_TOLERANCE = 1.05
SLO_ROUNDS = 200
MIN_SLO_EVALS_PER_SECOND = 100.0


def _merge_report(section: str, body: dict) -> dict:
    """Update one section of the shared benchmark JSON."""
    report: dict = {}
    if RESULT_PATH.exists():
        report = json.loads(RESULT_PATH.read_text(encoding="utf-8"))
    report.pop("note", None)  # pre-section-merge layout leftover
    report[section] = body
    report["cpu_count"] = os.cpu_count()
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def _demo_snapshot() -> dict:
    """A registry shaped like a real pipeline run's."""
    registry = MetricsRegistry()
    for index in range(20):
        registry.counter(f"pipeline.stage_{index}.records").inc(
            1000 + index
        )
    for index in range(10):
        registry.gauge(f"audit.chain.anchor_{index}").set(index / 7)
    for index in range(10):
        histogram = registry.histogram(f"span.stage_{index}.seconds")
        for sample in range(50):
            histogram.observe((sample + 1) * 10.0 ** (index % 6 - 4))
    return registry.snapshot()


def _workload() -> int:
    """A pure-Python busy loop the profiler can sample."""
    total = 0
    for value in range(120_000):
        total += value * value % 2_147_483_647
    return total


def _timed(fn) -> tuple[object, float]:
    gc.collect()
    started = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - started


def test_e16_exporter_throughput_and_profiler_overhead():
    snapshot = _demo_snapshot()

    def render_many(renderer) -> int:
        emitted = 0
        for _ in range(EXPORT_ROUNDS):
            emitted += len(renderer(snapshot))
        return emitted

    prom_bytes, prom_seconds = _timed(
        lambda: render_many(render_prometheus)
    )
    otlp_bytes, otlp_seconds = _timed(
        lambda: render_many(lambda s: render_otlp(s, indent=None))
    )
    prom_rate = EXPORT_ROUNDS / prom_seconds
    otlp_rate = EXPORT_ROUNDS / otlp_seconds

    # Profiler: plain workload, disabled profiler, enabled profiler.
    def run_workload() -> int:
        checksum = 0
        for _ in range(WORKLOAD_ROUNDS):
            checksum ^= _workload()
        return checksum

    # Warm-up evens out allocator/interpreter state before timing.
    run_workload()
    plain_checksum, plain_seconds = _timed(run_workload)

    disabled_profiler = SamplingProfiler(interval=0.001)
    with disabled_profiler:
        disabled_checksum, disabled_seconds = _timed(run_workload)
    assert not disabled_profiler.running
    assert disabled_profiler.sample_count == 0
    assert disabled_checksum == plain_checksum

    registry = MetricsRegistry()
    observer = Observer(metrics=registry, tracer=Tracer(registry))
    enabled_profiler = SamplingProfiler(interval=0.001)
    with observed(observer), enabled_profiler:
        enabled_checksum, enabled_seconds = _timed(run_workload)
    assert enabled_checksum == plain_checksum
    assert enabled_profiler.sample_count > 0

    disabled_overhead = disabled_seconds / plain_seconds
    enabled_overhead = enabled_seconds / plain_seconds

    _merge_report(
        "exporters",
        {
            "snapshot": {
                "counters": len(snapshot["counters"]),
                "gauges": len(snapshot["gauges"]),
                "histograms": len(snapshot["histograms"]),
            },
            "rounds": EXPORT_ROUNDS,
            "prometheus": {
                "renders_per_second": round(prom_rate, 1),
                "bytes_per_render": prom_bytes // EXPORT_ROUNDS,
            },
            "otlp_json": {
                "renders_per_second": round(otlp_rate, 1),
                "bytes_per_render": otlp_bytes // EXPORT_ROUNDS,
            },
        },
    )
    report = _merge_report(
        "profiler",
        {
            "interval_seconds": 0.001,
            "workload_seconds_plain": round(plain_seconds, 4),
            "workload_seconds_profiler_disabled": round(
                disabled_seconds, 4
            ),
            "workload_seconds_profiler_enabled": round(
                enabled_seconds, 4
            ),
            "disabled_overhead_ratio": round(disabled_overhead, 3),
            "enabled_overhead_ratio": round(enabled_overhead, 3),
            "enabled_samples": enabled_profiler.sample_count,
            "note": (
                "disabled_overhead_ratio compares a workload "
                "wrapped in a SamplingProfiler context under a "
                "disabled observer against the bare workload; the "
                "profiler refuses to start its sampler thread, so "
                "the ratio is pure noise. enabled_overhead_ratio "
                "is reported, not asserted — it depends on how the "
                "host schedules the sampler thread."
            ),
        },
    )

    assert prom_rate >= MIN_RENDERS_PER_SECOND, report
    assert otlp_rate >= MIN_RENDERS_PER_SECOND, report
    assert disabled_overhead <= DISABLED_OVERHEAD_TOLERANCE, report


def test_e16_flight_recorder_overhead_and_slo_throughput():
    from repro.ops.batch import BatchExecutor, BatchRequest

    # The heavier catalog operations: per-request work must dominate
    # the constant ring-tap cost for the ratio to measure the tap.
    ops = (
        ("stats", {}),
        ("legend", {}),
        ("table1", {"format": "csv"}),
    )
    requests = tuple(
        BatchRequest(
            index=index,
            op=ops[index % len(ops)][0],
            args=ops[index % len(ops)][1],
        )
        for index in range(FLIGHT_BATCH_REQUESTS)
    )
    executor = BatchExecutor(workers=1, use_cache=False)

    def run_plain() -> int:
        result = executor.run(requests)
        return result.summary["ok"]

    def run_with_flight() -> int:
        recorder = FlightRecorder(capacity=256)
        with observed(Observer(flight=recorder)):
            result = executor.run(requests)
        # Every request bracket plus the batch bracket and the
        # metric deltas landed in the ring — the tap really ran.
        assert len(recorder) > 2 * FLIGHT_BATCH_REQUESTS
        return result.summary["ok"]

    run_plain()  # warm the per-process operation/registry memos
    plain_seconds = min(
        _timed(run_plain)[1] for _ in range(FLIGHT_TRIALS)
    )
    flight_seconds = min(
        _timed(run_with_flight)[1] for _ in range(FLIGHT_TRIALS)
    )
    flight_overhead = flight_seconds / plain_seconds

    # SLO evaluation throughput over a realistic windowed series.
    series = WindowSeries(window_size=50)
    series.observe_many(
        RequestSample(
            ok=index % 17 != 0,
            latency=(index % 40 + 1) / 2000,
            queue_depth=index % 5,
            busy_workers=1 + index % 4,
            workers=4,
            cache="hit" if index % 3 else "miss",
        )
        for index in range(10_000)
    )
    spec = SloSpec.from_dict(
        {
            "name": "bench",
            "window": 50,
            "objectives": [
                {
                    "id": "errors",
                    "metric": "error_rate",
                    "threshold": 0.1,
                },
                {
                    "id": "p99",
                    "metric": "latency_p99_seconds",
                    "threshold": 0.1,
                },
                {
                    "id": "burn",
                    "metric": "error_budget_burn",
                    "threshold": 1.0,
                    "budget": 0.1,
                    "windows": 6,
                },
                {
                    "id": "cache",
                    "metric": "cache_hit_rate",
                    "threshold": 0.5,
                    "comparison": ">=",
                },
            ],
        }
    )

    def evaluate_many() -> int:
        judged = 0
        for _ in range(SLO_ROUNDS):
            judged += len(evaluate_slo(spec, series).results)
        return judged

    evaluate_many()  # warm-up
    _, slo_seconds = _timed(evaluate_many)
    slo_rate = SLO_ROUNDS / slo_seconds

    report = _merge_report(
        "flight_and_slo",
        {
            "flight": {
                "batch_requests": FLIGHT_BATCH_REQUESTS,
                "trials": FLIGHT_TRIALS,
                "batch_seconds_plain": round(plain_seconds, 4),
                "batch_seconds_with_flight": round(
                    flight_seconds, 4
                ),
                "overhead_ratio": round(flight_overhead, 3),
                "tolerance": FLIGHT_OVERHEAD_TOLERANCE,
            },
            "slo": {
                "windows": len(series.windows()),
                "objectives": len(spec.objectives),
                "rounds": SLO_ROUNDS,
                "evaluations_per_second": round(slo_rate, 1),
            },
            "note": (
                "overhead_ratio is min-of-trials over a serial, "
                "cache-disabled batch run: the flight-only "
                "observer adds one bounded-deque append per audit "
                "event, so the ratio must stay within 5% of the "
                "unobserved run."
            ),
        },
    )

    assert flight_overhead <= FLIGHT_OVERHEAD_TOLERANCE, report
    assert slo_rate >= MIN_SLO_EVALS_PER_SECOND, report
