"""E16 — telemetry egress costs: exporter throughput, profiler overhead.

Two budgets from ``docs/observability.md``:

* **Exporters are not a bottleneck** — rendering a realistic registry
  snapshot (counters + gauges + bucketed histograms) as Prometheus
  text and OTLP-style JSON must each clear 200 renders/second, i.e.
  scraping at 1 Hz costs well under 1% of a core.
* **The profiler obeys the master switch** — with the observer
  disabled, :meth:`~repro.observability.profiler.SamplingProfiler.
  start` refuses to spin up the sampler thread, so a ``with
  SamplingProfiler():`` block around the workload must cost the same
  as no profiler at all (asserted with a generous 1.35× tolerance
  for single-core scheduling noise), and must capture zero samples.
  Enabled, the sampler thread runs concurrently: its overhead on the
  workload is reported (not asserted — it is scheduling-dependent)
  along with the samples it captured.

Writes the numbers to ``BENCH_observability.json`` at the repo root.
"""

from __future__ import annotations

import gc
import json
import os
import time
from pathlib import Path

from repro.observability import (
    MetricsRegistry,
    Observer,
    SamplingProfiler,
    Tracer,
    observed,
    render_otlp,
    render_prometheus,
)

RESULT_PATH = Path(__file__).parent.parent / "BENCH_observability.json"

EXPORT_ROUNDS = 300
WORKLOAD_ROUNDS = 40
MIN_RENDERS_PER_SECOND = 200.0
DISABLED_OVERHEAD_TOLERANCE = 1.35


def _demo_snapshot() -> dict:
    """A registry shaped like a real pipeline run's."""
    registry = MetricsRegistry()
    for index in range(20):
        registry.counter(f"pipeline.stage_{index}.records").inc(
            1000 + index
        )
    for index in range(10):
        registry.gauge(f"audit.chain.anchor_{index}").set(index / 7)
    for index in range(10):
        histogram = registry.histogram(f"span.stage_{index}.seconds")
        for sample in range(50):
            histogram.observe((sample + 1) * 10.0 ** (index % 6 - 4))
    return registry.snapshot()


def _workload() -> int:
    """A pure-Python busy loop the profiler can sample."""
    total = 0
    for value in range(120_000):
        total += value * value % 2_147_483_647
    return total


def _timed(fn) -> tuple[object, float]:
    gc.collect()
    started = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - started


def test_e16_exporter_throughput_and_profiler_overhead():
    snapshot = _demo_snapshot()

    def render_many(renderer) -> int:
        emitted = 0
        for _ in range(EXPORT_ROUNDS):
            emitted += len(renderer(snapshot))
        return emitted

    prom_bytes, prom_seconds = _timed(
        lambda: render_many(render_prometheus)
    )
    otlp_bytes, otlp_seconds = _timed(
        lambda: render_many(lambda s: render_otlp(s, indent=None))
    )
    prom_rate = EXPORT_ROUNDS / prom_seconds
    otlp_rate = EXPORT_ROUNDS / otlp_seconds

    # Profiler: plain workload, disabled profiler, enabled profiler.
    def run_workload() -> int:
        checksum = 0
        for _ in range(WORKLOAD_ROUNDS):
            checksum ^= _workload()
        return checksum

    # Warm-up evens out allocator/interpreter state before timing.
    run_workload()
    plain_checksum, plain_seconds = _timed(run_workload)

    disabled_profiler = SamplingProfiler(interval=0.001)
    with disabled_profiler:
        disabled_checksum, disabled_seconds = _timed(run_workload)
    assert not disabled_profiler.running
    assert disabled_profiler.sample_count == 0
    assert disabled_checksum == plain_checksum

    registry = MetricsRegistry()
    observer = Observer(metrics=registry, tracer=Tracer(registry))
    enabled_profiler = SamplingProfiler(interval=0.001)
    with observed(observer), enabled_profiler:
        enabled_checksum, enabled_seconds = _timed(run_workload)
    assert enabled_checksum == plain_checksum
    assert enabled_profiler.sample_count > 0

    disabled_overhead = disabled_seconds / plain_seconds
    enabled_overhead = enabled_seconds / plain_seconds

    report = {
        "cpu_count": os.cpu_count(),
        "exporters": {
            "snapshot": {
                "counters": len(snapshot["counters"]),
                "gauges": len(snapshot["gauges"]),
                "histograms": len(snapshot["histograms"]),
            },
            "rounds": EXPORT_ROUNDS,
            "prometheus": {
                "renders_per_second": round(prom_rate, 1),
                "bytes_per_render": prom_bytes // EXPORT_ROUNDS,
            },
            "otlp_json": {
                "renders_per_second": round(otlp_rate, 1),
                "bytes_per_render": otlp_bytes // EXPORT_ROUNDS,
            },
        },
        "profiler": {
            "interval_seconds": 0.001,
            "workload_seconds_plain": round(plain_seconds, 4),
            "workload_seconds_profiler_disabled": round(
                disabled_seconds, 4
            ),
            "workload_seconds_profiler_enabled": round(
                enabled_seconds, 4
            ),
            "disabled_overhead_ratio": round(disabled_overhead, 3),
            "enabled_overhead_ratio": round(enabled_overhead, 3),
            "enabled_samples": enabled_profiler.sample_count,
        },
        "note": (
            "disabled_overhead_ratio compares a workload wrapped in "
            "a SamplingProfiler context under a disabled observer "
            "against the bare workload; the profiler refuses to "
            "start its sampler thread, so the ratio is pure noise. "
            "enabled_overhead_ratio is reported, not asserted — it "
            "depends on how the host schedules the sampler thread."
        ),
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    assert prom_rate >= MIN_RENDERS_PER_SECOND, report
    assert otlp_rate >= MIN_RENDERS_PER_SECOND, report
    assert disabled_overhead <= DISABLED_OVERHEAD_TOLERANCE, report
