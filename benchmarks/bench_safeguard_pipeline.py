"""E12 — safeguard pipeline throughput: baseline vs serial vs parallel.

Runs the full safeguard stack (IP anonymization → pseudonymisation →
text scrubbing → sealing) over a ≥50k-record synthetic booter dump
three ways:

* **baseline_serial** — a faithful replica of the pre-pipeline
  implementations, applied record-at-a-time: per-bit HMAC-SHA256 IP
  anonymization with an unbounded dict cache, a fresh HMAC key
  schedule per pseudonym, the five-sequential-``finditer`` scrubber,
  and a secure container whose keystream is HMAC-SHA256 with a
  per-byte Python XOR loop;
* **pipeline_serial** — :class:`repro.pipeline.SafeguardPipeline`
  with ``workers=1`` (keyed-BLAKE2s PRF + bounded LRU + sorted batch
  anonymization, single-alternation scrubber, BLAKE2b keystream with
  whole-integer XOR);
* **pipeline_workers4** — the same pipeline with ``workers=4``.

Asserts the 4-worker pipeline clears **3×** the baseline throughput
and that its output is **byte-identical** to the serial pipeline,
then writes the numbers to ``BENCH_pipeline.json`` at the repo root
(see ``docs/performance.md`` for how to read it).

The baseline replica exists so the speedup is honest on any machine:
on a single-core host the parallel win is ~0 and the entire margin
must come from the hot-path optimizations; on a multi-core host the
worker pool stacks on top.
"""

from __future__ import annotations

import gc
import hashlib
import hmac
import ipaddress
import json
import os
import struct
import time
from pathlib import Path

import pytest

from repro.anonymization.scrub import (
    _CARD,
    _EMAIL,
    _IPV4,
    _IPV6,
    _PHONE,
    _valid_ipv6,
    luhn_valid,
)
from repro.datasets import BooterDatabaseGenerator
from repro.pipeline import SafeguardPipeline, default_stages

ANON_KEY = hashlib.sha256(b"bench-pipeline-anon").digest()
PSEUDO_KEY = hashlib.sha256(b"bench-pipeline-pseudo").digest()
PASSPHRASE = "bench-pipeline-passphrase"
USERS = 6500
DAYS = 90
CHUNK_SIZE = 2048
RESULT_PATH = Path(__file__).parent.parent / "BENCH_pipeline.json"

IP_FIELDS = ("last_login_ip", "target_ip")
EMAIL_FIELDS = ("email",)
ID_FIELDS = ("username",)
TEXT_FIELDS = ("text", "security_question")


# --------------------------------------------------------------------
# Baseline: replica of the seed (pre-pipeline) implementations.
# --------------------------------------------------------------------
class _BaselineIPAnonymizer:
    """Seed replica: per-bit HMAC-SHA256, unbounded dict cache."""

    def __init__(self, key: bytes) -> None:
        self._key = key
        self._cache: dict[tuple[int, int], int] = {}

    def _prf_bit(self, prefix_bits: int, prefix: int) -> int:
        cache_key = (prefix_bits, prefix)
        cached = self._cache.get(cache_key)
        if cached is not None:
            return cached
        message = prefix_bits.to_bytes(2, "big") + prefix.to_bytes(
            17, "big"
        )
        digest = hmac.new(self._key, message, hashlib.sha256).digest()
        bit = digest[0] & 1
        self._cache[cache_key] = bit
        return bit

    def anonymize(self, address: str) -> str:
        parsed = ipaddress.ip_address(address)
        width = 32 if parsed.version == 4 else 128
        value = int(parsed)
        result = 0
        for i in range(width):
            input_bit = (value >> (width - 1 - i)) & 1
            prefix = value >> (width - i) if i else 0
            result = (result << 1) | (input_bit ^ self._prf_bit(i, prefix))
        if parsed.version == 4:
            return str(ipaddress.IPv4Address(result))
        return str(ipaddress.IPv6Address(result))


def _baseline_pseudonym(key: bytes, identifier: str, domain: str) -> str:
    """Seed replica: fresh HMAC key schedule every call."""
    mac = hmac.new(
        key, f"{domain}\x00{identifier}".encode("utf-8"), hashlib.sha256
    )
    return mac.digest()[:12].hex()


_BASELINE_PATTERNS = (
    ("email", _EMAIL),
    ("ipv4", _IPV4),
    ("ipv6", _IPV6),
    ("card", _CARD),
    ("phone", _PHONE),
)


def _baseline_scrub(text: str) -> str:
    """Seed replica: five sequential finditer passes + overlap scan."""
    matches: list[tuple[int, int, str]] = []
    claimed: list[tuple[int, int]] = []
    for kind, pattern in _BASELINE_PATTERNS:
        for match in pattern.finditer(text):
            start, end = match.span()
            if any(
                start < c_end and end > c_start
                for c_start, c_end in claimed
            ):
                continue
            candidate = match.group()
            if kind == "ipv6" and not _valid_ipv6(candidate):
                continue
            if kind == "card" and not luhn_valid(candidate):
                continue
            if kind == "phone" and luhn_valid(candidate):
                continue
            matches.append((start, end, kind))
            claimed.append((start, end))
    if not matches:
        return text
    parts: list[str] = []
    cursor = 0
    for start, end, kind in sorted(matches):
        parts.append(text[cursor:start])
        parts.append(f"[redacted-{kind}]")
        cursor = end
    parts.append(text[cursor:])
    return "".join(parts)


def _baseline_keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    blocks = []
    for counter in range((length + 31) // 32):
        blocks.append(
            hmac.new(
                key, nonce + struct.pack(">Q", counter), hashlib.sha256
            ).digest()
        )
    return b"".join(blocks)[:length]


def _baseline_seal(passphrase: str, plaintext: bytes) -> bytes:
    """Seed replica: HMAC keystream + per-byte Python XOR loop."""
    salt = hashlib.sha256(b"bench-salt").digest()[:16]
    nonce = hashlib.sha256(b"bench-nonce").digest()[:16]
    master = hashlib.pbkdf2_hmac(
        "sha256", passphrase.encode("utf-8"), salt, 200_000, 32
    )
    enc_key = hmac.new(master, b"encrypt", hashlib.sha256).digest()
    mac_key = hmac.new(master, b"mac", hashlib.sha256).digest()
    stream = _baseline_keystream(enc_key, nonce, len(plaintext))
    ciphertext = bytes(a ^ b for a, b in zip(plaintext, stream))
    header = b"REPROSS1" + salt + nonce
    tag = hmac.new(mac_key, header + ciphertext, hashlib.sha256).digest()
    return header + ciphertext + tag


def _run_baseline(records: list[dict]) -> tuple[list[dict], bytes]:
    """Record-at-a-time safeguards, seed implementations throughout."""
    anonymizer = _BaselineIPAnonymizer(ANON_KEY)
    out: list[dict] = []
    for record in records:
        record = dict(record)
        for field in IP_FIELDS:
            value = record.get(field)
            if isinstance(value, str) and value:
                record[field] = anonymizer.anonymize(value)
        for field in EMAIL_FIELDS:
            value = record.get(field)
            if isinstance(value, str) and "@" in value:
                local, _, domain = value.rpartition("@")
                token = _baseline_pseudonym(
                    PSEUDO_KEY, local + "@" + domain, "email"
                )
                record[field] = f"{token}@example.invalid"
        for field in ID_FIELDS:
            value = record.get(field)
            if isinstance(value, str) and value:
                record[field] = _baseline_pseudonym(
                    PSEUDO_KEY, value, field
                )
        for field in TEXT_FIELDS:
            value = record.get(field)
            if isinstance(value, str) and value:
                record[field] = _baseline_scrub(value)
        out.append(record)
    plaintext = json.dumps(
        out, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return out, _baseline_seal(PASSPHRASE, plaintext)


# --------------------------------------------------------------------
# The measurement
# --------------------------------------------------------------------
@pytest.fixture(scope="module")
def dump_records() -> list[dict]:
    records = [
        record
        for chunk in BooterDatabaseGenerator(2024).iter_records(
            chunk_size=CHUNK_SIZE, users=USERS, days=DAYS
        )
        for record in chunk
    ]
    assert len(records) >= 50_000, len(records)
    return records


def _pipeline(workers: int) -> SafeguardPipeline:
    return SafeguardPipeline(
        default_stages(
            anonymize_key=ANON_KEY,
            pseudonymize_key=PSEUDO_KEY,
            seal_passphrase=PASSPHRASE,
        ),
        workers=workers,
        chunk_size=CHUNK_SIZE,
    )


def _timed(label: str, fn):
    gc.collect()
    started = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - started


def test_e12_pipeline_speedup_and_identity(dump_records):
    record_count = len(dump_records)

    # The fork-based run goes first, while the heap holds only the
    # input records: forking under a large heap pays copy-on-write
    # for every page the workers touch, which would bill the
    # baseline's leftover allocations to the pipeline.
    parallel_result, parallel_seconds = _timed(
        "workers4", lambda: _pipeline(4).run(dump_records)
    )
    serial_result, serial_seconds = _timed(
        "serial", lambda: _pipeline(1).run(dump_records)
    )
    (baseline_out, baseline_sealed), baseline_seconds = _timed(
        "baseline", lambda: _run_baseline(dump_records)
    )

    # Correctness before speed: parallel must be byte-identical to
    # serial, and both must actually have anonymized the dump.
    identical = (
        parallel_result.records == serial_result.records
        and parallel_result.artifacts == serial_result.artifacts
    )
    assert identical
    original_ips = {
        r["last_login_ip"]
        for r in dump_records
        if "last_login_ip" in r
    }
    surviving = {
        r.get("last_login_ip")
        for r in serial_result.records
        if "last_login_ip" in r
    }
    assert not (original_ips & surviving), "raw IP survived"
    assert len(baseline_out) == len(dump_records)
    assert baseline_sealed.startswith(b"REPROSS1")

    def throughput(seconds: float) -> float:
        return record_count / seconds

    speedup_serial = throughput(serial_seconds) / throughput(
        baseline_seconds
    )
    speedup_parallel = throughput(parallel_seconds) / throughput(
        baseline_seconds
    )
    report = {
        "dataset": {
            "kind": "booter",
            "seed": 2024,
            "users": USERS,
            "days": DAYS,
            "records": record_count,
        },
        "chunk_size": CHUNK_SIZE,
        "cpu_count": os.cpu_count(),
        "stages": ["anonymize", "pseudonymize", "scrub", "seal"],
        "baseline_serial": {
            "seconds": round(baseline_seconds, 4),
            "records_per_second": round(
                throughput(baseline_seconds), 1
            ),
        },
        "pipeline_serial": {
            "seconds": round(serial_seconds, 4),
            "records_per_second": round(throughput(serial_seconds), 1),
        },
        "pipeline_workers4": {
            "seconds": round(parallel_seconds, 4),
            "records_per_second": round(
                throughput(parallel_seconds), 1
            ),
        },
        "speedup_serial_over_baseline": round(speedup_serial, 2),
        "speedup_workers4_over_baseline": round(speedup_parallel, 2),
        "parallel_byte_identical_to_serial": identical,
        "note": (
            "baseline_serial replicates the pre-pipeline "
            "implementations (per-bit HMAC-SHA256 PRF, five-pass "
            "scrubber, per-byte XOR seal) applied record-at-a-time; "
            "on a single-core host the speedup comes entirely from "
            "the hot-path rework, with worker fan-out stacking on "
            "top when cores are available"
        ),
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    assert speedup_parallel >= 3.0, report
